//! Roll-forward crash recovery (§4.4.1).
//!
//! Plain checkpoint recovery loses everything written after the last
//! checkpoint. The paper's completed design — "Using information in the
//! segment summary blocks, LFS can 'roll forward' from the last
//! checkpoint, updating metadata structures such as the inode map" — is
//! implemented here:
//!
//! 1. Starting at the checkpointed log position, walk the chunk chain:
//!    within a segment chunks are validated by `(seq, partial)` continuity,
//!    the self-address stamped in the (CRC-covered) header — so a displaced
//!    byte-exact copy of a valid chunk can never be applied — and a CRC
//!    over their payload (torn writes stop the walk); across segments, the
//!    successor is the segment whose first chunk carries the next sequence
//!    number at the right address.
//! 2. Re-apply metadata: inode blocks found in the tail update the inode
//!    map (data blocks need no action — the inodes written in the same
//!    flush point at them); newer inode-map blocks are reloaded wholesale.
//! 3. Fix up directory structure: the original design defers deletes to a
//!    directory operation log; we instead reconcile by walking the
//!    directory tree — dangling entries are dropped, orphaned inodes are
//!    freed, and link counts are corrected.
//! 4. Recompute the segment usage table exactly (the paper notes it is
//!    only a hint, so any cheap reconstruction is acceptable).
//! 5. Checkpoint, so recovery is idempotent and the log sequence jumps
//!    past any stale tail.
//!
//! # Parallel recovery
//!
//! With [`recovery_fanout`] above 1 the scan is partitioned by spindle:
//! a gather phase reads every segment's first block (the summary-block
//! sweep) and then the full image of every *candidate* tail segment —
//! one whose first chunk is pinned to its own address and carries a
//! sequence number the checkpointed position could reach — through the
//! device's asynchronous read facade, so the per-spindle queues overlap
//! in virtual time. A serial merge then walks exactly the sequential
//! chain over the prefetched images: chunks are validated and applied
//! in log order (within a segment by `(seq, partial)` continuity,
//! across segments by the `next_seg` link and the successor's sequence
//! number), so the recovered inode map, directory tree, and usage
//! array are bit-identical to the sequential scan's. Read errors
//! captured by the gather phase are surfaced only when the merge
//! actually walks into the failed segment — segments off the chain can
//! rot freely, exactly as under the sequential scan, which never reads
//! them.
//!
//! [`recovery_fanout`]: crate::LfsConfig::recovery_fanout

use std::collections::{HashMap, HashSet, VecDeque};

use sim_disk::{BlockDevice, DiskResult};
use vfs::blockmap;
use vfs::{FileKind, FsError, FsResult, Ino};

use crate::fs::Lfs;
use crate::layout::imap_block::ImapEntry;
use crate::layout::inode::inode_block;
use crate::layout::summary::{self, BlockKind, ChunkSummary};
use crate::layout::usage_block::SegState;
use crate::log::LogPosition;
use crate::types::{BlockAddr, SegNo, INODE_SIZE};

/// The fan-out the recovery path should use on this mount: the
/// configured value, or the device's spindle count when the
/// configuration says "ask the device" (`0`).
pub(crate) fn effective_fanout<D: BlockDevice>(fs: &Lfs<D>) -> usize {
    match fs.cfg.recovery_fanout {
        0 => fs.dev.fanout(),
        n => n,
    }
}

/// One segment's scan result: the validated chunks in log order (each
/// paired with the absolute in-segment block offset of its first
/// payload block) and whether the walk ended on a torn payload.
struct SegmentScan {
    chunks: Vec<(ChunkSummary, u32)>,
    torn: bool,
}

/// Walks the chunk chain inside one segment image, validating but not
/// applying. `image` covers blocks `[image_base, seg_blocks)` of the
/// segment at `base`; the first chunk is expected at `image_base` with
/// `(seq, first_partial)`. Shared by the sequential scan and the
/// parallel merge, so both validate chunks with literally the same
/// code.
fn scan_segment(
    image: &[u8],
    image_base: usize,
    base: BlockAddr,
    seg_blocks: usize,
    bs: usize,
    seq: u64,
    first_partial: u32,
) -> SegmentScan {
    let mut chunks = Vec::new();
    let mut offset_abs = image_base;
    let mut partial = first_partial;
    let mut torn = false;
    while offset_abs + 1 < seg_blocks {
        let offset = offset_abs - image_base;
        // `decode_at` also pins the chunk to this exact address: a
        // byte-exact copy of some other (valid, CRC-clean) chunk
        // landing here — e.g. XOR-forged while reconstructing a
        // parity row a crash tore — must read as end-of-log, not as
        // applicable history.
        let here = BlockAddr(base.0 + offset_abs as u32);
        let Ok(chunk) = ChunkSummary::decode_at(&image[offset * bs..], here) else {
            break;
        };
        if chunk.seq != seq || chunk.partial != partial {
            break;
        }
        let s = (chunk.reserved_blocks as usize)
            .max(ChunkSummary::summary_blocks(chunk.entries.len(), bs));
        let payload_start = offset + s;
        let payload_end = payload_start + chunk.entries.len();
        if image_base + payload_end > seg_blocks {
            break;
        }
        let payload = &image[payload_start * bs..payload_end * bs];
        if summary::data_checksum(payload) != chunk.data_crc {
            // Torn write: the log ends here.
            torn = true;
            break;
        }
        let payload_abs = (image_base + payload_start) as u32;
        offset_abs = image_base + payload_end;
        partial += 1;
        chunks.push((chunk, payload_abs));
    }
    SegmentScan { chunks, torn }
}

// The windowed async read helper lives in `sim-disk` so the FFS
// baseline's fanned-out fsck scan can share it.
pub(crate) use sim_disk::read_batch;

/// The gather phase's haul: per-segment first-block headers from the
/// sweep and full tail images of the candidate segments. Errors are
/// held, not raised — the merge surfaces one only when it walks into
/// the segment that failed, which is the only time the sequential scan
/// would have issued the read at all.
struct TailPrefetch {
    headers: HashMap<SegNo, DiskResult<Vec<u8>>>,
    images: HashMap<SegNo, DiskResult<Vec<u8>>>,
    /// Async reads issued by the gather (for `recovery.parallel_reads`).
    overlapped: u64,
}

impl TailPrefetch {
    /// The tail image of `seg` (headerless segments were never
    /// prefetched; the merge cannot ask for one, but fall back to the
    /// synchronous read rather than trusting that invariant with data).
    fn image<D: BlockDevice>(&mut self, fs: &mut Lfs<D>, seg: SegNo, offset: u32) -> FsResult<Vec<u8>> {
        match self.images.remove(&seg) {
            Some(res) => Ok(res?),
            None => {
                let bs = fs.block_size();
                let seg_blocks = fs.superblock().seg_blocks as usize;
                let start = fs.sb.seg_block(seg, offset);
                let mut image = vec![0u8; (seg_blocks - offset as usize) * bs];
                fs.dev.annotate("rollforward-read");
                fs.dev.read(fs.sector_of(start), &mut image)?;
                Ok(image)
            }
        }
    }

    /// The first block of `seg`, as read by the sweep.
    fn header<D: BlockDevice>(&mut self, fs: &mut Lfs<D>, seg: SegNo) -> FsResult<Vec<u8>> {
        match self.headers.remove(&seg) {
            Some(res) => Ok(res?),
            None => Ok(fs.read_block_raw(fs.sb.seg_block(seg, 0))?),
        }
    }
}

/// Fans the tail scan out across spindles: sweeps every segment's
/// summary block, then prefetches the full image of each candidate
/// tail segment, all through the async read facade under the
/// maintenance I/O class with at most `window` requests in flight.
fn prefetch_tail<D: BlockDevice>(fs: &mut Lfs<D>, window: usize) -> TailPrefetch {
    let bs = fs.block_size();
    let seg_blocks = fs.superblock().seg_blocks as usize;
    let nsegments = fs.sb.nsegments;
    let cp = fs.pos;
    fs.dev.set_maintenance(true);

    // Phase 1: the summary-block sweep. One block per segment, claimed
    // in segment order; under segment round-robin the requests land on
    // the spindles round-robin, so a window of one-per-spindle keeps
    // every arm busy.
    let head_reqs: Vec<(u64, usize)> = (0..nsegments)
        .map(|s| (fs.sector_of(fs.sb.seg_block(SegNo(s), 0)), bs))
        .collect();
    let (head_results, sweep_overlapped) =
        read_batch(&mut fs.dev, "recovery-sweep", window, &head_reqs);
    let mut headers: HashMap<SegNo, DiskResult<Vec<u8>>> = HashMap::new();
    for (s, res) in head_results.into_iter().enumerate() {
        headers.insert(SegNo(s as u32), res);
    }

    // Phase 2: full tails of the candidates. A candidate's first chunk
    // is pinned to its own address with `partial == 0` and a sequence
    // number in `(cp.seq, cp.seq + nsegments]` — the only numbers a
    // chain hop from the checkpoint can ever require, since the chain
    // visits each segment at most once (a segment's first chunk has one
    // fixed sequence number, and hops strictly increase it). The
    // checkpointed segment's own unconsumed tail joins the batch.
    let mut tail_reqs: Vec<(SegNo, u32)> = Vec::new();
    if (cp.offset as usize) + 1 < seg_blocks {
        tail_reqs.push((cp.seg, cp.offset));
    }
    for s in 0..nsegments {
        let seg = SegNo(s);
        if seg == cp.seg {
            continue;
        }
        let Some(Ok(header)) = headers.get(&seg) else {
            continue;
        };
        let Ok(head) = ChunkSummary::decode_header_prefix(header) else {
            continue;
        };
        let first = fs.sb.seg_block(seg, 0);
        if head.addr == first
            && head.partial == 0
            && head.seq > cp.seq
            && head.seq <= cp.seq + nsegments as u64
        {
            tail_reqs.push((seg, 0));
        }
    }
    let reqs: Vec<(u64, usize)> = tail_reqs
        .iter()
        .map(|&(seg, offset)| {
            (
                fs.sector_of(fs.sb.seg_block(seg, offset)),
                (seg_blocks - offset as usize) * bs,
            )
        })
        .collect();
    let (tail_results, tail_overlapped) =
        read_batch(&mut fs.dev, "rollforward-read", window, &reqs);
    let mut images: HashMap<SegNo, DiskResult<Vec<u8>>> = HashMap::new();
    for ((seg, _), res) in tail_reqs.into_iter().zip(tail_results) {
        images.insert(seg, res);
    }

    fs.dev.set_maintenance(false);
    TailPrefetch {
        headers,
        images,
        overlapped: sweep_overlapped + tail_overlapped,
    }
}


/// Runs roll-forward recovery on a freshly checkpoint-mounted file system.
pub(crate) fn roll_forward<D: BlockDevice>(fs: &mut Lfs<D>) -> FsResult<()> {
    let bs = fs.block_size();
    let seg_blocks = fs.superblock().seg_blocks as usize;
    let fanout = effective_fanout(fs);
    let mut prefetch = if fanout > 1 {
        Some(prefetch_tail(fs, fanout))
    } else {
        None
    };
    let mut pos = fs.pos;
    let mut applied = 0u64;
    let mut recovered_inodes = 0u64;
    // Spindles that served segments the merge actually consumed (the
    // non-vacuity signal for the equivalence tests).
    let mut partitions: HashSet<usize> = HashSet::new();
    // Segments touched by the recovered tail (must not be reused before
    // the post-recovery checkpoint).
    let mut tail_segments: Vec<SegNo> = Vec::new();

    'segments: loop {
        // Read the unconsumed tail of the current segment in one
        // sequential transfer (for the checkpointed segment this skips
        // everything the checkpoint already covers). The parallel path
        // claims the same bytes from the gather phase's prefetch.
        let image_base = pos.offset as usize;
        if image_base + 1 >= seg_blocks {
            break;
        }
        let start = fs.sb.seg_block(pos.seg, pos.offset);
        let base = fs.sb.seg_block(pos.seg, 0);
        let image = match prefetch.as_mut() {
            Some(p) => {
                partitions.insert(fs.dev.spindle_of(fs.sector_of(start)));
                p.image(fs, pos.seg, pos.offset)?
            }
            None => {
                let mut image = vec![0u8; (seg_blocks - image_base) * bs];
                fs.dev.annotate("rollforward-read");
                fs.dev.read(fs.sector_of(start), &mut image)?;
                image
            }
        };

        // Walk chunks from the current offset. A sealing chunk's
        // `next_seg` link tells us where the log continues (§4.3.1's
        // linked list of segments), so recovery only reads the tail.
        let scan = scan_segment(&image, image_base, base, seg_blocks, bs, pos.seq, pos.partial);
        let mut next_seg = SegNo::NIL;
        for (chunk, payload_abs) in &scan.chunks {
            let off = (*payload_abs as usize - image_base) * bs;
            let payload = &image[off..off + chunk.entries.len() * bs];
            apply_chunk(fs, chunk, base, *payload_abs, payload, &mut recovered_inodes)?;
            if tail_segments.last() != Some(&pos.seg) {
                tail_segments.push(pos.seg);
            }
            pos.offset = *payload_abs + chunk.entries.len() as u32;
            pos.partial += 1;
            applied += 1;
            next_seg = chunk.next_seg;
        }
        if scan.torn {
            break 'segments;
        }

        // Follow the chain link. A valid successor's first chunk must
        // carry the next sequence number.
        if next_seg.is_some() && next_seg.0 < fs.sb.nsegments && next_seg != pos.seg {
            let first = fs.sb.seg_block(next_seg, 0);
            let header = match prefetch.as_mut() {
                Some(p) => p.header(fs, next_seg)?,
                None => fs.read_block_raw(first)?,
            };
            if let Ok(head) = ChunkSummary::decode_header_prefix(&header) {
                if head.addr == first && head.seq == pos.seq + 1 && head.partial == 0 {
                    pos = LogPosition {
                        seg: next_seg,
                        offset: 0,
                        partial: 0,
                        seq: pos.seq + 1,
                    };
                    continue;
                }
            }
        }
        break;
    }

    if let Some(p) = &prefetch {
        fs.obs.recovery_partitions.add(partitions.len() as u64);
        fs.obs.recovery_parallel_reads.add(p.overlapped);
    }

    // The registry is fresh at mount, so the counters start at zero and
    // `add` records exactly this recovery's work.
    fs.obs.rollforward_chunks.add(applied);
    fs.obs.rollforward_inodes.add(recovered_inodes);
    fs.obs.registry.event(
        fs.now(),
        "recovery",
        format!("chunks={applied} inodes={recovered_inodes}"),
    );
    if applied == 0 {
        // Nothing past the checkpoint: resume exactly where it left off.
        return Ok(());
    }

    // Discard volatile state built up during the scan.
    fs.inodes.clear();
    fs.cache.drop_clean();

    // Front-load the metadata misses of the serial repair passes below
    // (directory reconciliation, usage recount) so they overlap across
    // spindles instead of stalling one block at a time.
    if fanout > 1 {
        fs.gather_metadata(fanout);
    }

    // The recovered tail consumed log space; resume on a fresh segment.
    // The sequence number jumps by `nsegments + 1`: between any two
    // checkpoints at most `nsegments` segment-opens can occur (cleaned
    // segments stay CleanPending until the next checkpoint), so this is
    // guaranteed to exceed every chunk any abandoned crash timeline could
    // have written — no whole-disk scan needed to ensure uniqueness.
    fs.usage.set_state(pos.seg, SegState::Dirty);
    fix_directories(fs)?;
    recompute_usage(fs, None)?;
    // Keep the recovered tail's segments marked dirty even if the
    // recount found no surviving live bytes — their chunks must not be
    // overwritten before the checkpoint below commits.
    for seg in tail_segments {
        if fs.usage.state(seg) == SegState::Clean {
            fs.usage.set_state(seg, SegState::Dirty);
        }
    }
    let next = fs
        .usage
        .next_clean(SegNo((pos.seg.0 + 1) % fs.sb.nsegments))
        .ok_or(FsError::NoSpace)?;
    fs.usage.set_state(next, SegState::Active);
    fs.pos = LogPosition {
        seg: next,
        offset: 0,
        partial: 0,
        seq: pos.seq + fs.sb.nsegments as u64 + 1,
    };

    // Make the recovered state durable and the recovery idempotent.
    fs.checkpoint()?;
    Ok(())
}

/// Applies one recovered chunk's metadata effects.
fn apply_chunk<D: BlockDevice>(
    fs: &mut Lfs<D>,
    chunk: &ChunkSummary,
    seg_base: BlockAddr,
    payload_start: u32,
    payload: &[u8],
    recovered_inodes: &mut u64,
) -> FsResult<()> {
    let bs = fs.block_size();
    for (i, entry) in chunk.entries.iter().enumerate() {
        let addr = BlockAddr(seg_base.0 + payload_start + i as u32);
        let data = &payload[i * bs..(i + 1) * bs];
        // The replayed tail's per-block checksums become the expected
        // values for future reads of these blocks.
        fs.record_block_crc(addr, entry.crc);
        match entry.kind {
            BlockKind::InodeBlock => {
                for (slot, inode) in inode_block::unpack_all(data)? {
                    let old_atime = fs.imap.get(inode.ino).map(|e| e.atime_ns).unwrap_or(0);
                    fs.imap.restore_entry(
                        inode.ino,
                        ImapEntry {
                            addr,
                            slot: slot as u16,
                            allocated: true,
                            version: inode.version,
                            atime_ns: old_atime,
                        },
                    )?;
                    *recovered_inodes += 1;
                }
            }
            BlockKind::ImapBlock { index } => {
                // A newer copy of part of the inode map itself.
                fs.imap.load_block(index as usize, addr, data)?;
            }
            // Data and indirect blocks are reached through the inodes
            // recovered above; usage blocks are recomputed from scratch.
            BlockKind::Data { .. }
            | BlockKind::IndSingle { .. }
            | BlockKind::IndDoubleTop { .. }
            | BlockKind::IndDoubleChild { .. }
            | BlockKind::UsageBlock { .. } => {}
        }
    }
    Ok(())
}

/// Reconciles the directory tree with the recovered inode map: removes
/// dangling entries, frees orphans, fixes link counts.
pub(crate) fn fix_directories<D: BlockDevice>(fs: &mut Lfs<D>) -> FsResult<()> {
    let mut ref_counts: HashMap<Ino, u32> = HashMap::new();
    let mut visited: HashSet<Ino> = HashSet::new();
    let mut queue: VecDeque<Ino> = VecDeque::new();
    queue.push_back(Ino::ROOT);
    visited.insert(Ino::ROOT);

    while let Some(dir) = queue.pop_front() {
        let entries = fs.dir_entries(dir)?;
        let mut dangling: Vec<String> = Vec::new();
        for entry in entries {
            let target_ok = fs.imap.is_allocated(entry.ino)
                && fs
                    .inode(entry.ino)
                    .map(|i| i.kind == entry.kind)
                    .unwrap_or(false);
            if !target_ok {
                dangling.push(entry.name);
                continue;
            }
            *ref_counts.entry(entry.ino).or_insert(0) += 1;
            if entry.kind == FileKind::Directory && visited.insert(entry.ino) {
                queue.push_back(entry.ino);
            }
        }
        for name in dangling {
            fs.dir_remove(dir, &name)?;
        }
    }

    let allocated: Vec<Ino> = fs.imap.allocated_inos().collect();
    for ino in allocated {
        if ino == Ino::ROOT {
            continue;
        }
        match ref_counts.get(&ino) {
            None => {
                // Orphan: allocated but unreachable (e.g. an unlink whose
                // directory update reached the log while the imap did not).
                fs.destroy_file(ino)?;
            }
            Some(&count) => {
                let nlink = fs.inode(ino)?.nlink as u32;
                if nlink != count {
                    fs.with_inode_mut(ino, |i| i.nlink = count as u16)?;
                }
            }
        }
    }
    Ok(())
}

/// Recomputes the usage table exactly from the recovered metadata.
///
/// `active_override` forces a specific segment to be marked active; by
/// default the current log position's segment is.
pub(crate) fn recompute_usage<D: BlockDevice>(
    fs: &mut Lfs<D>,
    active_override: Option<SegNo>,
) -> FsResult<()> {
    let bs = fs.block_size() as u64;
    let n = fs.sb.nsegments as usize;
    let mut live = vec![0u64; n];
    let mut add = |sb: &crate::layout::superblock::Superblock, addr: BlockAddr, bytes: u64| {
        if let Some((seg, _)) = sb.seg_of(addr) {
            live[seg.0 as usize] += bytes;
        }
    };

    let sb = fs.sb.clone();
    let allocated: Vec<Ino> = fs.imap.allocated_inos().collect();
    for ino in allocated {
        let entry = fs.imap.get(ino)?;
        add(&sb, entry.addr, INODE_SIZE as u64);
        let inode = fs.inode(ino)?;
        let nblocks = blockmap::blocks_for_size(inode.size, bs as usize);
        for bno in 0..nblocks {
            let addr = fs.map_block(ino, bno)?;
            if addr.is_some() {
                add(&sb, addr, bs);
            }
        }
        if inode.single.is_some() {
            add(&sb, inode.single, bs);
        }
        if inode.double.is_some() {
            add(&sb, inode.double, bs);
            for outer in 0..sb.ptrs_per_block() {
                let child = fs.indirect_child_addr(ino, inode.double, outer as u32)?;
                if child.is_some() {
                    add(&sb, child, bs);
                }
            }
        }
    }
    // Inode-map and usage-table blocks are deliberately not counted;
    // see the flush's phase 4/5.

    let active = active_override.unwrap_or(fs.pos.seg);
    let now = fs.now();
    for (i, &bytes) in live.iter().enumerate() {
        let seg = SegNo(i as u32);
        fs.usage.set_live(seg, bytes, now);
        if seg == active {
            fs.usage.set_state(seg, SegState::Active);
        } else if bytes > 0 {
            fs.usage.set_state(seg, SegState::Dirty);
        } else {
            fs.usage.set_state(seg, SegState::Clean);
        }
    }
    // Segments holding the current inode-map or usage-table blocks must
    // stay unwritable even though metadata carries no live-byte weight.
    let mut metadata_addrs: Vec<BlockAddr> = Vec::new();
    for index in 0..fs.imap.nblocks() {
        metadata_addrs.push(fs.imap.block_addr(index));
    }
    for index in 0..fs.usage.nblocks() {
        metadata_addrs.push(fs.usage.block_addr(index));
    }
    for addr in metadata_addrs {
        if let Some((seg, _)) = fs.sb.seg_of(addr) {
            if fs.usage.state(seg) == SegState::Clean {
                fs.usage.set_state(seg, SegState::Dirty);
            }
        }
    }
    Ok(())
}
