//! White-box tests of the write path: block mapping, the segment writer,
//! and space accounting — details the public API cannot reach directly.

use std::sync::Arc;

use sim_disk::{Clock, DiskGeometry, SimDisk};
use vfs::{FileSystem, FsError, Ino};

use super::*;
use crate::config::LfsConfig;
use crate::layout::usage_block::SegState;
use crate::types::BlockAddr;

fn fresh() -> Lfs<SimDisk> {
    let clock = Clock::new();
    let disk = SimDisk::new(DiskGeometry::tiny_test(32_768), Arc::clone(&clock));
    Lfs::format(disk, LfsConfig::small_test(), clock).unwrap()
}

#[test]
fn map_block_reflects_set_block_ptr() {
    let mut fs = fresh();
    let ino = fs.create("/f").unwrap();
    // Fresh file: every block maps to NIL.
    assert_eq!(fs.map_block(ino, 0).unwrap(), BlockAddr::NIL);
    assert_eq!(fs.map_block(ino, 13).unwrap(), BlockAddr::NIL);

    // Direct pointer.
    let old = fs.set_block_ptr(ino, 3, BlockAddr(500)).unwrap();
    assert_eq!(old, BlockAddr::NIL);
    assert_eq!(fs.map_block(ino, 3).unwrap(), BlockAddr(500));

    // Single-indirect range (bno 12.. for NDIRECT=12).
    let old = fs.set_block_ptr(ino, 20, BlockAddr(600)).unwrap();
    assert_eq!(old, BlockAddr::NIL);
    assert_eq!(fs.map_block(ino, 20).unwrap(), BlockAddr(600));

    // Replacing returns the previous address.
    let old = fs.set_block_ptr(ino, 20, BlockAddr(601)).unwrap();
    assert_eq!(old, BlockAddr(600));

    // Double-indirect range: 12 + 128 for 512-byte blocks.
    let far = 12 + fs.sb.ptrs_per_block() as u64 + 5;
    fs.set_block_ptr(ino, far, BlockAddr(700)).unwrap();
    assert_eq!(fs.map_block(ino, far).unwrap(), BlockAddr(700));
}

#[test]
fn clearing_a_hole_does_not_create_indirect_blocks() {
    let mut fs = fresh();
    let ino = fs.create("/f").unwrap();
    let far = 12 + fs.sb.ptrs_per_block() as u64 + 5;
    // Setting NIL over a hole must not materialise indirect blocks.
    let old = fs.set_block_ptr(ino, far, BlockAddr::NIL).unwrap();
    assert_eq!(old, BlockAddr::NIL);
    let inode = fs.inode(ino).unwrap();
    assert!(inode.double.is_nil());
    assert!(!fs
        .cache
        .contains(block_cache::BlockKey::file(ino, IDX_DTOP)));
}

#[test]
fn mappable_range_is_bounded() {
    let mut fs = fresh();
    let ino = fs.create("/f").unwrap();
    let ppb = fs.sb.ptrs_per_block() as u64;
    let max = 12 + ppb + ppb * ppb;
    assert!(fs.map_block(ino, max - 1).is_ok());
    assert_eq!(fs.map_block(ino, max), Err(FsError::FileTooLarge));
}

#[test]
fn chunk_add_seals_segments_when_full() {
    let mut fs = fresh();
    let seg_blocks = fs.sb.seg_blocks as usize;
    let bs = fs.block_size();
    let start_seg = fs.pos.seg;
    let mut ctx = FlushCtx::new();
    // Write two segments' worth of payload through the chunk machinery.
    let data = vec![0u8; bs];
    for bno in 0..(2 * seg_blocks) as u32 {
        fs.chunk_add(
            &mut ctx,
            crate::layout::summary::BlockKind::Data { ino: Ino(2), bno },
            1,
            &data,
            bs as u64,
        )
        .unwrap();
    }
    fs.emit_chunk(&mut ctx).unwrap();
    assert_ne!(fs.pos.seg, start_seg, "segment must have sealed");
    assert!(fs.stats().segments_sealed >= 1);
    assert_eq!(fs.usage.state(start_seg), SegState::Dirty);
    // Sequence numbers advance per segment incarnation.
    assert!(fs.pos.seq > 1);
}

#[test]
fn emit_chunk_with_empty_builder_is_a_noop() {
    let mut fs = fresh();
    let writes_before = fs.dev.stats().writes;
    let pos_before = fs.pos;
    let mut ctx = FlushCtx::new();
    fs.emit_chunk(&mut ctx).unwrap();
    assert_eq!(fs.dev.stats().writes, writes_before);
    assert_eq!(fs.pos, pos_before);
}

#[test]
fn check_space_reserves_segments() {
    let fs = fresh();
    let capacity = fs.sb.log_capacity_bytes();
    // Tiny requests fit.
    fs.check_space(1024).unwrap();
    // A request larger than the budget is refused up front.
    assert_eq!(fs.check_space(capacity), Err(FsError::NoSpace));
}

#[test]
fn filling_the_disk_returns_nospace_and_recovers_after_delete() {
    let clock = Clock::new();
    // 2 MB disk: small enough to fill quickly.
    let disk = SimDisk::new(DiskGeometry::tiny_test(4096), Arc::clone(&clock));
    let mut fs = Lfs::format(disk, LfsConfig::small_test(), clock).unwrap();
    let blob = vec![7u8; 64 * 1024];
    let mut created = Vec::new();
    let mut hit_nospace = false;
    for i in 0..64 {
        match fs.write_file(&format!("/b{i}"), &blob) {
            Ok(_) => created.push(i),
            Err(FsError::NoSpace) => {
                hit_nospace = true;
                break;
            }
            Err(e) => panic!("unexpected: {e}"),
        }
    }
    assert!(hit_nospace, "a 2 MB disk must fill up");
    assert!(created.len() >= 10, "a fair amount must fit first");
    // The failed write may leave a partial file; the FS stays consistent.
    assert!(fs.fsck().unwrap().is_clean());

    // Deleting makes room again (after cleaning).
    for &i in created.iter().take(created.len() / 2) {
        fs.unlink(&format!("/b{i}")).unwrap();
    }
    fs.sync().unwrap();
    fs.clean_until(usize::MAX).unwrap();
    fs.write_file("/after", &blob).unwrap();
    assert_eq!(fs.read_file("/after").unwrap(), blob);
    assert!(fs.fsck().unwrap().is_clean());
}

#[test]
fn destroy_file_returns_every_byte_to_the_usage_table() {
    let mut fs = fresh();
    fs.sync().unwrap();
    let live_before = fs.usage.total_live_bytes();
    // A file big enough to need indirect blocks.
    let ino = fs.write_file("/big", &vec![1u8; 40 * 512]).unwrap();
    fs.sync().unwrap();
    assert!(fs.usage.total_live_bytes() > live_before);
    fs.unlink("/big").unwrap();
    fs.sync().unwrap();
    // All of the file's bytes are dead again. Only the root directory's
    // rewritten blocks and inode remain live (same totals as before,
    // modulo the root dir having grown and shrunk back).
    assert_eq!(fs.usage.total_live_bytes(), live_before);
    let _ = ino;
}

#[test]
fn reserve_scales_with_cache_and_is_bounded() {
    let clock = Clock::new();
    let disk = SimDisk::new(DiskGeometry::tiny_test(65_536), Arc::clone(&clock));
    let mut cfg = LfsConfig::small_test();
    cfg.cache_bytes = 512 * 1024; // 32 segments of cache.
    let fs = Lfs::format(disk, cfg, clock).unwrap();
    // Reserve covers the cache but is capped at a quarter of the disk.
    assert!(fs.reserve_segments >= 2);
    assert!(fs.reserve_segments <= fs.sb.nsegments as usize / 4);
}

#[test]
fn meta_block_cache_is_purged_on_segment_reuse() {
    let mut fs = fresh();
    // Plant a fake cached inode block in the segment the log will open
    // next, then force a seal into it; the stale entry must be purged.
    let next = fs.usage.next_clean(SegNo(1)).unwrap();
    let addr = fs.sb.seg_block(next, 3);
    fs.cache.insert_clean(
        block_cache::BlockKey::meta(NS_INODE_BLOCKS, addr.0 as u64),
        vec![0xEE; fs.block_size()].into_boxed_slice(),
    );
    // Seal segments until the planted one becomes active.
    let mut guard = 0;
    while fs.pos.seg != next {
        fs.seal_segment_for_test().unwrap();
        guard += 1;
        assert!(guard < 10_000, "never reached the planted segment");
    }
    assert!(
        !fs.cache
            .contains(block_cache::BlockKey::meta(NS_INODE_BLOCKS, addr.0 as u64)),
        "stale metadata cache entry survived segment reuse"
    );
}
