//! Directory content management.
//!
//! A directory is a file whose content is a stream of
//! [`vfs::dirent`]-encoded entries — "the formats of directories and
//! inodes are the same as in the BSD example" (Figure 2 caption).
//! Appending an entry dirties only the directory's last block; removal
//! rewrites the suffix of the stream from the removal point.

use sim_disk::{BlockDevice, CpuCost};
use vfs::dirent::{self, RawEntry};
use vfs::{FileKind, FsError, FsResult, Ino};

use super::Lfs;

impl<D: BlockDevice> Lfs<D> {
    /// Reads a directory's full entry stream.
    pub(crate) fn read_dir_stream(&mut self, dir: Ino) -> FsResult<Vec<u8>> {
        let inode = self.inode(dir)?;
        if inode.kind != FileKind::Directory {
            return Err(FsError::NotADirectory);
        }
        let mut stream = vec![0u8; inode.size as usize];
        let mut read = 0usize;
        while read < stream.len() {
            let n = self.do_read(dir, read as u64, &mut stream[read..])?;
            if n == 0 {
                return Err(FsError::Corrupt("directory shorter than its size"));
            }
            read += n;
        }
        Ok(stream)
    }

    /// Parses a directory into entries.
    pub(crate) fn dir_entries(&mut self, dir: Ino) -> FsResult<Vec<RawEntry>> {
        let stream = self.read_dir_stream(dir)?;
        dirent::parse(&stream)
    }

    /// Finds one entry by name.
    pub(crate) fn dir_lookup(&mut self, dir: Ino, name: &str) -> FsResult<Option<(Ino, FileKind)>> {
        let entries = self.dir_entries(dir)?;
        Ok(dirent::find(&entries, name).map(|e| (e.ino, e.kind)))
    }

    /// Appends an entry. The caller must have checked for duplicates.
    pub(crate) fn dir_insert(
        &mut self,
        dir: Ino,
        name: &str,
        ino: Ino,
        kind: FileKind,
    ) -> FsResult<()> {
        let size = self.inode(dir)?.size;
        let mut encoded = Vec::new();
        dirent::encode_entry(&mut encoded, ino, kind, name);
        // Unchecked: callers that grow the tree (create/mkdir) enforce
        // the space budget themselves; rename/link net ~zero growth and
        // must keep working on a full disk.
        self.do_write_unchecked(dir, size, &encoded)?;
        Ok(())
    }

    /// Removes the entry named `name`, rewriting the stream suffix.
    /// Returns the removed entry's target.
    pub(crate) fn dir_remove(&mut self, dir: Ino, name: &str) -> FsResult<(Ino, FileKind)> {
        let entries = self.dir_entries(dir)?;
        let index = entries
            .iter()
            .position(|e| e.name == name)
            .ok_or(FsError::NotFound)?;
        let removed = (entries[index].ino, entries[index].kind);
        let offset = entries[index].offset as u64;
        let suffix = dirent::encode_all(&entries[index + 1..]);
        if !suffix.is_empty() {
            // Unchecked: removal must succeed on a full disk.
            self.do_write_unchecked(dir, offset, &suffix)?;
        }
        self.do_truncate(dir, offset + suffix.len() as u64)?;
        Ok(removed)
    }

    /// Walks path components from the root.
    pub(crate) fn resolve_components(&mut self, components: &[&str]) -> FsResult<Ino> {
        let mut current = Ino::ROOT;
        for part in components {
            self.charge(CpuCost::MapBlock);
            match self.dir_lookup(current, part)? {
                Some((ino, _)) => current = ino,
                None => return Err(FsError::NotFound),
            }
        }
        Ok(current)
    }

    /// Resolves `path`'s parent directory; returns `(parent, final name)`.
    pub(crate) fn resolve_parent<'p>(&mut self, path: &'p str) -> FsResult<(Ino, &'p str)> {
        let (parent_parts, name) = vfs::path::split_parent(path)?;
        let parent = self.resolve_components(&parent_parts)?;
        if self.inode(parent)?.kind != FileKind::Directory {
            return Err(FsError::NotADirectory);
        }
        Ok((parent, name))
    }
}
