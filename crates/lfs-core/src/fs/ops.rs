//! The [`vfs::FileSystem`] implementation for LFS.
//!
//! Note what is *absent* here compared with the FFS baseline: no
//! synchronous metadata writes. `create` and `unlink` mutate only the
//! cache and the in-memory inode map; everything reaches disk later in
//! segment-sized sequential transfers (§4.1).

use sim_disk::{BlockDevice, CpuCost};
use vfs::{DirEntry, FileKind, FileSystem, FsError, FsResult, FsStats, Ino, Metadata};

use super::{CachedInode, Lfs};
use crate::layout::inode::Inode;
use crate::stats::LfsObs;

impl<D: BlockDevice> Lfs<D> {
    /// Runs `f` and records its virtual-clock duration in the histogram
    /// `hist` selects, successful or not — a failed operation still costs
    /// the time it spent.
    fn timed<R>(
        &mut self,
        hist: fn(&LfsObs) -> &obs::Hist,
        f: impl FnOnce(&mut Self) -> FsResult<R>,
    ) -> FsResult<R> {
        let start = self.now();
        let result = f(self);
        let elapsed = self.now().saturating_sub(start);
        hist(&self.obs).record(elapsed);
        result
    }

    /// Creates a file or directory node under `path`.
    fn create_node(&mut self, path: &str, kind: FileKind) -> FsResult<Ino> {
        self.check_writable()?;
        self.charge(CpuCost::CreateFile);
        let (parent, name) = self.resolve_parent(path)?;
        vfs::path::validate_name(name)?;
        if self.dir_lookup(parent, name)?.is_some() {
            return Err(FsError::AlreadyExists);
        }
        self.check_space(self.block_size() as u64)?;
        let ino = self.imap.allocate()?;
        let now = self.now();
        let version = self.imap.get(ino)?.version;
        let inode = Inode::new(ino, kind, version, now);
        self.inodes.insert(ino, CachedInode { inode, dirty: true });
        if let Err(e) = self.dir_insert(parent, name, ino, kind) {
            // Roll back the allocation on failure (e.g. out of space).
            self.inodes.remove(&ino);
            let _ = self.imap.free(ino);
            return Err(e);
        }
        self.maybe_writeback()?;
        Ok(ino)
    }

    /// Drops one link; destroys the file when the last link goes.
    fn drop_link(&mut self, ino: Ino) -> FsResult<()> {
        let nlink = self.with_inode_mut(ino, |i| {
            i.nlink -= 1;
            i.nlink
        })?;
        if nlink == 0 {
            self.destroy_file(ino)?;
        }
        Ok(())
    }
}

impl<D: BlockDevice> FileSystem for Lfs<D> {
    fn lookup(&mut self, path: &str) -> FsResult<Ino> {
        self.timed(
            |o| &o.op_lookup,
            |fs| {
                fs.charge(CpuCost::Syscall);
                let components = vfs::path::split(path)?;
                let ino = fs.resolve_components(&components)?;
                fs.maybe_writeback()?;
                Ok(ino)
            },
        )
    }

    fn create(&mut self, path: &str) -> FsResult<Ino> {
        self.timed(
            |o| &o.op_create,
            |fs| fs.create_node(path, FileKind::Regular),
        )
    }

    fn mkdir(&mut self, path: &str) -> FsResult<Ino> {
        self.timed(
            |o| &o.op_mkdir,
            |fs| fs.create_node(path, FileKind::Directory),
        )
    }

    fn unlink(&mut self, path: &str) -> FsResult<()> {
        self.timed(
            |o| &o.op_unlink,
            |fs| {
                fs.check_writable()?;
                fs.charge(CpuCost::RemoveFile);
                let (parent, name) = fs.resolve_parent(path)?;
                let (ino, kind) = fs.dir_lookup(parent, name)?.ok_or(FsError::NotFound)?;
                if kind == FileKind::Directory {
                    return Err(FsError::IsADirectory);
                }
                fs.dir_remove(parent, name)?;
                fs.drop_link(ino)?;
                fs.maybe_writeback()?;
                Ok(())
            },
        )
    }

    fn rmdir(&mut self, path: &str) -> FsResult<()> {
        self.timed(
            |o| &o.op_rmdir,
            |fs| {
                fs.check_writable()?;
                fs.charge(CpuCost::RemoveFile);
                let (parent, name) = fs.resolve_parent(path)?;
                let (ino, kind) = fs.dir_lookup(parent, name)?.ok_or(FsError::NotFound)?;
                if kind != FileKind::Directory {
                    return Err(FsError::NotADirectory);
                }
                if !fs.dir_entries(ino)?.is_empty() {
                    return Err(FsError::DirectoryNotEmpty);
                }
                fs.dir_remove(parent, name)?;
                fs.destroy_file(ino)?;
                fs.maybe_writeback()?;
                Ok(())
            },
        )
    }

    fn rename(&mut self, from: &str, to: &str) -> FsResult<()> {
        self.timed(
            |o| &o.op_rename,
            |fs| {
                fs.check_writable()?;
                fs.charge(CpuCost::CreateFile);
                let from_parts = vfs::path::split(from)?;
                let to_parts = vfs::path::split(to)?;
                if from_parts == to_parts {
                    fs.resolve_components(&from_parts)?;
                    return Ok(());
                }
                if !from_parts.is_empty() && to_parts.starts_with(&from_parts) {
                    return Err(FsError::InvalidPath);
                }
                let (from_parent, from_name) = fs.resolve_parent(from)?;
                let (to_parent, to_name) = fs.resolve_parent(to)?;
                vfs::path::validate_name(to_name)?;

                let (src, src_kind) = fs
                    .dir_lookup(from_parent, from_name)?
                    .ok_or(FsError::NotFound)?;
                if let Some((existing, existing_kind)) = fs.dir_lookup(to_parent, to_name)? {
                    match existing_kind {
                        FileKind::Directory => return Err(FsError::AlreadyExists),
                        FileKind::Regular => {
                            if src_kind == FileKind::Directory {
                                return Err(FsError::NotADirectory);
                            }
                            fs.dir_remove(to_parent, to_name)?;
                            fs.drop_link(existing)?;
                        }
                    }
                }
                fs.dir_remove(from_parent, from_name)?;
                fs.dir_insert(to_parent, to_name, src, src_kind)?;
                fs.maybe_writeback()?;
                Ok(())
            },
        )
    }

    fn link(&mut self, existing: &str, new: &str) -> FsResult<()> {
        self.timed(
            |o| &o.op_link,
            |fs| {
                fs.check_writable()?;
                fs.charge(CpuCost::CreateFile);
                let components = vfs::path::split(existing)?;
                let src = fs.resolve_components(&components)?;
                if fs.inode(src)?.kind == FileKind::Directory {
                    return Err(FsError::IsADirectory);
                }
                let (parent, name) = fs.resolve_parent(new)?;
                vfs::path::validate_name(name)?;
                if fs.dir_lookup(parent, name)?.is_some() {
                    return Err(FsError::AlreadyExists);
                }
                fs.dir_insert(parent, name, src, FileKind::Regular)?;
                fs.with_inode_mut(src, |i| i.nlink += 1)?;
                fs.maybe_writeback()?;
                Ok(())
            },
        )
    }

    fn read_at(&mut self, ino: Ino, offset: u64, buf: &mut [u8]) -> FsResult<usize> {
        self.timed(
            |o| &o.op_read,
            |fs| {
                fs.charge(CpuCost::Syscall);
                if fs.inode(ino)?.kind == FileKind::Directory {
                    return Err(FsError::IsADirectory);
                }
                let n = fs.do_read(ino, offset, buf)?;
                fs.maybe_writeback()?;
                Ok(n)
            },
        )
    }

    fn write_at(&mut self, ino: Ino, offset: u64, data: &[u8]) -> FsResult<usize> {
        self.timed(
            |o| &o.op_write,
            |fs| {
                fs.check_writable()?;
                fs.charge(CpuCost::Syscall);
                if fs.inode(ino)?.kind == FileKind::Directory {
                    return Err(FsError::IsADirectory);
                }
                let n = fs.do_write(ino, offset, data)?;
                fs.maybe_writeback()?;
                Ok(n)
            },
        )
    }

    fn truncate(&mut self, ino: Ino, size: u64) -> FsResult<()> {
        self.timed(
            |o| &o.op_truncate,
            |fs| {
                fs.check_writable()?;
                fs.charge(CpuCost::Syscall);
                if fs.inode(ino)?.kind == FileKind::Directory {
                    return Err(FsError::IsADirectory);
                }
                fs.do_truncate(ino, size)?;
                fs.maybe_writeback()?;
                Ok(())
            },
        )
    }

    fn stat(&mut self, ino: Ino) -> FsResult<Metadata> {
        self.charge(CpuCost::Syscall);
        let inode = self.inode(ino)?;
        let entry = self.imap.get(ino)?;
        Ok(Metadata {
            ino,
            kind: inode.kind,
            size: inode.size,
            nlink: inode.nlink as u32,
            mtime_ns: inode.mtime_ns,
            atime_ns: entry.atime_ns,
        })
    }

    fn readdir(&mut self, path: &str) -> FsResult<Vec<DirEntry>> {
        self.charge(CpuCost::Syscall);
        let components = vfs::path::split(path)?;
        let dir = self.resolve_components(&components)?;
        let entries = self.dir_entries(dir)?;
        Ok(entries
            .into_iter()
            .map(|e| DirEntry {
                name: e.name,
                ino: e.ino,
                kind: e.kind,
            })
            .collect())
    }

    fn fsync(&mut self, ino: Ino) -> FsResult<()> {
        self.timed(
            |o| &o.op_fsync,
            |fs| {
                fs.check_writable()?;
                fs.charge(CpuCost::Syscall);
                fs.ensure_inode(ino)?;
                if fs.cfg.fsync_checkpoints {
                    fs.checkpoint()?;
                } else {
                    // §4.3.5 "Sync request": the dirty blocks are pushed to disk.
                    // Flushing everything (not just this file) keeps the file's
                    // directory entry in the same log write, so roll-forward
                    // recovery (§4.4.1) makes the fsync durable.
                    fs.flush(false, false)?;
                }
                fs.dev.flush()?;
                Ok(())
            },
        )
    }

    fn sync(&mut self) -> FsResult<()> {
        self.timed(
            |o| &o.op_sync,
            |fs| {
                fs.check_writable()?;
                fs.charge(CpuCost::Syscall);
                fs.checkpoint()?;
                fs.dev.flush()?;
                Ok(())
            },
        )
    }

    fn drop_caches(&mut self) -> FsResult<()> {
        self.cache.drop_clean();
        self.inodes.retain(|_, c| c.dirty);
        Ok(())
    }

    fn fs_stats(&mut self) -> FsResult<FsStats> {
        Ok(FsStats {
            capacity_bytes: self.sb.log_capacity_bytes(),
            used_bytes: self.usage.total_live_bytes(),
            live_inodes: self.imap.live_count(),
        })
    }

    fn set_active_client(&mut self, client: Option<u32>) {
        self.cache.set_client(client);
    }
}
