//! File data paths: block mapping, read, write, truncate, delete.
//!
//! The mapping structures are classic UNIX (§4.2.1): twelve direct
//! pointers, a single-indirect and a double-indirect block. Because LFS
//! never updates in place, changing any pointer dirties the containing
//! object (inode or indirect block), which the next flush rewrites at a
//! new log address.

use block_cache::{BlockKey, Owner};
use sim_disk::{BlockDevice, CpuCost};
use vfs::blockmap::{self, BlockPath};
use vfs::{FsError, FsResult, Ino};

use super::{idx_dchild, Lfs, IDX_DTOP, IDX_SINGLE};
use crate::types::BlockAddr;

/// Reads pointer `slot` from an indirect block's raw bytes.
fn read_ptr(block: &[u8], slot: usize) -> BlockAddr {
    let start = slot * 4;
    BlockAddr(u32::from_le_bytes(
        block[start..start + 4].try_into().unwrap(),
    ))
}

/// Writes pointer `slot` in an indirect block's raw bytes.
fn write_ptr(block: &mut [u8], slot: usize, addr: BlockAddr) {
    let start = slot * 4;
    block[start..start + 4].copy_from_slice(&addr.0.to_le_bytes());
}

impl<D: BlockDevice> Lfs<D> {
    /// Ensures the indirect block with cache index `idx` is cached.
    ///
    /// `disk_addr` is its current on-disk address (NIL if never written).
    /// With `create`, a missing block is materialised as a fresh all-NIL
    /// block, dirty. Returns false if the block neither exists nor was
    /// created.
    fn ensure_indirect(
        &mut self,
        ino: Ino,
        idx: u64,
        disk_addr: BlockAddr,
        create: bool,
    ) -> FsResult<bool> {
        let key = BlockKey::file(ino, idx);
        if self.cache.contains(key) {
            return Ok(true);
        }
        if disk_addr.is_some() {
            let data = self.read_block_raw(disk_addr)?;
            self.verify_block("indirect block", disk_addr, &data)?;
            self.charge(CpuCost::MapBlock);
            self.cache.insert_clean(key, data.into_boxed_slice());
            return Ok(true);
        }
        if create {
            // NIL-filled: u32::MAX in every pointer slot.
            let data = vec![0xFFu8; self.block_size()].into_boxed_slice();
            let now = self.now();
            self.cache.insert_dirty(key, data, now);
            return Ok(true);
        }
        Ok(false)
    }

    /// Reads pointer `slot` of the cached indirect block `idx`.
    fn indirect_get(&mut self, ino: Ino, idx: u64, slot: usize) -> BlockAddr {
        let key = BlockKey::file(ino, idx);
        let block = self.cache.get(key).expect("indirect block must be cached");
        read_ptr(block, slot)
    }

    /// Sets pointer `slot` of the cached indirect block `idx`, marking it
    /// dirty. Returns the old value.
    fn indirect_set(&mut self, ino: Ino, idx: u64, slot: usize, addr: BlockAddr) -> BlockAddr {
        let key = BlockKey::file(ino, idx);
        let now = self.now();
        let block = self
            .cache
            .get_mut(key, now)
            .expect("indirect block must be cached");
        let old = read_ptr(block, slot);
        write_ptr(block, slot, addr);
        old
    }

    /// Resolves a file block index to its current disk address (NIL for a
    /// hole or a block that has never been flushed).
    pub(crate) fn map_block(&mut self, ino: Ino, bno: u64) -> FsResult<BlockAddr> {
        let ppb = self.sb.ptrs_per_block();
        let path = blockmap::resolve(bno, ppb).ok_or(FsError::FileTooLarge)?;
        let inode = self.inode(ino)?;
        match path {
            BlockPath::Direct { slot } => Ok(inode.direct[slot]),
            BlockPath::Single { slot } => {
                if !self.ensure_indirect(ino, IDX_SINGLE, inode.single, false)? {
                    return Ok(BlockAddr::NIL);
                }
                Ok(self.indirect_get(ino, IDX_SINGLE, slot))
            }
            BlockPath::Double { outer, inner } => {
                if !self.ensure_indirect(ino, IDX_DTOP, inode.double, false)? {
                    return Ok(BlockAddr::NIL);
                }
                let child = self.indirect_get(ino, IDX_DTOP, outer);
                if !self.ensure_indirect(ino, idx_dchild(outer as u32), child, false)? {
                    return Ok(BlockAddr::NIL);
                }
                Ok(self.indirect_get(ino, idx_dchild(outer as u32), inner))
            }
        }
    }

    /// Records the new disk address of data block `bno`, creating
    /// indirect blocks as needed (unless clearing to NIL). Returns the
    /// previous address.
    pub(crate) fn set_block_ptr(
        &mut self,
        ino: Ino,
        bno: u64,
        addr: BlockAddr,
    ) -> FsResult<BlockAddr> {
        let ppb = self.sb.ptrs_per_block();
        let path = blockmap::resolve(bno, ppb).ok_or(FsError::FileTooLarge)?;
        let create = addr.is_some();
        let inode = self.inode(ino)?;
        match path {
            BlockPath::Direct { slot } => {
                self.with_inode_mut(ino, |i| std::mem::replace(&mut i.direct[slot], addr))
            }
            BlockPath::Single { slot } => {
                if !self.ensure_indirect(ino, IDX_SINGLE, inode.single, create)? {
                    return Ok(BlockAddr::NIL);
                }
                Ok(self.indirect_set(ino, IDX_SINGLE, slot, addr))
            }
            BlockPath::Double { outer, inner } => {
                if !self.ensure_indirect(ino, IDX_DTOP, inode.double, create)? {
                    return Ok(BlockAddr::NIL);
                }
                let child = self.indirect_get(ino, IDX_DTOP, outer);
                if !self.ensure_indirect(ino, idx_dchild(outer as u32), child, create)? {
                    return Ok(BlockAddr::NIL);
                }
                Ok(self.indirect_set(ino, idx_dchild(outer as u32), inner, addr))
            }
        }
    }

    /// Records the new disk address of an indirect block (called by the
    /// flush when the block is written). Returns the previous address.
    pub(crate) fn set_indirect_ptr(
        &mut self,
        ino: Ino,
        idx: u64,
        addr: BlockAddr,
    ) -> FsResult<BlockAddr> {
        if idx == IDX_SINGLE {
            self.with_inode_mut(ino, |i| std::mem::replace(&mut i.single, addr))
        } else if idx == IDX_DTOP {
            self.with_inode_mut(ino, |i| std::mem::replace(&mut i.double, addr))
        } else {
            let outer = (idx - super::IDX_DCHILD_BASE) as usize;
            let inode = self.inode(ino)?;
            // The top block must exist if a child does.
            self.ensure_indirect(ino, IDX_DTOP, inode.double, true)?;
            Ok(self.indirect_set(ino, IDX_DTOP, outer, addr))
        }
    }

    /// Reads slot `outer` of a file's double-indirect top block, loading
    /// it from `dtop_addr` if not cached (cleaner liveness checks).
    pub(crate) fn indirect_child_addr(
        &mut self,
        ino: Ino,
        dtop_addr: BlockAddr,
        outer: u32,
    ) -> FsResult<BlockAddr> {
        if !self.ensure_indirect(ino, IDX_DTOP, dtop_addr, false)? {
            return Ok(BlockAddr::NIL);
        }
        Ok(self.indirect_get(ino, IDX_DTOP, outer as usize))
    }

    /// Fetches one file block, reading through the cache.
    /// Returns `None` for a hole.
    pub(crate) fn file_block(&mut self, ino: Ino, bno: u64) -> FsResult<Option<Vec<u8>>> {
        let key = BlockKey::file(ino, bno);
        if let Some(data) = self.cache.get(key) {
            return Ok(Some(data.to_vec()));
        }
        let addr = self.map_block(ino, bno)?;
        if addr.is_nil() {
            return Ok(None);
        }
        self.dev.annotate("file-data");
        let data = self.read_block_raw(addr)?;
        self.verify_block("file data block", addr, &data)?;
        self.cache
            .insert_clean(key, data.clone().into_boxed_slice());
        Ok(Some(data))
    }

    /// Core read path.
    pub(crate) fn do_read(&mut self, ino: Ino, offset: u64, buf: &mut [u8]) -> FsResult<usize> {
        let inode = self.inode(ino)?;
        if offset >= inode.size {
            return Ok(0);
        }
        let bs = self.block_size() as u64;
        let want = (buf.len() as u64).min(inode.size - offset) as usize;
        let mut done = 0usize;
        while done < want {
            let pos = offset + done as u64;
            let bno = pos / bs;
            let within = (pos % bs) as usize;
            let n = (bs as usize - within).min(want - done);
            self.charge(CpuCost::MapBlock);
            match self.file_block(ino, bno)? {
                Some(block) => buf[done..done + n].copy_from_slice(&block[within..within + n]),
                None => buf[done..done + n].fill(0),
            }
            self.charge(CpuCost::Instructions(
                CpuCost::CopyKb.instructions() * (n as u64).div_ceil(1024),
            ));
            done += n;
        }
        // Access time lives in the inode map (paper footnote 2), so reads
        // never dirty the inode itself.
        let now = self.now();
        self.imap.set_atime(ino, now)?;
        Ok(done)
    }

    /// Core write path, subject to the free-space budget.
    pub(crate) fn do_write(&mut self, ino: Ino, offset: u64, data: &[u8]) -> FsResult<usize> {
        self.check_space(data.len() as u64 + self.block_size() as u64)?;
        self.do_write_unchecked(ino, offset, data)
    }

    /// Write path without the space check: used for internal directory
    /// maintenance, which must keep working on a full disk (otherwise
    /// `unlink` could not free space).
    pub(crate) fn do_write_unchecked(
        &mut self,
        ino: Ino,
        offset: u64,
        data: &[u8],
    ) -> FsResult<usize> {
        if data.is_empty() {
            return Ok(0);
        }
        let bs = self.block_size() as u64;
        let end = offset
            .checked_add(data.len() as u64)
            .ok_or(FsError::FileTooLarge)?;
        // Reject writes past the mappable range up front.
        blockmap::resolve((end - 1) / bs, self.sb.ptrs_per_block()).ok_or(FsError::FileTooLarge)?;

        let inode = self.inode(ino)?;
        let now = self.now();
        let mut done = 0usize;
        while done < data.len() {
            let pos = offset + done as u64;
            let bno = pos / bs;
            let within = (pos % bs) as usize;
            let n = (bs as usize - within).min(data.len() - done);
            let key = BlockKey::file(ino, bno);
            self.charge(CpuCost::MapBlock);
            if within == 0 && n == bs as usize {
                // Full-block overwrite: no read needed.
                let block = data[done..done + n].to_vec().into_boxed_slice();
                self.cache.insert_dirty(key, block, now);
            } else {
                // Read-modify-write (zero-filled for holes and beyond EOF).
                let mut block = match self.file_block(ino, bno)? {
                    Some(existing) => existing,
                    None => vec![0u8; bs as usize],
                };
                block[within..within + n].copy_from_slice(&data[done..done + n]);
                self.cache.insert_dirty(key, block.into_boxed_slice(), now);
            }
            self.charge(CpuCost::Instructions(
                CpuCost::CopyKb.instructions() * (n as u64).div_ceil(1024),
            ));
            done += n;
        }
        self.with_inode_mut(ino, |i| {
            i.size = i.size.max(end);
            i.mtime_ns = now;
        })?;
        let _ = inode;
        Ok(done)
    }

    /// Core truncate path (shrink or zero-extend).
    pub(crate) fn do_truncate(&mut self, ino: Ino, new_size: u64) -> FsResult<()> {
        let inode = self.inode(ino)?;
        let bs = self.block_size() as u64;
        if new_size < inode.size {
            let old_blocks = blockmap::blocks_for_size(inode.size, bs as usize);
            let new_blocks = blockmap::blocks_for_size(new_size, bs as usize);
            for bno in new_blocks..old_blocks {
                let old = self.set_block_ptr(ino, bno, BlockAddr::NIL)?;
                self.retire(old, bs);
                self.cache.remove(BlockKey::file(ino, bno));
            }
            // Zero the now-partial tail block so extension re-reads zeros.
            if !new_size.is_multiple_of(bs) {
                let bno = new_size / bs;
                if let Some(mut block) = self.file_block(ino, bno)? {
                    let keep = (new_size % bs) as usize;
                    block[keep..].fill(0);
                    let now = self.now();
                    self.cache.insert_dirty(
                        BlockKey::file(ino, bno),
                        block.into_boxed_slice(),
                        now,
                    );
                }
            }
            if new_size == 0 {
                self.free_indirect_blocks(ino)?;
                // §4.2.1: the version number is updated every time the
                // file is truncated to length zero.
                self.imap.bump_version(ino)?;
            }
        }
        let now = self.now();
        self.with_inode_mut(ino, |i| {
            i.size = new_size;
            i.mtime_ns = now;
        })?;
        Ok(())
    }

    /// Retires and forgets all indirect blocks of a file (truncate-to-zero
    /// and delete paths). Direct/data retirement happens via
    /// [`Lfs::set_block_ptr`] beforehand.
    fn free_indirect_blocks(&mut self, ino: Ino) -> FsResult<()> {
        let bs = self.block_size() as u64;
        let inode = self.inode(ino)?;
        if inode.double.is_some() || self.cache.contains(BlockKey::file(ino, IDX_DTOP)) {
            // Retire each existing child, reading the top block if needed.
            if self.ensure_indirect(ino, IDX_DTOP, inode.double, false)? {
                let ppb = self.sb.ptrs_per_block();
                for outer in 0..ppb {
                    let child = self.indirect_get(ino, IDX_DTOP, outer);
                    if child.is_some() {
                        self.retire(child, bs);
                    }
                    self.cache
                        .remove(BlockKey::file(ino, idx_dchild(outer as u32)));
                }
            }
            self.retire(inode.double, bs);
            self.cache.remove(BlockKey::file(ino, IDX_DTOP));
            self.with_inode_mut(ino, |i| i.double = BlockAddr::NIL)?;
        }
        if inode.single.is_some() || self.cache.contains(BlockKey::file(ino, IDX_SINGLE)) {
            self.retire(inode.single, bs);
            self.cache.remove(BlockKey::file(ino, IDX_SINGLE));
            self.with_inode_mut(ino, |i| i.single = BlockAddr::NIL)?;
        }
        Ok(())
    }

    /// Destroys a file whose last link was removed: retires every block,
    /// frees the inode, and purges the cache.
    pub(crate) fn destroy_file(&mut self, ino: Ino) -> FsResult<()> {
        self.do_truncate(ino, 0)?;
        let entry = self.imap.get(ino)?;
        if entry.addr.is_some() {
            self.retire(entry.addr, crate::types::INODE_SIZE as u64);
        }
        self.imap.free(ino)?;
        self.inodes.remove(&ino);
        self.cache.remove_owner(Owner::File(ino));
        Ok(())
    }
}
