//! The mounted file system: state, the write path, and the segment writer.
//!
//! [`Lfs`] ties together the device, the file cache, the inode map, the
//! segment usage table, and the log position. The central routine is
//! `Lfs::flush`: it drains dirty blocks from the cache into log chunks —
//! data blocks, then indirect blocks (children before parents), then inode
//! blocks, then (at checkpoints) inode-map and usage-table blocks — exactly
//! the packing §4.1 describes, so that one burst of small file writes
//! becomes one large sequential disk transfer.

mod dir;
mod file;
mod ops;
#[cfg(test)]
mod tests;

use std::collections::HashMap;
use std::sync::Arc;

use block_cache::{BlockKey, Owner, WritebackTrigger};
use mem_mgr::{CacheReport, FlushCause, MemConfig, MemMgr};
use sim_disk::{BlockDevice, Clock, CpuCost, CpuModel};
use vfs::{FileKind, FsError, FsResult, Ino};

use crate::config::LfsConfig;
use crate::imap::Imap;
use crate::layout::inode::{inode_block, Inode};
use crate::layout::summary::BlockKind;
use crate::layout::superblock::Superblock;
use crate::layout::usage_block::SegState;
use crate::log::{ChunkBuilder, LogPosition};
use crate::stats::{LfsObs, LfsStats};
use crate::types::{BlockAddr, SegNo, INODE_SIZE};
use crate::usage::UsageTable;

/// Cache-owner index of a file's single-indirect block.
pub(crate) const IDX_SINGLE: u64 = 1 << 40;
/// Cache-owner index of a file's double-indirect top block.
pub(crate) const IDX_DTOP: u64 = (1 << 40) + 1;
/// Base cache-owner index of second-level indirect blocks.
pub(crate) const IDX_DCHILD_BASE: u64 = 1 << 41;

/// Cache index of double-indirect child `outer`.
pub(crate) fn idx_dchild(outer: u32) -> u64 {
    IDX_DCHILD_BASE + outer as u64
}

/// Returns true if a file-owner cache index denotes a data block.
pub(crate) fn is_data_idx(idx: u64) -> bool {
    idx < IDX_SINGLE
}

/// Metadata cache namespace for inode blocks, keyed by disk address.
pub(crate) const NS_INODE_BLOCKS: u32 = 1;

/// An in-memory inode with its dirty flag.
#[derive(Debug, Clone)]
pub(crate) struct CachedInode {
    pub inode: Inode,
    pub dirty: bool,
}

/// A mounted log-structured file system over a block device.
///
/// Create one with [`Lfs::format`] (new volume) or [`Lfs::mount`]
/// (existing volume, with crash recovery). All file operations are
/// available through the [`vfs::FileSystem`] trait implementation.
pub struct Lfs<D: BlockDevice> {
    pub(crate) dev: D,
    pub(crate) sb: Superblock,
    pub(crate) cfg: LfsConfig,
    pub(crate) clock: Arc<Clock>,
    pub(crate) cpu: CpuModel,
    pub(crate) cache: MemMgr,
    pub(crate) imap: Imap,
    pub(crate) usage: UsageTable,
    pub(crate) inodes: HashMap<Ino, CachedInode>,
    pub(crate) pos: LogPosition,
    pub(crate) cp_serial: u64,
    /// Next checkpoint goes to region B when true.
    pub(crate) cp_use_b: bool,
    pub(crate) last_cp_ns: u64,
    pub(crate) obs: LfsObs,
    /// Clean segment reserved by the most recent sealing chunk's
    /// `next_seg` link, so the on-disk chain and the allocator agree.
    pub(crate) pending_next_seg: Option<SegNo>,
    /// Reentrancy guard: automatic write-back is suppressed inside
    /// flush/cleaner/checkpoint work.
    pub(crate) in_maintenance: bool,
    /// Segments kept in reserve so a checkpoint can always complete.
    pub(crate) reserve_segments: usize,
    /// Expected end-to-end CRC-32C of every device block this mount has
    /// written or replayed, indexed by [`BlockAddr`]. `None` means the
    /// block's checksum is unknown (never seen), so its reads cannot be
    /// verified until a scrub or roll-forward records it.
    pub(crate) block_crc: Vec<Option<u32>>,
    /// Set when the file system has degraded to read-only: an
    /// unrecoverable corruption was found, or the mount could not reload
    /// its metadata. Mutating operations fail with [`FsError::ReadOnly`].
    pub(crate) read_only: bool,
    /// The incremental cleaning run in progress, when the cleaner runs
    /// in [`crate::CleanerRunMode::Async`] and a host is stepping it.
    pub(crate) cleaner_run: Option<crate::cleaner_run::CleanerRun>,
    /// Damping for the async cleaner: the clean+pending count at which
    /// the last run completed without cleaning anything. While the count
    /// is unchanged, starting another run would spin fruitlessly, so
    /// [`Lfs::cleaner_wants_step`] declines.
    pub(crate) cleaner_futile_at: Option<usize>,
}

/// In-progress chunk state during a flush.
pub(crate) struct FlushCtx {
    builder: Option<ChunkBuilder>,
    /// Set just before the flush's final [`Lfs::emit_chunk`] when
    /// [`LfsConfig::seal_on_flush`] is on: forces that chunk to stamp a
    /// `next_seg` link so the forced seal that follows leaves a
    /// roll-forward-walkable chain.
    seal_after: bool,
    /// Whether any chunk was actually written through this context —
    /// an empty flush must not burn a segment on a forced seal.
    wrote: bool,
}

impl FlushCtx {
    pub(crate) fn new() -> Self {
        Self {
            builder: None,
            seal_after: false,
            wrote: false,
        }
    }
}

impl<D: BlockDevice> Lfs<D> {
    // ------------------------------------------------------------------
    // Construction.
    // ------------------------------------------------------------------

    /// Formats the device and mounts the new, empty file system.
    pub fn format(mut dev: D, cfg: LfsConfig, clock: Arc<Clock>) -> FsResult<Self> {
        let sb = Superblock::derive(&cfg, dev.capacity_bytes())?;
        // Write the superblock synchronously: format must be durable.
        let sb_bytes = sb.encode();
        dev.annotate("superblock");
        dev.write(0, &sb_bytes, true)?;
        let mut fs = Self::fresh(dev, sb, cfg, clock);

        // Create the root directory.
        fs.imap.allocate_specific(Ino::ROOT)?;
        let now = fs.clock.now_ns();
        let root = Inode::new(Ino::ROOT, FileKind::Directory, 0, now);
        fs.inodes.insert(
            Ino::ROOT,
            CachedInode {
                inode: root,
                dirty: true,
            },
        );
        // The initial checkpoint makes the empty file system mountable.
        fs.checkpoint()?;
        Ok(fs)
    }

    /// Builds the common in-memory state shared by format and mount.
    pub(crate) fn fresh(mut dev: D, sb: Superblock, cfg: LfsConfig, clock: Arc<Clock>) -> Self {
        let cpu = CpuModel::sun_4_260(Arc::clone(&clock));
        // One metrics registry covers the whole stack: the device and the
        // cache re-home their instruments into it so disk, cache, and
        // file-system counters share a single snapshot/export.
        let registry = obs::Registry::new();
        dev.attach_obs(&registry);
        let seg_bytes = sb.seg_blocks as u64 * sb.block_size as u64;
        // The flush unit is one segment: the memory manager's flush
        // efficiency and boundary tuning are both expressed relative to
        // segment-sized log writes.
        let mut cache = MemMgr::new(
            sb.block_size as usize,
            (cfg.cache_bytes / sb.block_size as usize).max(8),
            MemConfig::adaptive(cfg.writeback, seg_bytes).with_policy(cfg.cache_policy),
        );
        cache.attach_obs(&registry);
        let imap = Imap::new(sb.max_inodes, sb.imap_entries_per_block() as usize);
        let usage = UsageTable::new(
            sb.nsegments,
            seg_bytes,
            sb.usage_entries_per_block() as usize,
        );
        let reserve = 2 + cfg.cache_bytes.div_ceil(seg_bytes as usize);
        let reserve = reserve.min(sb.nsegments as usize / 4).max(1);
        let total_blocks = (dev.capacity_bytes() / sb.block_size as u64) as usize;
        let mut fs = Self {
            dev,
            sb,
            cfg,
            clock,
            cpu,
            cache,
            imap,
            usage,
            inodes: HashMap::new(),
            pos: LogPosition {
                seg: SegNo(0),
                offset: 0,
                partial: 0,
                seq: 1,
            },
            cp_serial: 0,
            cp_use_b: false,
            last_cp_ns: 0,
            obs: LfsObs::new(registry),
            pending_next_seg: None,
            in_maintenance: false,
            reserve_segments: reserve,
            block_crc: vec![None; total_blocks],
            read_only: false,
            cleaner_run: None,
            cleaner_futile_at: None,
        };
        fs.usage.set_state(SegNo(0), SegState::Active);
        fs
    }

    /// Replaces the CPU model (e.g. for the CPU-scaling experiment).
    pub fn set_cpu_mips(&mut self, mips: f64) {
        self.cpu = CpuModel::new(Arc::clone(&self.clock), mips);
    }

    // ------------------------------------------------------------------
    // Accessors.
    // ------------------------------------------------------------------

    /// The file-system block size in bytes.
    pub fn block_size(&self) -> usize {
        self.sb.block_size as usize
    }

    /// The superblock (immutable geometry).
    pub fn superblock(&self) -> &Superblock {
        &self.sb
    }

    /// A point-in-time snapshot of the operational counters.
    pub fn stats(&self) -> LfsStats {
        self.obs.stats()
    }

    /// The stack's shared metrics registry (device + cache + file
    /// system), for snapshots, event dumps, and JSON export.
    pub fn obs(&self) -> &obs::Registry {
        &self.obs.registry
    }

    /// The shared virtual clock.
    pub fn clock(&self) -> &Arc<Clock> {
        &self.clock
    }

    /// A point-in-time report of the memory manager: pool sizes, the
    /// write/read boundary, traffic counters, flush efficiency, and
    /// per-client residency/hit attribution.
    pub fn cache_report(&self) -> CacheReport {
        self.cache.report()
    }

    /// Forces the memory manager's write-buffer target to `blocks`
    /// (clamped to its internal bounds). Primarily a test hook: the
    /// adaptive tuner normally moves the boundary on its own.
    pub fn set_cache_boundary(&mut self, blocks: usize) {
        self.cache.set_boundary(blocks);
    }

    /// Borrows the underlying device (e.g. to inspect I/O statistics).
    pub fn device(&self) -> &D {
        &self.dev
    }

    /// Mutably borrows the underlying device.
    pub fn device_mut(&mut self) -> &mut D {
        &mut self.dev
    }

    /// Unmounts without syncing and returns the device (crash testing).
    pub fn into_device(self) -> D {
        self.dev
    }

    /// The segment usage table (read-only view for experiments).
    pub fn usage_table(&self) -> &UsageTable {
        &self.usage
    }

    /// The inode map (read-only view for experiments and fsck).
    pub fn inode_map(&self) -> &Imap {
        &self.imap
    }

    /// Number of inodes currently held in the in-memory inode table.
    pub fn cached_inode_count(&self) -> usize {
        self.inodes.len()
    }

    /// Returns true if the file system has degraded to read-only.
    pub fn is_read_only(&self) -> bool {
        self.read_only
    }

    /// Fails with [`FsError::ReadOnly`] if the file system has degraded.
    pub(crate) fn check_writable(&self) -> FsResult<()> {
        if self.read_only {
            Err(FsError::ReadOnly)
        } else {
            Ok(())
        }
    }

    /// Degrades the file system to read-only and records why.
    pub(crate) fn set_read_only(&mut self, why: &str) {
        if !self.read_only {
            self.read_only = true;
            self.obs
                .registry
                .event(self.clock.now_ns(), "read-only", why.to_string());
        }
    }

    /// Current virtual time.
    pub(crate) fn now(&self) -> u64 {
        self.clock.now_ns()
    }

    /// Charges CPU work to the virtual clock.
    pub(crate) fn charge(&self, cost: CpuCost) {
        self.cpu.charge(cost);
    }

    /// Sector address of a block.
    pub(crate) fn sector_of(&self, addr: BlockAddr) -> u64 {
        addr.0 as u64 * (self.sb.block_size as u64 / sim_disk::SECTOR_SIZE as u64)
    }

    // ------------------------------------------------------------------
    // Raw block I/O.
    // ------------------------------------------------------------------

    /// Reads one block from disk (synchronous).
    pub(crate) fn read_block_raw(&mut self, addr: BlockAddr) -> FsResult<Vec<u8>> {
        let mut buf = vec![0u8; self.block_size()];
        self.dev.read(self.sector_of(addr), &mut buf)?;
        Ok(buf)
    }

    /// Reads a metadata block through the address-keyed cache.
    pub(crate) fn read_meta_block(&mut self, ns: u32, addr: BlockAddr) -> FsResult<Vec<u8>> {
        let key = BlockKey::meta(ns, addr.0 as u64);
        if let Some(data) = self.cache.get(key) {
            return Ok(data.to_vec());
        }
        let data = self.read_block_raw(addr)?;
        self.verify_block("metadata block", addr, &data)?;
        self.cache
            .insert_clean(key, data.clone().into_boxed_slice());
        Ok(data)
    }

    // ------------------------------------------------------------------
    // End-to-end block integrity.
    // ------------------------------------------------------------------

    /// Remembers the expected end-to-end checksum of block `addr`.
    pub(crate) fn record_block_crc(&mut self, addr: BlockAddr, crc: u32) {
        if let Some(slot) = self.block_crc.get_mut(addr.0 as usize) {
            *slot = Some(crc);
        }
    }

    /// The expected checksum of block `addr`, if known.
    pub(crate) fn expected_crc(&self, addr: BlockAddr) -> Option<u32> {
        self.block_crc.get(addr.0 as usize).copied().flatten()
    }

    /// Verifies a block just read from the log against its recorded
    /// end-to-end checksum. Blocks with no recorded checksum pass
    /// unverified; a mismatch is reported as a typed
    /// [`FsError::Corruption`], never returned silently.
    pub(crate) fn verify_block(
        &mut self,
        what: &'static str,
        addr: BlockAddr,
        data: &[u8],
    ) -> FsResult<()> {
        let Some(expected) = self.expected_crc(addr) else {
            return Ok(());
        };
        if crate::layout::summary::block_checksum(data) != expected {
            self.obs.corruptions_detected.inc();
            self.obs.registry.event(
                self.clock.now_ns(),
                "corruption",
                format!("what={what} addr={}", addr.0),
            );
            return Err(FsError::Corruption {
                what,
                addr: addr.0 as u64,
            });
        }
        self.obs.verified_reads.inc();
        Ok(())
    }

    /// Records that the only remaining copy of a live block failed its
    /// checksum: counts the loss and degrades the mount to read-only.
    pub(crate) fn note_unrecoverable(&mut self, what: &'static str, addr: BlockAddr) {
        self.obs.corruptions_detected.inc();
        self.obs.scrub_unrecoverable.inc();
        self.obs.registry.event(
            self.clock.now_ns(),
            "corruption",
            format!("unrecoverable {what} addr={}", addr.0),
        );
        self.set_read_only("unrecoverable corruption in live data");
    }

    // ------------------------------------------------------------------
    // Inode table.
    // ------------------------------------------------------------------

    /// Ensures `ino` is loaded in the inode table.
    pub(crate) fn ensure_inode(&mut self, ino: Ino) -> FsResult<()> {
        if self.inodes.contains_key(&ino) {
            return Ok(());
        }
        let entry = self.imap.get(ino)?;
        if !entry.allocated {
            return Err(FsError::NotFound);
        }
        if entry.addr.is_nil() {
            return Err(FsError::Corrupt("allocated inode was never written"));
        }
        let block = self.read_meta_block(NS_INODE_BLOCKS, entry.addr)?;
        let inode = inode_block::unpack_slot(&block, entry.slot as usize)?
            .ok_or(FsError::Corrupt("inode slot empty"))?;
        if inode.ino != ino {
            return Err(FsError::Corrupt("inode number mismatch"));
        }
        if inode.version != entry.version {
            return Err(FsError::Corrupt("inode version mismatch"));
        }
        self.inodes.insert(
            ino,
            CachedInode {
                inode,
                dirty: false,
            },
        );
        Ok(())
    }

    /// Returns a copy of an inode.
    pub(crate) fn inode(&mut self, ino: Ino) -> FsResult<Inode> {
        self.ensure_inode(ino)?;
        Ok(self.inodes[&ino].inode.clone())
    }

    /// Mutates an inode in place and marks it dirty.
    pub(crate) fn with_inode_mut<R>(
        &mut self,
        ino: Ino,
        f: impl FnOnce(&mut Inode) -> R,
    ) -> FsResult<R> {
        self.ensure_inode(ino)?;
        let slot = self.inodes.get_mut(&ino).unwrap();
        slot.dirty = true;
        Ok(f(&mut slot.inode))
    }

    // ------------------------------------------------------------------
    // Usage accounting.
    // ------------------------------------------------------------------

    /// Records that `bytes` previously live at `addr` are now dead.
    pub(crate) fn retire(&mut self, addr: BlockAddr, bytes: u64) {
        if let Some((seg, _)) = self.sb.seg_of(addr) {
            self.usage.sub_live(seg, bytes);
        }
    }

    // ------------------------------------------------------------------
    // The segment writer.
    // ------------------------------------------------------------------

    /// Appends one payload block to the current chunk, opening chunks and
    /// sealing segments as needed. Returns the block's new disk address.
    pub(crate) fn chunk_add(
        &mut self,
        ctx: &mut FlushCtx,
        kind: BlockKind,
        version: u32,
        data: &[u8],
        live_bytes: u64,
    ) -> FsResult<BlockAddr> {
        loop {
            if ctx.builder.is_none() {
                self.open_chunk(ctx)?;
            }
            if ctx.builder.as_ref().unwrap().is_full() {
                self.emit_chunk(ctx)?;
                continue;
            }
            let builder = ctx.builder.as_mut().unwrap();
            let addr = builder.add(kind, version, data);
            let now = self.now();
            let seg = builder.seg();
            self.usage.add_live(seg, live_bytes, now);
            return Ok(addr);
        }
    }

    /// Opens a new chunk at the current log position, sealing the current
    /// segment first if its tail is too small.
    fn open_chunk(&mut self, ctx: &mut FlushCtx) -> FsResult<()> {
        loop {
            let remaining = (self.sb.seg_blocks - self.pos.offset) as usize;
            let seg_base = self.sb.seg_block(self.pos.seg, 0);
            match ChunkBuilder::new(
                self.pos.seg,
                seg_base,
                self.pos.offset,
                remaining,
                self.block_size(),
            ) {
                Some(builder) => {
                    ctx.builder = Some(builder);
                    return Ok(());
                }
                None => self.seal_segment()?,
            }
        }
    }

    /// Writes the current chunk to disk (one sequential, asynchronous
    /// transfer) and advances the log position.
    pub(crate) fn emit_chunk(&mut self, ctx: &mut FlushCtx) -> FsResult<()> {
        let Some(builder) = ctx.builder.take() else {
            return Ok(());
        };
        if builder.is_empty() {
            // Nothing was added; release the reservation without writing.
            return Ok(());
        }
        let now = self.now();
        // If no further chunk fits after this one — or a seal-on-flush
        // seal is imminent — this chunk seals the segment: record where
        // the log continues so roll-forward can follow the chain
        // without scanning the disk (§4.3.1: segments are "formed into
        // a linked list").
        let offset_after = self.pos.offset + builder.blocks_used();
        let seals = ctx.seal_after
            || crate::log::plan_chunk(
                (self.sb.seg_blocks.saturating_sub(offset_after)) as usize,
                self.block_size(),
            )
            .is_none();
        let next_seg = if seals {
            let next = self
                .usage
                .next_clean(SegNo((self.pos.seg.0 + 1) % self.sb.nsegments));
            self.pending_next_seg = next;
            next.unwrap_or(SegNo::NIL)
        } else {
            SegNo::NIL
        };
        let chunk = builder.finish(self.pos.seq, self.pos.partial, now, next_seg);
        // Remember what every block of this chunk should read back as:
        // summary blocks lose any stale checksum from a previous segment
        // incarnation, payload blocks get the freshly stamped one.
        for b in 0..chunk.blocks_used {
            if let Some(slot) = self.block_crc.get_mut((chunk.addr.0 + b) as usize) {
                *slot = None;
            }
        }
        for (i, &crc) in chunk.entry_crcs.iter().enumerate() {
            let addr = BlockAddr(chunk.addr.0 + chunk.summary_blocks + i as u32);
            self.record_block_crc(addr, crc);
        }
        self.dev.annotate("log-chunk");
        self.dev
            .write(self.sector_of(chunk.addr), &chunk.bytes, false)?;
        self.pos.offset += chunk.blocks_used;
        self.pos.partial += 1;
        ctx.wrote = true;
        self.obs.chunks_written.inc();
        self.obs.summary_blocks_written.add(chunk.summary_blocks as u64);
        if self.pos.offset < self.sb.seg_blocks {
            self.obs.partial_chunks.inc();
        }
        Ok(())
    }

    /// Test-only wrapper around [`Lfs::seal_segment`].
    #[cfg(test)]
    pub(crate) fn seal_segment_for_test(&mut self) -> FsResult<()> {
        self.seal_segment()
    }

    /// Test-only mutable access to the usage table.
    #[cfg(test)]
    pub(crate) fn usage_mut_for_test(&mut self) -> &mut UsageTable {
        &mut self.usage
    }

    /// Test-only view of the log position.
    #[cfg(test)]
    pub(crate) fn log_position_for_test(&self) -> LogPosition {
        self.pos
    }

    /// Seals the active segment and opens the next clean one.
    fn seal_segment(&mut self) -> FsResult<()> {
        let cur = self.pos.seg;
        self.usage.set_state(cur, SegState::Dirty);
        self.obs.segments_sealed.inc();
        // Prefer the segment promised by the sealing chunk's next_seg
        // link, falling back to a fresh scan if it is no longer clean.
        let promised = self
            .pending_next_seg
            .take()
            .filter(|&seg| self.usage.state(seg) == SegState::Clean);
        let next = match promised {
            Some(seg) => seg,
            None => self
                .usage
                .next_clean(SegNo((cur.0 + 1) % self.sb.nsegments))
                .ok_or(FsError::NoSpace)?,
        };
        self.usage.set_state(next, SegState::Active);
        self.obs.registry.event(
            self.clock.now_ns(),
            "segment_sealed",
            format!("seg={} next={} seq={}", cur.0, next.0, self.pos.seq + 1),
        );
        // Purge address-keyed metadata cache entries for the reused
        // region: block addresses are being recycled.
        let base = self.sb.seg_block(next, 0).0 as u64;
        self.cache.remove_owner_index_range(
            Owner::Meta(NS_INODE_BLOCKS),
            base,
            base + self.sb.seg_blocks as u64,
        );
        self.pos = LogPosition {
            seg: next,
            offset: 0,
            partial: 0,
            seq: self.pos.seq + 1,
        };
        Ok(())
    }

    // ------------------------------------------------------------------
    // Flush: drain dirty state into the log.
    // ------------------------------------------------------------------

    /// Writes dirty blocks to the log. `include_imap` additionally writes
    /// dirty inode-map blocks; `include_usage` writes the whole usage
    /// table (both normally only at checkpoints).
    pub(crate) fn flush(&mut self, include_imap: bool, include_usage: bool) -> FsResult<()> {
        self.flush_as(include_imap, include_usage, FlushCause::Sync)
    }

    /// [`Lfs::flush`] with an explicit cause, so the memory manager can
    /// attribute the flush's efficiency to the policy that forced it
    /// (cache pressure vs. age vs. sync) when tuning its write/read
    /// boundary.
    pub(crate) fn flush_as(
        &mut self,
        include_imap: bool,
        include_usage: bool,
        cause: FlushCause,
    ) -> FsResult<()> {
        let was_maintenance = std::mem::replace(&mut self.in_maintenance, true);
        let chunks_before = self.obs.chunks_written.get();
        let payload_before = self.payload_blocks_written();
        let result = self.flush_inner(include_imap, include_usage);
        self.in_maintenance = was_maintenance;
        // Report payload bytes per chunk write so the manager can track
        // flush efficiency (how full each log write ran relative to a
        // segment) and tune the write-buffer boundary.
        let chunk_writes = self.obs.chunks_written.get() - chunks_before;
        if chunk_writes > 0 {
            let payload = self.payload_blocks_written() - payload_before;
            self.cache
                .note_flush(payload * self.sb.block_size as u64, chunk_writes, cause);
        }
        result
    }

    /// Total payload (non-summary) blocks written to the log so far.
    fn payload_blocks_written(&self) -> u64 {
        self.obs.data_blocks_written.get()
            + self.obs.indirect_blocks_written.get()
            + self.obs.inode_blocks_written.get()
            + self.obs.imap_blocks_written.get()
            + self.obs.usage_blocks_written.get()
    }

    fn flush_inner(&mut self, include_imap: bool, include_usage: bool) -> FsResult<()> {
        let mut ctx = FlushCtx::new();

        // Which files have dirty state?
        let mut owners: Vec<Ino> = self
            .cache
            .dirty_keys()
            .into_iter()
            .filter_map(|k| match k.owner {
                Owner::File(ino) => Some(ino),
                Owner::Meta(_) => None,
            })
            .collect();
        owners.extend(
            self.inodes
                .iter()
                .filter(|(_, c)| c.dirty)
                .map(|(&ino, _)| ino),
        );
        owners.sort();
        owners.dedup();

        // Phase 1: data blocks, grouped by file, ascending block index.
        for &ino in &owners {
            let version = self.imap.get(ino)?.version;
            let keys: Vec<BlockKey> = self
                .cache
                .dirty_keys_of(Owner::File(ino))
                .into_iter()
                .filter(|k| is_data_idx(k.index))
                .collect();
            for key in keys {
                let data = self
                    .cache
                    .get(key)
                    .expect("dirty block must be cached")
                    .to_vec();
                let bno = key.index as u32;
                let addr = self.chunk_add(
                    &mut ctx,
                    BlockKind::Data { ino, bno },
                    version,
                    &data,
                    self.block_size() as u64,
                )?;
                let old = self.set_block_ptr(ino, bno as u64, addr)?;
                self.retire(old, self.block_size() as u64);
                self.cache.mark_clean(key);
                self.obs.data_blocks_written.inc();
            }
        }

        // Phase 2: indirect blocks, children before parents (a parent's
        // content embeds its children's new addresses). Descending cache
        // index order guarantees this: double-children > double-top >
        // single.
        for &ino in &owners {
            let version = self.imap.get(ino)?.version;
            loop {
                let key = self
                    .cache
                    .dirty_keys_of(Owner::File(ino))
                    .into_iter()
                    .filter(|k| !is_data_idx(k.index))
                    .max_by_key(|k| k.index);
                let Some(key) = key else { break };
                let data = self
                    .cache
                    .get(key)
                    .expect("dirty block must be cached")
                    .to_vec();
                let kind = if key.index == IDX_SINGLE {
                    BlockKind::IndSingle { ino }
                } else if key.index == IDX_DTOP {
                    BlockKind::IndDoubleTop { ino }
                } else {
                    BlockKind::IndDoubleChild {
                        ino,
                        outer: (key.index - IDX_DCHILD_BASE) as u32,
                    }
                };
                let addr =
                    self.chunk_add(&mut ctx, kind, version, &data, self.block_size() as u64)?;
                let old = self.set_indirect_ptr(ino, key.index, addr)?;
                self.retire(old, self.block_size() as u64);
                self.cache.mark_clean(key);
                self.obs.indirect_blocks_written.inc();
            }
        }

        // Phase 3: inodes, packed into inode blocks.
        let mut dirty_inos: Vec<Ino> = self
            .inodes
            .iter()
            .filter(|(_, c)| c.dirty)
            .map(|(&ino, _)| ino)
            .collect();
        dirty_inos.sort();
        let per_block = self.sb.inodes_per_block() as usize;
        for group in dirty_inos.chunks(per_block) {
            // Stamp each inode with its current imap version before
            // packing, so the on-disk copy self-identifies.
            for &ino in group {
                let version = self.imap.get(ino)?.version;
                let slot = self.inodes.get_mut(&ino).unwrap();
                slot.inode.version = version;
            }
            let inode_refs: Vec<&Inode> = group.iter().map(|ino| &self.inodes[ino].inode).collect();
            let block = inode_block::pack(&inode_refs, self.block_size());
            let live = (group.len() * INODE_SIZE) as u64;
            let addr = self.chunk_add(&mut ctx, BlockKind::InodeBlock, 0, &block, live)?;
            for (slot, &ino) in group.iter().enumerate() {
                let old = self.imap.get(ino)?;
                if old.addr.is_some() {
                    self.retire(old.addr, INODE_SIZE as u64);
                }
                self.imap.set_location(ino, addr, slot as u16)?;
                self.inodes.get_mut(&ino).unwrap().dirty = false;
            }
            // Keep the freshly written inode block readable without disk.
            self.cache.insert_clean(
                BlockKey::meta(NS_INODE_BLOCKS, addr.0 as u64),
                block.into_boxed_slice(),
            );
            self.obs.inode_blocks_written.inc();
        }

        // Phase 4: inode-map blocks (checkpoints only). Metadata blocks
        // are not counted as live bytes: the usage table is a cleaning
        // hint for *data*, and counting the table's own placement would
        // make its serialised form self-referential (the paper's "costly
        // exact crash recovery of this data structure is not needed").
        if include_imap {
            for index in self.imap.dirty_blocks() {
                let block = self.imap.encode_block(index, self.block_size());
                let addr = self.chunk_add(
                    &mut ctx,
                    BlockKind::ImapBlock {
                        index: index as u32,
                    },
                    0,
                    &block,
                    0,
                )?;
                self.imap.commit_block(index, addr);
                self.obs.imap_blocks_written.inc();
            }
        }

        // Phase 5: the whole segment-usage table (checkpoints only).
        // Like the inode map, the table's own blocks count zero live
        // bytes, so its serialised contents do not depend on their own
        // placement.
        if include_usage {
            for index in 0..self.usage.nblocks() {
                let block = self.usage.encode_block(index, self.block_size());
                let addr = self.chunk_add(
                    &mut ctx,
                    BlockKind::UsageBlock {
                        index: index as u32,
                    },
                    0,
                    &block,
                    0,
                )?;
                self.usage.commit_block(index, addr);
                self.obs.usage_blocks_written.inc();
            }
        }

        ctx.seal_after = self.cfg.seal_on_flush;
        self.emit_chunk(&mut ctx)?;
        // Seal-on-flush: retire the segment so no later flush appends
        // into a parity row that now holds committed chunks (see
        // [`LfsConfig::seal_on_flush`]). The final chunk above stamped
        // the `next_seg` link this seal will follow. An empty flush
        // wrote nothing and seals nothing.
        if self.cfg.seal_on_flush && ctx.wrote {
            self.seal_segment()?;
        }
        Ok(())
    }

    /// Initiates one delayed write-back: packs all dirty blocks into log
    /// chunks and issues the (asynchronous) segment writes, without
    /// taking a checkpoint. This is the bare "segment write" of §4.1;
    /// [`Lfs::checkpoint`] and `sync` build on it.
    pub fn write_back(&mut self) -> FsResult<()> {
        self.flush(false, false)
    }

    // ------------------------------------------------------------------
    // Automatic write-back and space maintenance (§4.3.5).
    // ------------------------------------------------------------------

    /// Called at the end of every public operation: applies the paper's
    /// segment-write timing rules and keeps clean segments available.
    pub(crate) fn maybe_writeback(&mut self) -> FsResult<()> {
        if self.in_maintenance || self.read_only {
            return Ok(());
        }
        let now = self.now();

        // Periodic checkpoint (30 s in the paper).
        if now.saturating_sub(self.last_cp_ns) >= self.cfg.checkpoint_interval_ns {
            self.checkpoint()?;
            return Ok(());
        }

        // Cache-driven write-back: cache full or dirty data too old.
        if let Some(trigger) = self.cache.writeback_trigger(now) {
            let cause = match trigger {
                WritebackTrigger::CacheFull => FlushCause::CachePressure,
                WritebackTrigger::AgeThreshold => FlushCause::AgeThreshold,
            };
            self.flush_as(false, false, cause)?;
        }

        // Bound the in-memory inode table: clean entries reload from the
        // log via the inode map, so dropping them is free. Evict in
        // ascending ino order — a stable choice, where dropping in
        // HashMap iteration order would make the future read pattern
        // (and thus every timing metric) vary from process to process.
        let inode_cap = self.cache.capacity_blocks().max(1024);
        if self.inodes.len() > inode_cap {
            let mut clean: Vec<Ino> = self
                .inodes
                .iter()
                .filter(|(_, cached)| !cached.dirty)
                .map(|(&ino, _)| ino)
                .collect();
            clean.sort();
            clean.truncate(self.inodes.len() - inode_cap);
            for ino in clean {
                self.inodes.remove(&ino);
            }
        }

        // Cleaner activation: clean-segment count below threshold. The
        // floor covers the worst case of one full cache flush plus the
        // checkpoint that commits the cleaner's relocations. In async
        // mode the host-stepped run handles the normal watermarks, so
        // foreground operations only clean at the emergency floor — the
        // point below which the next flush could wedge the log.
        let async_mode = matches!(self.cfg.cleaner.run_mode, crate::CleanerRunMode::Async(_));
        let activate_below = if async_mode {
            self.reserve_segments + 2
        } else {
            self.cfg
                .cleaner
                .activate_below_clean
                .max(self.reserve_segments + 2)
        };
        if self.usage.clean_count() < activate_below {
            // An in-progress async run may be sitting on fully-cleaned
            // segments parked in CleanPending: committing them with a
            // checkpoint is far cheaper than synchronous cleaning, so
            // try that first.
            if async_mode
                && !self
                    .usage
                    .segments_in_state(SegState::CleanPending)
                    .is_empty()
            {
                self.dev.set_maintenance(true);
                let cp = self.checkpoint();
                self.dev.set_maintenance(false);
                cp?;
            }
            if self.usage.clean_count() < activate_below {
                if async_mode {
                    self.obs.async_emergency_passes.inc();
                }
                // Threshold cleaning is maintenance work even though a
                // foreground operation triggered it: tag its device I/O
                // so engine accounting bills the queue waits to the
                // maintenance class rather than the unlucky client.
                self.dev.set_maintenance(true);
                let result = self.clean_threshold_passes(activate_below);
                self.dev.set_maintenance(false);
                result?;
            }
        }
        Ok(())
    }

    /// The synchronous clean-on-threshold body: several passes sharing
    /// one relocation budget, then the checkpoint that commits them.
    fn clean_threshold_passes(&mut self, activate_below: usize) -> FsResult<()> {
        // Several passes share one relocation budget and one
        // checkpoint: on small segments a per-pass checkpoint would
        // cost more log space than a pass reclaims.
        self.in_maintenance = true;
        let mut budget = self.relocation_budget();
        let mut result = Ok(());
        for _ in 0..4 {
            match self.clean_pass_with_budget(&mut budget) {
                Ok(outcome) if outcome.segments == 0 => break,
                Ok(_) => {}
                Err(e) => {
                    result = Err(e);
                    break;
                }
            }
            let pending = self.usage.segments_in_state(SegState::CleanPending).len();
            if self.usage.clean_count() + pending >= activate_below + 4 {
                break;
            }
        }
        self.in_maintenance = false;
        result?;
        // Commit the relocations so cleaned segments become reusable.
        self.checkpoint()?;
        Ok(())
    }

    /// Returns [`FsError::NoSpace`] unless roughly `incoming` more bytes
    /// fit while preserving (a) the segment reserve a checkpoint needs
    /// and (b) the utilization headroom the cleaner needs to keep
    /// reclaiming more space per pass than its checkpoints consume.
    pub(crate) fn check_space(&self, incoming: u64) -> FsResult<()> {
        let seg_bytes = self.usage.seg_bytes();
        let capacity = self.sb.log_capacity_bytes();
        let reserve = self.reserve_segments as u64 * seg_bytes;
        let cap = (capacity as f64 * self.cfg.max_utilization) as u64;
        let budget = cap.saturating_sub(reserve + seg_bytes);
        if self.usage.total_live_bytes() + incoming > budget {
            return Err(FsError::NoSpace);
        }
        Ok(())
    }
}
