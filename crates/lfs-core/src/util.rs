//! Little-endian serialisation helpers and CRC-32.
//!
//! The implementations live in [`vfs::wire`], shared with the FFS
//! baseline; re-exported here for the layout modules.

pub use vfs::wire::{crc32, crc32_update, crc32c, ByteReader, ByteWriter};
