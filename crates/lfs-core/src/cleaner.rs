//! The segment cleaner (§4.3.2 – §4.3.4).
//!
//! Cleaning is "a form of incremental garbage collection where the
//! fragmented segments are compressed together to create space to write
//! new segments". It runs in two phases:
//!
//! 1. **Identify & read**: read candidate segments, walk their summary
//!    chunks, and classify every block live or dead. The fast path
//!    (§4.3.3 step 1) compares the version number recorded in the summary
//!    against the inode map — a mismatch means the file was deleted or
//!    truncated, so the block is dead without touching the inode. The slow
//!    path (step 2) maps the block through the inode and indirect blocks
//!    and compares addresses. Live blocks are put in the file cache,
//!    *dirty*.
//! 2. **Write**: the ordinary cache write-back code packs the relocated
//!    blocks into new segments.
//!
//! A cleaned segment is not reusable immediately: until the following
//! checkpoint commits, the on-disk metadata still references its old
//! contents, so a crash in between must find them intact. Cleaned
//! segments are parked in [`SegState::CleanPending`] and promoted by
//! [`Lfs::checkpoint`].

use block_cache::BlockKey;
use sim_disk::{BlockDevice, CpuCost};
use vfs::{FsError, FsResult};

use crate::fs::{idx_dchild, CachedInode, Lfs, IDX_DTOP, IDX_SINGLE};
use crate::layout::inode::inode_block;
use crate::layout::summary::{self, BlockKind, ChunkSummary};
use crate::layout::usage_block::SegState;
use crate::types::{BlockAddr, SegNo};

/// Victim-selection policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CleanerPolicy {
    /// Clean the segments with the most free space (the paper's §4.3.4:
    /// "it is desirable to choose the segments with the most free space").
    Greedy,
    /// Weigh free space against data age: maximise
    /// `(1 - u) * age / (1 + u)`. The cost-benefit policy from the LFS
    /// line of work; implemented here as an ablation.
    CostBenefit,
    /// Clean the least-recently-written segments first (FIFO baseline).
    Oldest,
}

/// How cleaning is driven.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CleanerRunMode {
    /// Clean synchronously inside foreground operations whenever the
    /// clean-segment count drops below `activate_below_clean` (the
    /// original clean-on-threshold path).
    Sync,
    /// Incremental: foreground operations never clean (beyond an
    /// emergency floor that keeps the log from wedging); the host steps
    /// a resumable [`crate::CleanerRun`] between operations via
    /// [`crate::Lfs::cleaner_step`], typically as a dedicated engine
    /// client so cleaning I/O competes in the same request queues.
    Async(AsyncCleanerPolicy),
}

/// Aggressiveness policy for [`CleanerRunMode::Async`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AsyncCleanerPolicy {
    /// Start a cleaner run when clean + clean-pending segments drop
    /// below this count.
    pub low_watermark: usize,
    /// Stop cleaning once clean + clean-pending segments reach this
    /// count (hysteresis: must be > `low_watermark`).
    pub high_watermark: usize,
    /// Maximum blocks read from the victim segment per step — the
    /// cleaner's in-flight I/O cap, bounding how long one step can
    /// occupy the device ahead of a foreground request.
    pub max_step_read_blocks: usize,
    /// Maximum summary entries classified per step (CPU bound per step).
    pub max_step_entries: usize,
    /// Idle-only gating: when set, [`crate::Lfs::cleaner_wants_step`]
    /// reports `true` only while the engine queue depth is at or below
    /// this bound (the paper's "clean during idle periods").
    pub idle_queue_depth: Option<u64>,
    /// Segment-round-robin spindle count of the underlying volume.
    /// When > 1, victim selection prefers segments living on a spindle
    /// other than the one the log head is writing, so cleaner reads
    /// overlap foreground writes instead of queueing behind them.
    pub stripe_spindles: usize,
}

impl Default for AsyncCleanerPolicy {
    fn default() -> Self {
        Self {
            low_watermark: 6,
            high_watermark: 10,
            max_step_read_blocks: 8,
            max_step_entries: 32,
            idle_queue_depth: None,
            stripe_spindles: 1,
        }
    }
}

impl AsyncCleanerPolicy {
    /// Builder-style override of the watermarks.
    pub fn with_watermarks(mut self, low: usize, high: usize) -> Self {
        self.low_watermark = low;
        self.high_watermark = high;
        self
    }

    /// Builder-style override of the per-step I/O and CPU caps.
    pub fn with_step_caps(mut self, read_blocks: usize, entries: usize) -> Self {
        self.max_step_read_blocks = read_blocks;
        self.max_step_entries = entries;
        self
    }

    /// Builder-style idle-only gating.
    pub fn with_idle_gate(mut self, queue_depth: u64) -> Self {
        self.idle_queue_depth = Some(queue_depth);
        self
    }

    /// Builder-style spindle-aware victim preference.
    pub fn with_stripe_spindles(mut self, spindles: usize) -> Self {
        self.stripe_spindles = spindles.max(1);
        self
    }
}

/// Cleaner tuning.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CleanerConfig {
    /// Victim-selection policy.
    pub policy: CleanerPolicy,
    /// Start cleaning when fewer than this many segments are clean
    /// ("cleaning is activated when the number of clean segments drops
    /// below a threshold value").
    pub activate_below_clean: usize,
    /// Maximum segments processed per cleaning pass.
    pub segments_per_pass: usize,
    /// Skip candidates whose live fraction exceeds this ("segments are
    /// cleaned until all segments are either clean or contain at least a
    /// file-system-settable fraction of live blocks").
    pub max_candidate_utilization: f64,
    /// Use the §4.3.3 step-1 fast path (summary version number vs inode
    /// map) to classify blocks without walking inodes. Disabled only by
    /// the liveness-fastpath ablation; correctness does not depend on it.
    pub use_version_fastpath: bool,
    /// Synchronous clean-on-threshold or incremental host-driven
    /// cleaning; see [`CleanerRunMode`].
    pub run_mode: CleanerRunMode,
}

impl Default for CleanerConfig {
    fn default() -> Self {
        Self {
            policy: CleanerPolicy::Greedy,
            activate_below_clean: 4,
            segments_per_pass: 8,
            max_candidate_utilization: 0.98,
            use_version_fastpath: true,
            run_mode: CleanerRunMode::Sync,
        }
    }
}

/// Outcome of one cleaning pass.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CleanOutcome {
    /// Segments processed.
    pub segments: usize,
    /// Live blocks copied back into the cache.
    pub live_blocks: u64,
    /// Live inodes re-dirtied.
    pub live_inodes: u64,
}

impl<D: BlockDevice> Lfs<D> {
    /// Chooses up to `limit` victim segments according to the policy.
    pub(crate) fn pick_victims(&self, limit: usize) -> Vec<SegNo> {
        let now = self.now();
        let mut candidates: Vec<SegNo> = self
            .usage
            .segments_in_state(SegState::Dirty)
            .into_iter()
            .filter(|&seg| {
                self.usage.utilization(seg) <= self.cfg.cleaner.max_candidate_utilization
            })
            .collect();
        match self.cfg.cleaner.policy {
            CleanerPolicy::Greedy => {
                candidates.sort_by_key(|&seg| self.usage.get(seg).live_bytes);
            }
            CleanerPolicy::Oldest => {
                candidates.sort_by_key(|&seg| self.usage.get(seg).last_write_ns);
            }
            CleanerPolicy::CostBenefit => {
                let score = |seg: SegNo| -> f64 {
                    let u = self.usage.utilization(seg);
                    let age = now.saturating_sub(self.usage.get(seg).last_write_ns) as f64;
                    (1.0 - u) * age / (1.0 + u)
                };
                candidates.sort_by(|&a, &b| {
                    score(b)
                        .partial_cmp(&score(a))
                        .unwrap_or(std::cmp::Ordering::Equal)
                });
            }
        }
        candidates.truncate(limit);
        candidates
    }

    /// Runs one cleaning pass over up to `segments_per_pass` victims.
    ///
    /// Victims are additionally limited by a relocation budget: the live
    /// data they carry must fit in the clean segments currently available
    /// (minus a margin for metadata), or the checkpoint that commits the
    /// relocations could itself run out of space.
    ///
    /// The caller must follow up with a checkpoint to make the cleaned
    /// segments reusable.
    pub fn clean_pass(&mut self) -> FsResult<CleanOutcome> {
        let mut budget = self.relocation_budget();
        self.clean_pass_with_budget(&mut budget)
    }

    /// The default relocation budget: live bytes that can be rewritten
    /// into the currently clean segments, keeping a two-segment margin
    /// for checkpoint metadata.
    pub(crate) fn relocation_budget(&self) -> u64 {
        (self.usage.clean_count() as u64)
            .saturating_sub(2)
            .saturating_mul(self.usage.seg_bytes())
    }

    /// One cleaning pass drawing victims against a caller-managed budget
    /// (shared across several passes preceding one checkpoint, so the
    /// combined relocations still fit the available clean space).
    pub fn clean_pass_with_budget(&mut self, budget: &mut u64) -> FsResult<CleanOutcome> {
        let victims = self.pick_victims(self.cfg.cleaner.segments_per_pass);
        let mut outcome = CleanOutcome::default();
        for seg in victims {
            let live = self.usage.get(seg).live_bytes as u64;
            if live > *budget {
                continue;
            }
            *budget -= live;
            let (blocks, inodes) = self.clean_segment(seg)?;
            outcome.segments += 1;
            outcome.live_blocks += blocks;
            outcome.live_inodes += inodes;
        }
        self.obs.cleaner_passes.inc();
        self.obs.registry.event(
            self.clock.now_ns(),
            "cleaner_pass",
            format!(
                "segments={} live_blocks={} live_inodes={}",
                outcome.segments, outcome.live_blocks, outcome.live_inodes
            ),
        );
        Ok(outcome)
    }

    /// Cleans segments and checkpoints until at least `target` segments
    /// are clean (or no progress can be made). The user-level cleaning
    /// interface of §4.3.4 ("cleaning to be initialized at night or other
    /// times of slack usage"). Returns the number of clean segments.
    ///
    /// # Examples
    ///
    /// ```
    /// use std::sync::Arc;
    /// use lfs_core::{Lfs, LfsConfig};
    /// use sim_disk::{Clock, DiskGeometry, SimDisk};
    /// use vfs::FileSystem;
    ///
    /// let clock = Clock::new();
    /// let disk = SimDisk::new(DiskGeometry::tiny_test(16_384), Arc::clone(&clock));
    /// let mut fs = Lfs::format(disk, LfsConfig::small_test(), clock)?;
    /// // Churn, then compact overnight:
    /// for i in 0..20 {
    ///     fs.write_file(&format!("/f{i}"), &vec![0u8; 8_192])?;
    /// }
    /// for i in 0..18 {
    ///     fs.unlink(&format!("/f{i}"))?;
    /// }
    /// fs.sync()?;
    /// let clean = fs.clean_until(usize::MAX)?;
    /// assert!(clean > 0);
    /// # Ok::<(), vfs::FsError>(())
    /// ```
    pub fn clean_until(&mut self, target: usize) -> FsResult<usize> {
        let target = target.min(self.sb.nsegments as usize - 1);
        loop {
            let clean = self.usage.clean_count();
            if clean >= target {
                return Ok(clean);
            }
            self.in_maintenance = true;
            self.dev.set_maintenance(true);
            let outcome = self.clean_pass();
            let cp = outcome.is_ok().then(|| self.checkpoint());
            self.dev.set_maintenance(false);
            self.in_maintenance = false;
            let outcome = outcome?;
            cp.transpose()?;
            // Stop on no progress: either nothing was cleanable, or
            // compaction is only churning its own output (every victim's
            // free space went right back into rewriting its live data).
            if outcome.segments == 0 || self.usage.clean_count() <= clean {
                return Ok(self.usage.clean_count());
            }
        }
    }

    /// Cleans one segment: phase 1 of §4.3.2 (identify live blocks and
    /// read them into the cache, dirty). Returns `(blocks, inodes)`
    /// copied.
    pub fn clean_segment(&mut self, seg: SegNo) -> FsResult<(u64, u64)> {
        if self.usage.state(seg) != SegState::Dirty {
            return Err(FsError::Corrupt("cleaning a non-dirty segment"));
        }
        let bs = self.block_size();
        let seg_blocks = self.sb.seg_blocks as usize;
        let base = self.sb.seg_block(seg, 0);

        // Read the whole segment in one sequential transfer.
        let mut image = vec![0u8; seg_blocks * bs];
        self.dev.annotate("cleaner-read");
        self.dev.read(self.sector_of(base), &mut image)?;
        self.obs.cleaner_bytes_read.add(image.len() as u64);

        let mut offset = 0usize;
        let mut expected_seq: Option<u64> = None;
        let mut expected_partial = 0u32;
        let mut live_blocks = 0u64;
        let mut live_inodes = 0u64;

        while offset + 1 < seg_blocks {
            let here = BlockAddr(base.0 + offset as u32);
            let Ok(summary) = ChunkSummary::decode_at(&image[offset * bs..], here) else {
                break;
            };
            match expected_seq {
                None => {
                    if summary.partial != 0 {
                        break;
                    }
                    expected_seq = Some(summary.seq);
                }
                Some(seq) => {
                    if summary.seq != seq || summary.partial != expected_partial {
                        break;
                    }
                }
            }
            let s = (summary.reserved_blocks as usize)
                .max(ChunkSummary::summary_blocks(summary.entries.len(), bs));
            let payload_start = offset + s;
            if payload_start + summary.entries.len() > seg_blocks {
                break;
            }
            for (i, entry) in summary.entries.iter().enumerate() {
                let block_off = payload_start + i;
                let addr = BlockAddr(base.0 + block_off as u32);
                let data = &image[block_off * bs..(block_off + 1) * bs];
                let (blocks, inodes) =
                    self.clean_entry(entry.kind, entry.version, entry.crc, addr, data)?;
                live_blocks += blocks;
                live_inodes += inodes;
            }
            offset = payload_start + summary.entries.len();
            expected_partial += 1;
        }

        self.usage.set_state(seg, SegState::CleanPending);
        self.obs.segments_cleaned.inc();
        self.obs.cleaner_blocks_copied.add(live_blocks);
        self.obs.cleaner_inodes_copied.add(live_inodes);
        Ok((live_blocks, live_inodes))
    }

    /// Classifies one logged block and relocates it if live.
    ///
    /// `crc` is the block's end-to-end checksum from the summary entry:
    /// a live block whose disk bytes no longer match it is never copied
    /// forward (that would launder the corruption under a fresh
    /// checksum) — it is recovered from a cached copy when one exists,
    /// and otherwise reported as unrecoverable.
    pub(crate) fn clean_entry(
        &mut self,
        kind: BlockKind,
        version: u32,
        crc: u32,
        addr: BlockAddr,
        data: &[u8],
    ) -> FsResult<(u64, u64)> {
        self.charge(CpuCost::MapBlock);
        match kind {
            BlockKind::Data { ino, bno } => {
                let Ok(entry) = self.imap.get(ino) else {
                    return Ok((0, 0));
                };
                if !entry.allocated {
                    return Ok((0, 0));
                }
                // Fast path (§4.3.3 step 1): version mismatch = dead,
                // without touching the inode or indirect blocks.
                if self.cfg.cleaner.use_version_fastpath && entry.version != version {
                    return Ok((0, 0));
                }
                let key = BlockKey::file(ino, bno as u64);
                if self.cache.is_dirty(key) {
                    // A newer copy is already waiting to be written.
                    return Ok((0, 0));
                }
                // Slow path (step 2): is the block still part of the file?
                if self.map_block(ino, bno as u64)? != addr {
                    return Ok((0, 0));
                }
                let now = self.now();
                if self.cache.contains(key) {
                    // Clean cached copy: just re-dirty it.
                    self.cache.get_mut(key, now);
                } else {
                    if summary::block_checksum(data) != crc {
                        self.note_unrecoverable("file data block", addr);
                        return Ok((0, 0));
                    }
                    self.cache
                        .insert_dirty(key, data.to_vec().into_boxed_slice(), now);
                }
                self.charge(CpuCost::Instructions(
                    CpuCost::CopyKb.instructions() * (data.len() as u64).div_ceil(1024),
                ));
                Ok((1, 0))
            }
            BlockKind::IndSingle { ino }
            | BlockKind::IndDoubleTop { ino }
            | BlockKind::IndDoubleChild { ino, .. } => {
                let Ok(entry) = self.imap.get(ino) else {
                    return Ok((0, 0));
                };
                if !entry.allocated {
                    return Ok((0, 0));
                }
                if self.cfg.cleaner.use_version_fastpath && entry.version != version {
                    return Ok((0, 0));
                }
                let idx = match kind {
                    BlockKind::IndSingle { .. } => IDX_SINGLE,
                    BlockKind::IndDoubleTop { .. } => IDX_DTOP,
                    BlockKind::IndDoubleChild { outer, .. } => idx_dchild(outer),
                    _ => unreachable!(),
                };
                let key = BlockKey::file(ino, idx);
                if self.cache.is_dirty(key) {
                    return Ok((0, 0));
                }
                let inode = self.inode(ino)?;
                let current = match kind {
                    BlockKind::IndSingle { .. } => inode.single,
                    BlockKind::IndDoubleTop { .. } => inode.double,
                    BlockKind::IndDoubleChild { outer, .. } => {
                        if inode.double.is_nil() {
                            BlockAddr::NIL
                        } else {
                            self.indirect_child_addr(ino, inode.double, outer)?
                        }
                    }
                    _ => unreachable!(),
                };
                if current != addr {
                    return Ok((0, 0));
                }
                let now = self.now();
                if self.cache.contains(key) {
                    self.cache.get_mut(key, now);
                } else {
                    if summary::block_checksum(data) != crc {
                        self.note_unrecoverable("indirect block", addr);
                        return Ok((0, 0));
                    }
                    self.cache
                        .insert_dirty(key, data.to_vec().into_boxed_slice(), now);
                }
                Ok((1, 0))
            }
            BlockKind::InodeBlock => {
                if summary::block_checksum(data) != crc {
                    // Recover the inodes memory still holds; anything
                    // only the rotten block knew is lost.
                    let (recovered, lost) = self.salvage_inode_block(addr)?;
                    for _ in 0..lost {
                        self.note_unrecoverable("inode block", addr);
                    }
                    return Ok((0, recovered));
                }
                let mut live = 0u64;
                for (slot, inode) in inode_block::unpack_all(data)? {
                    let Ok(entry) = self.imap.get(inode.ino) else {
                        continue;
                    };
                    if !entry.allocated
                        || entry.addr != addr
                        || entry.slot as usize != slot
                        || entry.version != inode.version
                    {
                        continue;
                    }
                    live += 1;
                    match self.inodes.get_mut(&inode.ino) {
                        Some(cached) => cached.dirty = true,
                        None => {
                            self.inodes
                                .insert(inode.ino, CachedInode { inode, dirty: true });
                        }
                    }
                }
                Ok((0, live))
            }
            BlockKind::ImapBlock { index } => {
                let index = index as usize;
                if index < self.imap.nblocks() && self.imap.block_addr(index) == addr {
                    // Re-dirty so the next checkpoint rewrites it.
                    self.imap.mark_block_dirty(index);
                }
                Ok((0, 0))
            }
            // Usage blocks are rewritten wholesale at every checkpoint;
            // stale copies are simply dead.
            BlockKind::UsageBlock { .. } => Ok((0, 0)),
        }
    }

    /// Salvages a corrupt on-disk inode block: every live inode it held
    /// that is still in the in-memory table is re-dirtied (the next flush
    /// rewrites it at a new address). Returns `(recovered, lost)` inode
    /// counts; the caller decides how to account the losses.
    pub(crate) fn salvage_inode_block(&mut self, addr: BlockAddr) -> FsResult<(u64, u64)> {
        let residents: Vec<vfs::Ino> = self.imap.allocated_inos().collect();
        let mut recovered = 0u64;
        let mut lost = 0u64;
        for ino in residents {
            if self.imap.get(ino)?.addr != addr {
                continue;
            }
            match self.inodes.get_mut(&ino) {
                Some(cached) => {
                    cached.dirty = true;
                    recovered += 1;
                }
                None => lost += 1,
            }
        }
        Ok((recovered, lost))
    }
}
