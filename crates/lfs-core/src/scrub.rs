//! The segment scrubber: proactive end-to-end integrity checking.
//!
//! [`Lfs::scrub`] walks every segment that may hold live data (dirty or
//! active), re-reads each chunk, and checks every payload block against
//! the per-block CRC-32C stamped in its summary entry at log-write time.
//! A block the media can no longer produce correctly (latent sector
//! error, bit rot) is handled the LFS way: since the log never updates
//! in place, *recovery is relocation* — a surviving in-memory copy is
//! re-dirtied so the next flush rewrites it at the log head, and the bad
//! address simply becomes dead space for the cleaner. Only when no good
//! copy exists anywhere does the file system give up, counting the block
//! in `scrub.unrecoverable` and degrading the mount to read-only.
//!
//! The same walk doubles as the population pass for the in-memory
//! expected-checksum table: every block that verifies has its checksum
//! recorded, so subsequent reads through the normal paths are verified
//! too (blocks written before this mount are otherwise unknown).
//!
//! `lfs-tools verify` runs exactly this pass against an offline image.

use block_cache::BlockKey;
use sim_disk::BlockDevice;
use vfs::{FsError, FsResult, Ino};

use crate::fs::{idx_dchild, Lfs, IDX_DTOP, IDX_SINGLE};
use crate::layout::summary::{self, BlockKind, ChunkSummary};
use crate::layout::usage_block::SegState;
use crate::types::{BlockAddr, SegNo};

/// How many times the scrubber re-reads a block that failed, to ride out
/// transient media errors before declaring the sector bad.
const SCRUB_READ_RETRIES: usize = 3;

/// Outcome of one scrub pass.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ScrubReport {
    /// Segments walked (every dirty or active segment).
    pub segments: u64,
    /// Payload blocks checked against their summary checksum.
    pub blocks_verified: u64,
    /// Live blocks that were unreadable or failed their checksum.
    pub bad_blocks: u64,
    /// Bad live blocks recovered by rewriting a good copy to the log.
    pub relocated: u64,
    /// Bad live blocks with no surviving copy (data loss).
    pub unrecoverable: u64,
    /// Chunk summary areas that could not be read back at all.
    pub unreadable_chunks: u64,
}

impl ScrubReport {
    /// True when the scrub found nothing wrong.
    pub fn is_clean(&self) -> bool {
        self.bad_blocks == 0 && self.unreadable_chunks == 0
    }
}

impl<D: BlockDevice> Lfs<D> {
    /// Scrubs every live segment, relocating damaged-but-recoverable
    /// blocks and recording verified checksums for the read path.
    ///
    /// If anything was relocated (and the file system is still
    /// writable), the pass ends with a checkpoint so the relocations are
    /// durable and the bad addresses are dead on disk, not just in
    /// memory.
    pub fn scrub(&mut self) -> FsResult<ScrubReport> {
        let was = std::mem::replace(&mut self.in_maintenance, true);
        let result = self.scrub_inner();
        self.in_maintenance = was;
        let report = result?;
        if report.relocated > 0 && !self.read_only {
            self.checkpoint()?;
        }
        Ok(report)
    }

    fn scrub_inner(&mut self) -> FsResult<ScrubReport> {
        let mut report = ScrubReport::default();
        let victims: Vec<SegNo> = (0..self.sb.nsegments)
            .map(SegNo)
            .filter(|&seg| {
                matches!(self.usage.state(seg), SegState::Dirty | SegState::Active)
            })
            .collect();
        // Gather phase: with a recovery fan-out configured, the
        // whole-segment images are read up front through the async
        // facade, overlapping across spindles. The verify/repair phase
        // below then runs serially over the prefetched bytes in the
        // same ascending segment order; an image the gather could not
        // read falls back to the identical per-block retry path, so
        // every outcome (report, salvage, read-only degradation)
        // matches the sequential walk's.
        let fanout = crate::recovery::effective_fanout(self);
        let mut images: Vec<Option<sim_disk::DiskResult<Vec<u8>>>> = Vec::new();
        if fanout > 1 {
            let bs = self.block_size();
            let seg_blocks = self.sb.seg_blocks as usize;
            self.dev.set_maintenance(true);
            let reqs: Vec<(u64, usize)> = victims
                .iter()
                .map(|&seg| (self.sector_of(self.sb.seg_block(seg, 0)), seg_blocks * bs))
                .collect();
            let (results, _) =
                crate::recovery::read_batch(&mut self.dev, "scrub-read", fanout, &reqs);
            self.dev.set_maintenance(false);
            images = results.into_iter().map(Some).collect();
        }
        for (i, seg) in victims.iter().enumerate() {
            let prefetched = images.get_mut(i).and_then(Option::take);
            self.scrub_segment(*seg, prefetched, &mut report)?;
        }
        self.obs.scrub_segments.add(report.segments);
        self.obs.scrub_blocks_verified.add(report.blocks_verified);
        self.obs.scrub_bad_blocks.add(report.bad_blocks);
        self.obs.scrub_relocated.add(report.relocated);
        self.obs.scrub_unrecoverable.add(report.unrecoverable);
        self.obs.registry.event(
            self.now(),
            "scrub",
            format!(
                "segments={} verified={} bad={} relocated={} unrecoverable={} unreadable_chunks={}",
                report.segments,
                report.blocks_verified,
                report.bad_blocks,
                report.relocated,
                report.unrecoverable,
                report.unreadable_chunks
            ),
        );
        if report.unrecoverable > 0 || report.unreadable_chunks > 0 {
            self.set_read_only("scrub found unrecoverable damage");
        }
        Ok(report)
    }

    /// Scrubs one segment's chunk chain. `prefetched` carries the
    /// gather phase's whole-segment read when the fanned-out scrub is
    /// active; `None` reads synchronously in place.
    fn scrub_segment(
        &mut self,
        seg: SegNo,
        prefetched: Option<sim_disk::DiskResult<Vec<u8>>>,
        report: &mut ScrubReport,
    ) -> FsResult<()> {
        report.segments += 1;
        let bs = self.block_size();
        let seg_blocks = self.sb.seg_blocks as usize;
        let base = self.sb.seg_block(seg, 0);

        // Read the whole segment in one sequential transfer when the
        // media cooperates; fall back to per-block reads (with retries)
        // so one latent sector does not hide the rest of the segment.
        let whole = match prefetched {
            Some(result) => result,
            None => {
                let mut image = vec![0u8; seg_blocks * bs];
                self.dev.annotate("scrub-read");
                self.dev
                    .read(self.sector_of(base), &mut image)
                    .map(|_| image)
            }
        };
        let blocks: Vec<Option<Vec<u8>>> = match whole {
            Ok(image) => image.chunks(bs).map(|c| Some(c.to_vec())).collect(),
            Err(_) => (0..seg_blocks)
                .map(|b| self.read_block_retry(BlockAddr(base.0 + b as u32)))
                .collect(),
        };

        let mut offset = 0usize;
        let mut expected_seq: Option<u64> = None;
        let mut expected_partial = 0u32;
        while offset + 1 < seg_blocks {
            // Reassemble the summary area from consecutive readable
            // blocks; the decoder takes only what it needs.
            let mut buf: Vec<u8> = Vec::new();
            let mut cursor = offset;
            while cursor < seg_blocks {
                let Some(data) = blocks[cursor].as_ref() else { break };
                buf.extend_from_slice(data);
                cursor += 1;
            }
            let truncated = cursor < seg_blocks && blocks[cursor].is_none();
            let here = BlockAddr(base.0 + offset as u32);
            let Ok(chunk) = ChunkSummary::decode_at(&buf, here) else {
                if truncated {
                    // The summary area itself is unreadable: the rest of
                    // this segment's chain cannot even be enumerated.
                    report.unreadable_chunks += 1;
                }
                break;
            };
            match expected_seq {
                None => {
                    if chunk.partial != 0 {
                        break;
                    }
                    expected_seq = Some(chunk.seq);
                }
                Some(seq) => {
                    if chunk.seq != seq || chunk.partial != expected_partial {
                        break;
                    }
                }
            }
            let s = (chunk.reserved_blocks as usize)
                .max(ChunkSummary::summary_blocks(chunk.entries.len(), bs));
            let payload_start = offset + s;
            if payload_start + chunk.entries.len() > seg_blocks {
                break;
            }
            for (i, entry) in chunk.entries.iter().enumerate() {
                let block_off = payload_start + i;
                let addr = BlockAddr(base.0 + block_off as u32);
                report.blocks_verified += 1;
                let good = matches!(
                    blocks[block_off].as_deref(),
                    Some(data) if summary::block_checksum(data) == entry.crc
                );
                if good {
                    // Known-good: make future reads of it verified.
                    self.record_block_crc(addr, entry.crc);
                    continue;
                }
                if !self.scrub_is_live(entry.kind, entry.version, addr)? {
                    continue; // Dead blocks may rot in peace.
                }
                report.bad_blocks += 1;
                self.obs.registry.event(
                    self.now(),
                    "scrub",
                    format!("bad live block addr={} seg={}", addr.0, seg.0),
                );
                self.scrub_recover(entry.kind, addr, report)?;
            }
            offset = payload_start + chunk.entries.len();
            expected_partial += 1;
        }
        Ok(())
    }

    /// One block read with bounded retries (transient media errors).
    fn read_block_retry(&mut self, addr: BlockAddr) -> Option<Vec<u8>> {
        for _ in 0..SCRUB_READ_RETRIES {
            if let Ok(data) = self.read_block_raw(addr) {
                return Some(data);
            }
        }
        None
    }

    /// Is the logged block at `addr` still referenced? Mirrors the
    /// cleaner's liveness logic, but never touches the block's payload —
    /// the payload is exactly what cannot be trusted here. Mapping
    /// failures (the path to the block is itself damaged) count as not
    /// live for this pass; the damaged parent surfaces separately.
    fn scrub_is_live(&mut self, kind: BlockKind, version: u32, addr: BlockAddr) -> FsResult<bool> {
        match kind {
            BlockKind::Data { ino, bno } => {
                let Ok(entry) = self.imap.get(ino) else {
                    return Ok(false);
                };
                if !entry.allocated || entry.version != version {
                    return Ok(false);
                }
                if self.cache.is_dirty(BlockKey::file(ino, bno as u64)) {
                    return Ok(false); // A newer copy is pending.
                }
                match self.map_block(ino, bno as u64) {
                    Ok(current) => Ok(current == addr),
                    Err(FsError::Io(_)) | Err(FsError::Corruption { .. }) => Ok(false),
                    Err(e) => Err(e),
                }
            }
            BlockKind::IndSingle { ino }
            | BlockKind::IndDoubleTop { ino }
            | BlockKind::IndDoubleChild { ino, .. } => {
                let Ok(entry) = self.imap.get(ino) else {
                    return Ok(false);
                };
                if !entry.allocated || entry.version != version {
                    return Ok(false);
                }
                let idx = match kind {
                    BlockKind::IndSingle { .. } => IDX_SINGLE,
                    BlockKind::IndDoubleTop { .. } => IDX_DTOP,
                    BlockKind::IndDoubleChild { outer, .. } => idx_dchild(outer),
                    _ => unreachable!(),
                };
                if self.cache.is_dirty(BlockKey::file(ino, idx)) {
                    return Ok(false);
                }
                let inode = match self.inode(ino) {
                    Ok(inode) => inode,
                    Err(FsError::Io(_)) | Err(FsError::Corruption { .. }) => return Ok(false),
                    Err(e) => return Err(e),
                };
                let current = match kind {
                    BlockKind::IndSingle { .. } => inode.single,
                    BlockKind::IndDoubleTop { .. } => inode.double,
                    BlockKind::IndDoubleChild { outer, .. } => {
                        if inode.double.is_nil() {
                            BlockAddr::NIL
                        } else {
                            match self.indirect_child_addr(ino, inode.double, outer) {
                                Ok(current) => current,
                                Err(FsError::Io(_)) | Err(FsError::Corruption { .. }) => {
                                    return Ok(false)
                                }
                                Err(e) => return Err(e),
                            }
                        }
                    }
                    _ => unreachable!(),
                };
                Ok(current == addr)
            }
            BlockKind::InodeBlock => {
                let residents: Vec<Ino> = self.imap.allocated_inos().collect();
                for ino in residents {
                    if self.imap.get(ino)?.addr == addr {
                        return Ok(true);
                    }
                }
                Ok(false)
            }
            BlockKind::ImapBlock { index } => {
                let index = index as usize;
                Ok(index < self.imap.nblocks() && self.imap.block_addr(index) == addr)
            }
            // Usage blocks are rewritten wholesale at every checkpoint.
            BlockKind::UsageBlock { .. } => Ok(false),
        }
    }

    /// Attempts to recover a bad live block from a surviving copy.
    fn scrub_recover(
        &mut self,
        kind: BlockKind,
        addr: BlockAddr,
        report: &mut ScrubReport,
    ) -> FsResult<()> {
        let now = self.now();
        match kind {
            BlockKind::Data { ino, bno } => {
                let key = BlockKey::file(ino, bno as u64);
                if self.cache.contains(key) {
                    // Re-dirty the cached copy: the next flush rewrites
                    // it at the log head and retires this address.
                    self.cache.get_mut(key, now);
                    report.relocated += 1;
                } else {
                    report.unrecoverable += 1;
                }
            }
            BlockKind::IndSingle { ino }
            | BlockKind::IndDoubleTop { ino }
            | BlockKind::IndDoubleChild { ino, .. } => {
                let idx = match kind {
                    BlockKind::IndSingle { .. } => IDX_SINGLE,
                    BlockKind::IndDoubleTop { .. } => IDX_DTOP,
                    BlockKind::IndDoubleChild { outer, .. } => idx_dchild(outer),
                    _ => unreachable!(),
                };
                let key = BlockKey::file(ino, idx);
                if self.cache.contains(key) {
                    self.cache.get_mut(key, now);
                    report.relocated += 1;
                } else {
                    report.unrecoverable += 1;
                }
            }
            BlockKind::InodeBlock => {
                let (recovered, lost) = self.salvage_inode_block(addr)?;
                if recovered > 0 {
                    report.relocated += 1;
                }
                report.unrecoverable += lost;
            }
            BlockKind::ImapBlock { index } => {
                // The inode map is always fully in memory: re-dirty the
                // block so the next checkpoint rewrites it.
                self.imap.mark_block_dirty(index as usize);
                report.relocated += 1;
            }
            BlockKind::UsageBlock { .. } => {}
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use std::sync::Arc;

    use sim_disk::{Clock, DiskError, DiskGeometry, MediaFaultPlan, SimDisk};
    use vfs::{FileSystem, FsError};

    use crate::config::LfsConfig;
    use crate::fs::Lfs;

    fn rig() -> Lfs<SimDisk> {
        let clock = Clock::new();
        let disk = SimDisk::new(DiskGeometry::tiny_test(131_072), Arc::clone(&clock));
        Lfs::format(disk, LfsConfig::small_test(), clock).unwrap()
    }

    #[test]
    fn clean_reads_verify_against_recorded_checksums() {
        let mut fs = rig();
        let bs = fs.block_size();
        fs.write_file("/f", &vec![0x42u8; bs]).unwrap();
        fs.sync().unwrap();
        fs.drop_caches().unwrap();
        assert_eq!(fs.read_file("/f").unwrap(), vec![0x42u8; bs]);
        let stats = fs.stats();
        assert!(stats.verified_reads >= 1, "reads must be checksum-verified");
        assert_eq!(stats.corruptions_detected, 0);
    }

    #[test]
    fn bit_rot_on_live_data_is_detected_via_checksum() {
        let mut fs = rig();
        let bs = fs.block_size();
        fs.write_file("/f", &vec![0xABu8; bs]).unwrap();
        fs.sync().unwrap();
        let ino = fs.lookup("/f").unwrap();
        let addr = fs.map_block(ino, 0).unwrap();
        assert!(addr.is_some());
        let sector = fs.sector_of(addr);
        fs.device_mut()
            .inject_media_faults(MediaFaultPlan::new(7).rot(sector));
        fs.drop_caches().unwrap();
        let mut buf = vec![0u8; bs];
        let err = fs.read_at(ino, 0, &mut buf).unwrap_err();
        assert!(
            matches!(err, FsError::Corruption { .. }),
            "rot must surface as a typed corruption error, got {err:?}"
        );
        assert_eq!(fs.stats().corruptions_detected, 1);
    }

    #[test]
    fn latent_sector_error_surfaces_as_typed_io_error() {
        let mut fs = rig();
        let bs = fs.block_size();
        fs.write_file("/f", &vec![0x11u8; bs]).unwrap();
        fs.sync().unwrap();
        let ino = fs.lookup("/f").unwrap();
        let sector = {
            let addr = fs.map_block(ino, 0).unwrap();
            fs.sector_of(addr)
        };
        fs.device_mut()
            .inject_media_faults(MediaFaultPlan::new(5).latent(sector));
        fs.drop_caches().unwrap();
        let mut buf = vec![0u8; bs];
        let err = fs.read_at(ino, 0, &mut buf).unwrap_err();
        assert!(
            matches!(err, FsError::Io(DiskError::Unreadable { .. })),
            "got {err:?}"
        );
    }

    #[test]
    fn scrub_relocates_rotted_block_from_cached_copy() {
        let mut fs = rig();
        let bs = fs.block_size();
        fs.write_file("/f", &vec![0x5Au8; bs]).unwrap();
        fs.sync().unwrap();
        let ino = fs.lookup("/f").unwrap();
        let old = fs.map_block(ino, 0).unwrap();
        let sector = fs.sector_of(old);
        fs.device_mut()
            .inject_media_faults(MediaFaultPlan::new(9).rot(sector));
        let report = fs.scrub().unwrap();
        assert_eq!(report.bad_blocks, 1);
        assert_eq!(report.relocated, 1);
        assert_eq!(report.unrecoverable, 0);
        assert!(!fs.is_read_only());
        let new = fs.map_block(ino, 0).unwrap();
        assert_ne!(new, old, "the block must move to the log head");
        assert_eq!(fs.read_file("/f").unwrap(), vec![0x5Au8; bs]);
        assert_eq!(fs.stats().scrub_relocated, 1);
    }

    #[test]
    fn scrub_degrades_to_read_only_when_no_copy_survives() {
        let mut fs = rig();
        let bs = fs.block_size();
        fs.write_file("/f", &vec![0xEEu8; bs]).unwrap();
        fs.sync().unwrap();
        let ino = fs.lookup("/f").unwrap();
        let sector = {
            let addr = fs.map_block(ino, 0).unwrap();
            fs.sector_of(addr)
        };
        fs.drop_caches().unwrap();
        fs.device_mut()
            .inject_media_faults(MediaFaultPlan::new(11).rot(sector));
        let report = fs.scrub().unwrap();
        assert_eq!(report.bad_blocks, 1);
        assert_eq!(report.relocated, 0);
        assert_eq!(report.unrecoverable, 1);
        assert!(fs.is_read_only());
        assert_eq!(fs.stats().scrub_unrecoverable, 1);
        let err = fs.write_file("/g", b"nope").unwrap_err();
        assert!(matches!(err, FsError::ReadOnly), "got {err:?}");
    }

    #[test]
    fn scrub_of_a_healthy_volume_is_clean_and_idempotent() {
        let mut fs = rig();
        for i in 0..8 {
            fs.write_file(&format!("/f{i}"), &vec![i as u8; 5000]).unwrap();
        }
        fs.sync().unwrap();
        let report = fs.scrub().unwrap();
        assert!(report.is_clean(), "unexpected damage: {report:?}");
        assert!(report.blocks_verified > 0);
        assert_eq!(report.relocated, 0);
        let again = fs.scrub().unwrap();
        assert!(again.is_clean());
        assert!(!fs.is_read_only());
    }

    #[test]
    fn mount_degrades_to_read_only_when_imap_unreadable() {
        let clock = Clock::new();
        let disk = SimDisk::new(DiskGeometry::tiny_test(131_072), Arc::clone(&clock));
        let mut fs = Lfs::format(disk, LfsConfig::small_test(), Arc::clone(&clock)).unwrap();
        fs.write_file("/f", b"survives in the log").unwrap();
        fs.sync().unwrap();
        let imap_addr = fs.imap.block_addr(0);
        assert!(imap_addr.is_some());
        let sector = fs.sector_of(imap_addr);
        let mut dev = fs.into_device();
        dev.inject_media_faults(MediaFaultPlan::new(3).latent(sector));
        let mut fs = Lfs::mount(dev, LfsConfig::small_test(), clock).unwrap();
        assert!(fs.is_read_only(), "mount must degrade, not refuse");
        assert!(fs.stats().scrub_unrecoverable >= 1);
        let err = fs.write_file("/g", b"nope").unwrap_err();
        assert!(matches!(err, FsError::ReadOnly), "got {err:?}");
    }
}
