//! The in-memory segment usage table (§4.3.4).
//!
//! Tracks, for every segment, an estimate of its live bytes, its state in
//! the segment life cycle, and the time of its last write. The cleaner
//! uses this to choose cheap victims; the allocator uses it to find clean
//! segments. "Since the usage level of nonclean segments is used only as a
//! hint during cleaning, costly exact crash recovery of this data
//! structure is not needed" — after roll-forward we recompute it exactly
//! instead.

use vfs::FsResult;

use crate::layout::usage_block::{self, SegState, UsageEntry};
use crate::types::{BlockAddr, SegNo};

/// The segment usage table.
#[derive(Debug, Clone)]
pub struct UsageTable {
    entries: Vec<UsageEntry>,
    seg_bytes: u64,
    entries_per_block: usize,
    /// Current log address of each usage block.
    block_addrs: Vec<BlockAddr>,
}

impl UsageTable {
    /// Creates a table of `nsegments` clean segments.
    pub fn new(nsegments: u32, seg_bytes: u64, entries_per_block: usize) -> Self {
        let nblocks = (nsegments as usize).div_ceil(entries_per_block).max(1);
        Self {
            entries: vec![UsageEntry::CLEAN; nsegments as usize],
            seg_bytes,
            entries_per_block,
            block_addrs: vec![BlockAddr::NIL; nblocks],
        }
    }

    /// Number of segments.
    pub fn nsegments(&self) -> u32 {
        self.entries.len() as u32
    }

    /// Segment capacity in bytes.
    pub fn seg_bytes(&self) -> u64 {
        self.seg_bytes
    }

    /// Number of usage blocks.
    pub fn nblocks(&self) -> usize {
        self.block_addrs.len()
    }

    /// Reads one entry.
    pub fn get(&self, seg: SegNo) -> UsageEntry {
        self.entries[seg.0 as usize]
    }

    /// Segment state.
    pub fn state(&self, seg: SegNo) -> SegState {
        self.entries[seg.0 as usize].state
    }

    /// Sets a segment's state.
    pub fn set_state(&mut self, seg: SegNo, state: SegState) {
        self.entries[seg.0 as usize].state = state;
        if state == SegState::Clean {
            self.entries[seg.0 as usize].live_bytes = 0;
        }
    }

    /// Records a write into `seg` of `bytes` live payload at time `now`.
    pub fn add_live(&mut self, seg: SegNo, bytes: u64, now_ns: u64) {
        let entry = &mut self.entries[seg.0 as usize];
        entry.live_bytes = (entry.live_bytes as u64 + bytes).min(self.seg_bytes) as u32;
        entry.last_write_ns = now_ns;
    }

    /// Records that `bytes` in `seg` died (overwritten or deleted).
    pub fn sub_live(&mut self, seg: SegNo, bytes: u64) {
        let entry = &mut self.entries[seg.0 as usize];
        entry.live_bytes = entry.live_bytes.saturating_sub(bytes as u32);
    }

    /// Overwrites a segment's live-byte count (recovery recomputation).
    pub fn set_live(&mut self, seg: SegNo, bytes: u64, now_ns: u64) {
        let entry = &mut self.entries[seg.0 as usize];
        entry.live_bytes = bytes.min(self.seg_bytes) as u32;
        entry.last_write_ns = now_ns;
    }

    /// Live fraction of a segment, in `[0, 1]`.
    pub fn utilization(&self, seg: SegNo) -> f64 {
        self.entries[seg.0 as usize].live_bytes as f64 / self.seg_bytes as f64
    }

    /// Number of segments in [`SegState::Clean`].
    pub fn clean_count(&self) -> usize {
        self.entries
            .iter()
            .filter(|e| e.state == SegState::Clean)
            .count()
    }

    /// Finds the next clean segment at or after `start`, wrapping around.
    pub fn next_clean(&self, start: SegNo) -> Option<SegNo> {
        let n = self.entries.len() as u32;
        (0..n)
            .map(|i| SegNo((start.0 + i) % n))
            .find(|&seg| self.state(seg) == SegState::Clean)
    }

    /// All segments in the given state.
    pub fn segments_in_state(&self, state: SegState) -> Vec<SegNo> {
        self.entries
            .iter()
            .enumerate()
            .filter(|(_, e)| e.state == state)
            .map(|(i, _)| SegNo(i as u32))
            .collect()
    }

    /// Promotes every [`SegState::CleanPending`] segment to clean.
    /// Called when a checkpoint commits. Returns how many were promoted.
    pub fn commit_pending(&mut self) -> usize {
        let mut promoted = 0;
        for entry in &mut self.entries {
            if entry.state == SegState::CleanPending {
                entry.state = SegState::Clean;
                entry.live_bytes = 0;
                promoted += 1;
            }
        }
        promoted
    }

    /// Total live bytes across all segments.
    pub fn total_live_bytes(&self) -> u64 {
        self.entries.iter().map(|e| e.live_bytes as u64).sum()
    }

    /// Serialises usage block `index`.
    pub fn encode_block(&self, index: usize, block_size: usize) -> Vec<u8> {
        let start = index * self.entries_per_block;
        let end = (start + self.entries_per_block).min(self.entries.len());
        usage_block::encode_block(&self.entries[start..end], block_size)
    }

    /// Records the new log address of usage block `index`, returning the
    /// previous address.
    pub fn commit_block(&mut self, index: usize, addr: BlockAddr) -> BlockAddr {
        std::mem::replace(&mut self.block_addrs[index], addr)
    }

    /// Current log address of usage block `index`.
    pub fn block_addr(&self, index: usize) -> BlockAddr {
        self.block_addrs[index]
    }

    /// All usage block addresses, for the checkpoint region.
    pub fn block_addrs(&self) -> &[BlockAddr] {
        &self.block_addrs
    }

    /// Loads one usage block at mount.
    pub fn load_block(&mut self, index: usize, addr: BlockAddr, block: &[u8]) -> FsResult<()> {
        let start = index * self.entries_per_block;
        let count = self.entries_per_block.min(self.entries.len() - start);
        let decoded = usage_block::decode_block(block, count)?;
        self.entries[start..start + count].copy_from_slice(&decoded);
        self.block_addrs[index] = addr;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> UsageTable {
        UsageTable::new(8, 16 * 1024, 32)
    }

    #[test]
    fn starts_all_clean() {
        let t = table();
        assert_eq!(t.clean_count(), 8);
        assert_eq!(t.total_live_bytes(), 0);
        assert_eq!(t.state(SegNo(3)), SegState::Clean);
    }

    #[test]
    fn live_accounting_adds_and_subtracts() {
        let mut t = table();
        t.set_state(SegNo(0), SegState::Dirty);
        t.add_live(SegNo(0), 4096, 100);
        assert_eq!(t.get(SegNo(0)).live_bytes, 4096);
        assert_eq!(t.get(SegNo(0)).last_write_ns, 100);
        t.sub_live(SegNo(0), 1024);
        assert_eq!(t.get(SegNo(0)).live_bytes, 3072);
        // Saturates rather than underflowing.
        t.sub_live(SegNo(0), 1 << 30);
        assert_eq!(t.get(SegNo(0)).live_bytes, 0);
        assert!((t.utilization(SegNo(0)) - 0.0).abs() < 1e-12);
    }

    #[test]
    fn add_live_clamps_to_segment_size() {
        let mut t = table();
        t.add_live(SegNo(1), 1 << 40, 5);
        assert_eq!(t.get(SegNo(1)).live_bytes as u64, t.seg_bytes());
        assert!((t.utilization(SegNo(1)) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn next_clean_wraps_and_skips() {
        let mut t = table();
        for i in 0..8 {
            t.set_state(SegNo(i), SegState::Dirty);
        }
        assert_eq!(t.next_clean(SegNo(0)), None);
        t.set_state(SegNo(2), SegState::Clean);
        assert_eq!(t.next_clean(SegNo(5)), Some(SegNo(2)));
        assert_eq!(t.next_clean(SegNo(2)), Some(SegNo(2)));
    }

    #[test]
    fn commit_pending_promotes() {
        let mut t = table();
        t.set_state(SegNo(0), SegState::CleanPending);
        t.add_live(SegNo(0), 100, 1);
        t.set_state(SegNo(1), SegState::Dirty);
        assert_eq!(t.commit_pending(), 1);
        assert_eq!(t.state(SegNo(0)), SegState::Clean);
        assert_eq!(t.get(SegNo(0)).live_bytes, 0);
        assert_eq!(t.state(SegNo(1)), SegState::Dirty);
    }

    #[test]
    fn clean_state_resets_live_bytes() {
        let mut t = table();
        t.set_state(SegNo(4), SegState::Dirty);
        t.add_live(SegNo(4), 512, 9);
        t.set_state(SegNo(4), SegState::Clean);
        assert_eq!(t.get(SegNo(4)).live_bytes, 0);
    }

    #[test]
    fn encode_load_round_trips() {
        let mut t = table();
        t.set_state(SegNo(0), SegState::Active);
        t.add_live(SegNo(0), 2048, 55);
        t.set_state(SegNo(7), SegState::Dirty);
        t.add_live(SegNo(7), 512, 66);
        let block = t.encode_block(0, 512);

        let mut fresh = table();
        fresh.load_block(0, BlockAddr(33), &block).unwrap();
        assert_eq!(fresh.get(SegNo(0)), t.get(SegNo(0)));
        assert_eq!(fresh.get(SegNo(7)), t.get(SegNo(7)));
        assert_eq!(fresh.block_addr(0), BlockAddr(33));
    }

    #[test]
    fn segments_in_state_filters() {
        let mut t = table();
        t.set_state(SegNo(1), SegState::Dirty);
        t.set_state(SegNo(5), SegState::Dirty);
        assert_eq!(
            t.segments_in_state(SegState::Dirty),
            vec![SegNo(1), SegNo(5)]
        );
    }
}
