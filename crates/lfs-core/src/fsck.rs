//! File-system consistency checker.
//!
//! Verifies the invariants the rest of the crate maintains:
//!
//! * every directory entry points at an allocated inode of matching kind;
//! * every allocated inode (except the root) is reachable and its link
//!   count equals the number of entries referring to it;
//! * every live block address lies inside the log region and is claimed
//!   by exactly one owner;
//! * clean segments contain no live data, and each segment's usage-table
//!   estimate matches an exact recount.
//!
//! Used by integration and property tests after every scenario, and by
//! the `lfs-tools` `fsck` command.

use std::collections::{HashMap, HashSet, VecDeque};

use sim_disk::BlockDevice;
use vfs::{blockmap, FileKind, FsResult, Ino};

use crate::fs::Lfs;
use crate::layout::usage_block::SegState;
use crate::types::{BlockAddr, SegNo, INODE_SIZE};

/// The result of a consistency check.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct FsckReport {
    /// Invariant violations.
    pub errors: Vec<String>,
    /// Suspicious but tolerated conditions.
    pub warnings: Vec<String>,
}

impl FsckReport {
    /// Returns true if no errors were found.
    pub fn is_clean(&self) -> bool {
        self.errors.is_empty()
    }
}

impl std::fmt::Display for FsckReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.is_clean() && self.warnings.is_empty() {
            return write!(f, "clean");
        }
        for e in &self.errors {
            writeln!(f, "error: {e}")?;
        }
        for w in &self.warnings {
            writeln!(f, "warning: {w}")?;
        }
        Ok(())
    }
}

impl<D: BlockDevice> Lfs<D> {
    /// Runs a full consistency check.
    ///
    /// Read-only in effect (it reads through the cache but modifies no
    /// file-system state).
    ///
    /// # Examples
    ///
    /// ```
    /// use std::sync::Arc;
    /// use lfs_core::{Lfs, LfsConfig};
    /// use sim_disk::{Clock, DiskGeometry, SimDisk};
    /// use vfs::FileSystem;
    ///
    /// let clock = Clock::new();
    /// let disk = SimDisk::new(DiskGeometry::tiny_test(16_384), Arc::clone(&clock));
    /// let mut fs = Lfs::format(disk, LfsConfig::small_test(), clock)?;
    /// fs.write_file("/x", b"checked")?;
    /// let report = fs.fsck()?;
    /// assert!(report.is_clean(), "{report}");
    /// # Ok::<(), vfs::FsError>(())
    /// ```
    pub fn fsck(&mut self) -> FsResult<FsckReport> {
        // Gather phase: with a recovery fan-out configured, prefetch
        // the metadata the verify phases below will read — fanned out
        // across spindles through the async read facade. The verify
        // phases are untouched: a block the gather could not fetch (or
        // that failed its checksum) is simply re-read serially, so the
        // report is identical to a sequential check's.
        let fanout = crate::recovery::effective_fanout(self);
        if fanout > 1 {
            self.gather_metadata(fanout);
        }
        let mut report = FsckReport::default();
        let bs = self.block_size() as u64;

        // Phase 1: walk the directory tree.
        let mut ref_counts: HashMap<Ino, u32> = HashMap::new();
        let mut visited: HashSet<Ino> = HashSet::new();
        let mut queue: VecDeque<(Ino, String)> = VecDeque::new();
        visited.insert(Ino::ROOT);
        queue.push_back((Ino::ROOT, "/".to_string()));
        while let Some((dir, path)) = queue.pop_front() {
            let entries = match self.dir_entries(dir) {
                Ok(entries) => entries,
                Err(e) => {
                    report
                        .errors
                        .push(format!("unreadable directory {path}: {e}"));
                    continue;
                }
            };
            for entry in entries {
                let child_path = format!("{}{}", path, entry.name);
                if !self.imap.is_allocated(entry.ino) {
                    report.errors.push(format!(
                        "dangling entry {child_path} -> unallocated {}",
                        entry.ino
                    ));
                    continue;
                }
                let inode = match self.inode(entry.ino) {
                    Ok(inode) => inode,
                    Err(e) => {
                        report
                            .errors
                            .push(format!("unreadable inode for {child_path}: {e}"));
                        continue;
                    }
                };
                if inode.kind != entry.kind {
                    report.errors.push(format!(
                        "kind mismatch at {child_path}: entry says {}, inode says {}",
                        entry.kind, inode.kind
                    ));
                }
                *ref_counts.entry(entry.ino).or_insert(0) += 1;
                if inode.kind == FileKind::Directory {
                    if visited.insert(entry.ino) {
                        queue.push_back((entry.ino, format!("{child_path}/")));
                    } else {
                        report
                            .errors
                            .push(format!("directory {child_path} has multiple parents"));
                    }
                }
            }
        }

        // Phase 2: orphan and link-count checks; block ownership.
        let mut live: Vec<u64> = vec![0; self.sb.nsegments as usize];
        let mut claimed: HashMap<BlockAddr, String> = HashMap::new();
        let mut inode_slots: HashSet<(BlockAddr, u16)> = HashSet::new();

        let allocated: Vec<Ino> = self.imap.allocated_inos().collect();
        for ino in allocated {
            let refs = ref_counts.get(&ino).copied().unwrap_or(0);
            if ino != Ino::ROOT && refs == 0 {
                report.errors.push(format!("orphaned inode {ino}"));
                continue;
            }
            let entry = self.imap.get(ino)?;
            let inode = match self.inode(ino) {
                Ok(inode) => inode,
                Err(e) => {
                    report.errors.push(format!("unreadable inode {ino}: {e}"));
                    continue;
                }
            };
            if ino != Ino::ROOT && inode.nlink as u32 != refs {
                report.errors.push(format!(
                    "{ino}: nlink {} but {} references",
                    inode.nlink, refs
                ));
            }
            // The inode's own slot.
            if entry.addr.is_some() {
                self.account(&mut live, entry.addr, INODE_SIZE as u64, &mut report);
                if !inode_slots.insert((entry.addr, entry.slot)) {
                    report.errors.push(format!(
                        "{ino}: inode slot {}/{} double-claimed",
                        entry.addr, entry.slot
                    ));
                }
            } else if !self.inodes.get(&ino).map(|c| c.dirty).unwrap_or(false) {
                report
                    .errors
                    .push(format!("{ino}: allocated, never written, and not dirty"));
            }
            // Data blocks.
            let nblocks = blockmap::blocks_for_size(inode.size, bs as usize);
            for bno in 0..nblocks {
                let addr = self.map_block(ino, bno)?;
                if addr.is_some() {
                    self.claim(&mut claimed, addr, format!("{ino} data {bno}"), &mut report);
                    self.account(&mut live, addr, bs, &mut report);
                }
            }
            // Blocks mapped beyond the file size are leaks.
            let ppb = self.sb.ptrs_per_block() as u64;
            let max_mappable = (blockmap::NDIRECT as u64 + ppb + ppb * ppb).min(nblocks + 64);
            for bno in nblocks..max_mappable {
                let addr = self.map_block(ino, bno)?;
                if addr.is_some() {
                    report.errors.push(format!(
                        "{ino}: block {bno} mapped beyond size {}",
                        inode.size
                    ));
                }
            }
            // Indirect blocks.
            if inode.single.is_some() {
                self.claim(
                    &mut claimed,
                    inode.single,
                    format!("{ino} single"),
                    &mut report,
                );
                self.account(&mut live, inode.single, bs, &mut report);
            }
            if inode.double.is_some() {
                self.claim(
                    &mut claimed,
                    inode.double,
                    format!("{ino} dtop"),
                    &mut report,
                );
                self.account(&mut live, inode.double, bs, &mut report);
                for outer in 0..self.sb.ptrs_per_block() {
                    let child = self.indirect_child_addr(ino, inode.double, outer as u32)?;
                    if child.is_some() {
                        self.claim(
                            &mut claimed,
                            child,
                            format!("{ino} dchild {outer}"),
                            &mut report,
                        );
                        self.account(&mut live, child, bs, &mut report);
                    }
                }
            }
        }

        // Inode-map and usage-table blocks: checked for unique ownership
        // but not counted live (metadata placement is excluded from the
        // usage hint; see the flush's phase 4/5).
        for index in 0..self.imap.nblocks() {
            let addr = self.imap.block_addr(index);
            if addr.is_some() {
                self.claim(&mut claimed, addr, format!("imap {index}"), &mut report);
            }
        }
        for index in 0..self.usage.nblocks() {
            let addr = self.usage.block_addr(index);
            if addr.is_some() {
                self.claim(&mut claimed, addr, format!("usage {index}"), &mut report);
            }
        }

        // Phase 3: usage-table cross-check.
        for (i, &bytes) in live.iter().enumerate() {
            let seg = SegNo(i as u32);
            let entry = self.usage.get(seg);
            match entry.state {
                SegState::Clean => {
                    if bytes != 0 {
                        report
                            .errors
                            .push(format!("{seg} is clean but holds {bytes} live bytes"));
                    }
                    // Metadata blocks must never sit in a clean segment.
                    for (addr, owner) in &claimed {
                        if self.sb.seg_of(*addr).map(|(s, _)| s) == Some(seg)
                            && (owner.starts_with("imap") || owner.starts_with("usage"))
                        {
                            report
                                .errors
                                .push(format!("clean {seg} holds live metadata block: {owner}"));
                        }
                    }
                }
                SegState::CleanPending => {
                    // Relocations are in the cache but not yet committed;
                    // residual live bytes are expected.
                }
                SegState::Dirty | SegState::Active => {
                    if entry.live_bytes as u64 != bytes {
                        report.warnings.push(format!(
                            "{seg}: usage table says {} live bytes, recount says {bytes}",
                            entry.live_bytes
                        ));
                    }
                }
            }
        }
        Ok(report)
    }

    fn claim(
        &self,
        claimed: &mut HashMap<BlockAddr, String>,
        addr: BlockAddr,
        owner: String,
        report: &mut FsckReport,
    ) {
        if self.sb.seg_of(addr).is_none() {
            report
                .errors
                .push(format!("{owner}: address {addr} outside the log region"));
            return;
        }
        if let Some(previous) = claimed.insert(addr, owner.clone()) {
            report
                .errors
                .push(format!("{addr} claimed by both {previous} and {owner}"));
        }
    }

    fn account(&self, live: &mut [u64], addr: BlockAddr, bytes: u64, report: &mut FsckReport) {
        match self.sb.seg_of(addr) {
            Some((seg, _)) => live[seg.0 as usize] += bytes,
            None => report
                .errors
                .push(format!("live bytes at {addr} outside the log region")),
        }
    }
}
