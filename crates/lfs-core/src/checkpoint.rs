//! Checkpointing and mounting (§4.4.1).
//!
//! A checkpoint writes all dirty state to the log (data, indirect blocks,
//! inodes, the inode map, and the segment usage table) and then records
//! the positions of the metadata structures in one of the two fixed
//! checkpoint regions, alternating between them. "Crash recovery consists
//! of nothing more than the normal file system mount code that uses the
//! last checkpoint area to recover the file system state."

use std::sync::Arc;

use sim_disk::{BlockDevice, Clock};
use vfs::{FsError, FsResult};

use crate::config::LfsConfig;
use crate::fs::Lfs;
use crate::layout::checkpoint::CheckpointRegion;
use crate::layout::superblock::Superblock;
use crate::layout::usage_block::SegState;
use crate::log::LogPosition;
use crate::types::BlockAddr;

impl<D: BlockDevice> Lfs<D> {
    /// Takes a checkpoint: flushes everything and commits a new
    /// checkpoint region.
    pub fn checkpoint(&mut self) -> FsResult<()> {
        let was = std::mem::replace(&mut self.in_maintenance, true);
        let result = self.checkpoint_inner();
        self.in_maintenance = was;
        result
    }

    fn checkpoint_inner(&mut self) -> FsResult<()> {
        // A degraded (read-only) file system must not write to the log.
        self.check_writable()?;
        // 1. All file data, indirect blocks, inodes, and the inode map.
        self.flush(true, false)?;

        // 2. The usage table, reflecting the final segment states.
        self.flush(false, true)?;

        // 3. Everything must be on the platter before the region write.
        self.dev.flush()?;

        // 5. Commit: one synchronous write to the alternate fixed region.
        let now = self.now();
        let cp = CheckpointRegion {
            timestamp_ns: now,
            serial: self.cp_serial + 1,
            seq: self.pos.seq,
            cur_seg: self.pos.seg,
            next_block: self.pos.offset,
            partial: self.pos.partial,
            next_free_ino: self.imap.next_free_hint(),
            imap_addrs: self.imap.block_addrs().to_vec(),
            usage_addrs: self.usage.block_addrs().to_vec(),
        };
        let region_bytes = (self.sb.cp_blocks * self.sb.block_size) as usize;
        let bytes = cp.encode(region_bytes);
        let region = if self.cp_use_b {
            self.sb.cp_b
        } else {
            self.sb.cp_a
        };
        self.dev.annotate("checkpoint");
        self.dev.write(self.sector_of(region), &bytes, true)?;
        self.cp_use_b = !self.cp_use_b;
        self.cp_serial += 1;
        self.last_cp_ns = now;
        self.obs.checkpoints.inc();
        self.obs.registry.event(
            now,
            "checkpoint",
            format!(
                "serial={} region={} seg={} offset={}",
                self.cp_serial,
                if self.cp_use_b { "A" } else { "B" },
                self.pos.seg.0,
                self.pos.offset
            ),
        );

        // 5. Only now may cleaned segments be reused: the just-committed
        //    checkpoint no longer references their old contents, so a
        //    crash at any point finds either the old copies intact (old
        //    checkpoint) or the relocated ones (new checkpoint).
        self.usage.commit_pending();
        Ok(())
    }

    /// Mounts an existing volume.
    ///
    /// Reads the superblock, picks the newest valid checkpoint region,
    /// reloads the inode map and usage table from the log, and — when
    /// `cfg.roll_forward` is set — replays the log tail written after the
    /// checkpoint (§4.4.1's "ultimately LFS will..." design).
    pub fn mount(mut dev: D, cfg: LfsConfig, clock: Arc<Clock>) -> FsResult<Self> {
        // The superblock header fits in the first sector.
        let mut first = vec![0u8; sim_disk::SECTOR_SIZE];
        dev.read(0, &mut first)?;
        let sb = Superblock::decode(&first)?;
        if sb.block_size as usize != cfg.block_size || sb.seg_blocks as usize != cfg.seg_blocks() {
            return Err(FsError::Corrupt(
                "configuration does not match on-disk geometry",
            ));
        }
        let mut fs = Self::fresh(dev, sb, cfg, clock);

        // Pick the newest valid checkpoint.
        let region_bytes = (fs.sb.cp_blocks * fs.sb.block_size) as usize;
        let read_region = |fs: &mut Self, addr: BlockAddr| -> FsResult<CheckpointRegion> {
            let mut buf = vec![0u8; region_bytes];
            let sector = fs.sector_of(addr);
            fs.dev.read(sector, &mut buf)?;
            CheckpointRegion::decode(&buf)
        };
        let cp_a_addr = fs.sb.cp_a;
        let cp_b_addr = fs.sb.cp_b;
        let a = read_region(&mut fs, cp_a_addr);
        let b = read_region(&mut fs, cp_b_addr);
        let from_b = match (&a, &b) {
            (Ok(a), Ok(b)) => b.serial > a.serial,
            (Err(_), Ok(_)) => true,
            _ => false,
        };
        let cp = CheckpointRegion::newest(a, b)?;

        // Load the inode map.
        if cp.imap_addrs.len() != fs.imap.nblocks() || cp.usage_addrs.len() != fs.usage.nblocks() {
            return Err(FsError::Corrupt("checkpoint metadata counts mismatch"));
        }
        // A metadata block the media can no longer produce does not fail
        // the mount: the file system comes up degraded (read-only), with
        // whatever state the surviving blocks describe.
        let mut lost_metadata = 0u64;
        for (index, &addr) in cp.imap_addrs.iter().enumerate() {
            if addr.is_nil() {
                continue; // Block never written: all entries free.
            }
            match fs.read_block_raw(addr) {
                Ok(block) => fs.imap.load_block(index, addr, &block)?,
                Err(FsError::Io(_)) => lost_metadata += 1,
                Err(e) => return Err(e),
            }
        }
        // Load the usage table.
        for (index, &addr) in cp.usage_addrs.iter().enumerate() {
            if addr.is_nil() {
                continue;
            }
            match fs.read_block_raw(addr) {
                Ok(block) => fs.usage.load_block(index, addr, &block)?,
                Err(FsError::Io(_)) => lost_metadata += 1,
                Err(e) => return Err(e),
            }
        }

        fs.pos = LogPosition {
            seg: cp.cur_seg,
            offset: cp.next_block,
            partial: cp.partial,
            seq: cp.seq,
        };
        fs.imap.set_next_free_hint(cp.next_free_ino);
        fs.cp_serial = cp.serial;
        // Alternate away from the region we just trusted.
        fs.cp_use_b = !from_b;
        fs.usage.set_state(cp.cur_seg, SegState::Active);
        // Any CleanPending state in the loaded table was relocated by the
        // flush preceding this very checkpoint; promote it. Any *other*
        // segment still marked active is a stale mid-flush snapshot —
        // demote it to dirty so it can be cleaned.
        fs.usage.commit_pending();
        for i in 0..fs.sb.nsegments {
            let seg = crate::types::SegNo(i);
            if seg != cp.cur_seg && fs.usage.state(seg) == SegState::Active {
                fs.usage.set_state(seg, SegState::Dirty);
            }
        }
        // The segments holding the current inode-map and usage-table
        // blocks must not be writable: the table's own serialised state
        // predates their placement (it is encoded during the same flush),
        // so it may still call them clean.
        for &addr in cp.imap_addrs.iter().chain(cp.usage_addrs.iter()) {
            if let Some((seg, _)) = fs.sb.seg_of(addr) {
                if fs.usage.state(seg) == SegState::Clean {
                    fs.usage.set_state(seg, SegState::Dirty);
                }
            }
        }
        fs.last_cp_ns = fs.now();

        if lost_metadata > 0 {
            // Unrecoverable checkpoint metadata: mount read-only rather
            // than refuse service (or, worse, write against partial
            // state). Roll-forward is skipped — it ends in a checkpoint.
            fs.obs.scrub_unrecoverable.add(lost_metadata);
            fs.set_read_only("checkpoint metadata unreadable at mount");
        } else if fs.cfg.roll_forward {
            crate::recovery::roll_forward(&mut fs)?;
        }
        Ok(fs)
    }
}
