//! The in-memory inode map (§4.2.1).
//!
//! "LFS quickly locates inodes using a data structure called the inode
//! map. The data structure maintains a mapping between an inode number and
//! the current disk address of the inode. The inode map also keeps the
//! inode status (allocated or free), the file's access time, and a version
//! number that is updated every time the file is truncated to length
//! zero."
//!
//! The map is partitioned into blocks; dirty blocks are written to the log
//! at checkpoints and their addresses recorded in the checkpoint region.
//! At our scale the whole map stays memory-resident, which the paper
//! expects for the blocks mapping active files.

use vfs::{FsError, FsResult, Ino};

use crate::layout::imap_block::{self, ImapEntry};
use crate::types::BlockAddr;

/// The inode map.
#[derive(Debug, Clone)]
pub struct Imap {
    entries: Vec<ImapEntry>,
    entries_per_block: usize,
    /// Current log address of each imap block (NIL before first flush).
    block_addrs: Vec<BlockAddr>,
    /// Per-block dirty flags.
    dirty: Vec<bool>,
    /// Allocation scan hint.
    next_free: u32,
    live: u64,
}

impl Imap {
    /// Creates an empty map for `max_inodes` inodes.
    pub fn new(max_inodes: u32, entries_per_block: usize) -> Self {
        let nblocks = (max_inodes as usize).div_ceil(entries_per_block);
        Self {
            entries: vec![ImapEntry::FREE; max_inodes as usize],
            entries_per_block,
            block_addrs: vec![BlockAddr::NIL; nblocks],
            dirty: vec![false; nblocks],
            next_free: Ino::ROOT.0,
            live: 0,
        }
    }

    /// Maximum number of inodes.
    pub fn max_inodes(&self) -> u32 {
        self.entries.len() as u32
    }

    /// Number of imap blocks.
    pub fn nblocks(&self) -> usize {
        self.block_addrs.len()
    }

    /// Number of allocated inodes.
    pub fn live_count(&self) -> u64 {
        self.live
    }

    /// Returns the allocation-scan hint (for checkpointing).
    pub fn next_free_hint(&self) -> Ino {
        Ino(self.next_free)
    }

    /// Sets the allocation-scan hint (when loading a checkpoint).
    pub fn set_next_free_hint(&mut self, hint: Ino) {
        self.next_free = hint.0.max(Ino::ROOT.0);
    }

    fn block_of(&self, ino: Ino) -> usize {
        ino.0 as usize / self.entries_per_block
    }

    fn check(&self, ino: Ino) -> FsResult<usize> {
        let idx = ino.0 as usize;
        if !ino.is_valid() || idx >= self.entries.len() {
            return Err(FsError::Corrupt("inode number out of range"));
        }
        Ok(idx)
    }

    /// Reads an entry.
    pub fn get(&self, ino: Ino) -> FsResult<ImapEntry> {
        Ok(self.entries[self.check(ino)?])
    }

    /// Returns true if `ino` is allocated.
    pub fn is_allocated(&self, ino: Ino) -> bool {
        self.get(ino).map(|e| e.allocated).unwrap_or(false)
    }

    fn mark_dirty(&mut self, ino: Ino) {
        let block = self.block_of(ino);
        self.dirty[block] = true;
    }

    /// Allocates a free inode number.
    ///
    /// The version number of the slot is preserved (it was bumped when the
    /// previous incarnation died), so stale log blocks can never be
    /// mistaken for the new file's.
    pub fn allocate(&mut self) -> FsResult<Ino> {
        // Valid inode numbers are 1..n; scan from the hint, wrapping.
        let count = self.entries.len().saturating_sub(1);
        for probe in 0..count {
            let start = (self.next_free as usize).max(1) - 1;
            let candidate = 1 + (start + probe) % count;
            let ino = Ino(candidate as u32);
            let idx = self.check(ino)?;
            if !self.entries[idx].allocated {
                self.entries[idx].allocated = true;
                self.entries[idx].addr = BlockAddr::NIL;
                self.entries[idx].slot = 0;
                self.next_free = candidate as u32 + 1;
                self.live += 1;
                self.mark_dirty(ino);
                return Ok(ino);
            }
        }
        Err(FsError::NoInodes)
    }

    /// Allocates a specific inode number (used for the root at format).
    pub fn allocate_specific(&mut self, ino: Ino) -> FsResult<()> {
        let idx = self.check(ino)?;
        if self.entries[idx].allocated {
            return Err(FsError::AlreadyExists);
        }
        self.entries[idx].allocated = true;
        self.entries[idx].addr = BlockAddr::NIL;
        self.live += 1;
        self.mark_dirty(ino);
        Ok(())
    }

    /// Frees an inode, bumping its version so the cleaner can identify
    /// every one of its old log blocks as dead (§4.3.3 step 1).
    pub fn free(&mut self, ino: Ino) -> FsResult<()> {
        let idx = self.check(ino)?;
        if !self.entries[idx].allocated {
            return Err(FsError::Corrupt("double free of inode"));
        }
        self.entries[idx].allocated = false;
        self.entries[idx].addr = BlockAddr::NIL;
        self.entries[idx].version += 1;
        self.live -= 1;
        self.mark_dirty(ino);
        Ok(())
    }

    /// Bumps the version (file truncated to length zero).
    pub fn bump_version(&mut self, ino: Ino) -> FsResult<()> {
        let idx = self.check(ino)?;
        self.entries[idx].version += 1;
        self.mark_dirty(ino);
        Ok(())
    }

    /// Records the new log location of an inode.
    pub fn set_location(&mut self, ino: Ino, addr: BlockAddr, slot: u16) -> FsResult<()> {
        let idx = self.check(ino)?;
        self.entries[idx].addr = addr;
        self.entries[idx].slot = slot;
        self.mark_dirty(ino);
        Ok(())
    }

    /// Overwrites an entry wholesale (roll-forward recovery).
    pub fn restore_entry(&mut self, ino: Ino, entry: ImapEntry) -> FsResult<()> {
        let idx = self.check(ino)?;
        let was = self.entries[idx].allocated;
        self.entries[idx] = entry;
        match (was, entry.allocated) {
            (false, true) => self.live += 1,
            (true, false) => self.live -= 1,
            _ => {}
        }
        self.mark_dirty(ino);
        Ok(())
    }

    /// Updates the access time without touching the inode (footnote 2).
    pub fn set_atime(&mut self, ino: Ino, atime_ns: u64) -> FsResult<()> {
        let idx = self.check(ino)?;
        self.entries[idx].atime_ns = atime_ns;
        self.mark_dirty(ino);
        Ok(())
    }

    /// Iterates over all allocated inode numbers.
    pub fn allocated_inos(&self) -> impl Iterator<Item = Ino> + '_ {
        self.entries
            .iter()
            .enumerate()
            .filter(|(_, e)| e.allocated)
            .map(|(i, _)| Ino(i as u32))
    }

    /// Marks an imap block dirty (cleaner relocation).
    pub fn mark_block_dirty(&mut self, index: usize) {
        self.dirty[index] = true;
    }

    /// Returns the indexes of dirty imap blocks.
    pub fn dirty_blocks(&self) -> Vec<usize> {
        (0..self.dirty.len()).filter(|&i| self.dirty[i]).collect()
    }

    /// Returns true if any imap block is dirty.
    pub fn any_dirty(&self) -> bool {
        self.dirty.iter().any(|&d| d)
    }

    /// Serialises imap block `index`.
    pub fn encode_block(&self, index: usize, block_size: usize) -> Vec<u8> {
        let start = index * self.entries_per_block;
        let end = (start + self.entries_per_block).min(self.entries.len());
        imap_block::encode_block(&self.entries[start..end], block_size)
    }

    /// Marks block `index` clean and records its new log address.
    /// Returns the previous address.
    pub fn commit_block(&mut self, index: usize, addr: BlockAddr) -> BlockAddr {
        self.dirty[index] = false;
        std::mem::replace(&mut self.block_addrs[index], addr)
    }

    /// Current log address of imap block `index`.
    pub fn block_addr(&self, index: usize) -> BlockAddr {
        self.block_addrs[index]
    }

    /// All imap block addresses, for the checkpoint region.
    pub fn block_addrs(&self) -> &[BlockAddr] {
        &self.block_addrs
    }

    /// Loads the map from decoded blocks (mount path).
    pub fn load_block(&mut self, index: usize, addr: BlockAddr, block: &[u8]) -> FsResult<()> {
        let start = index * self.entries_per_block;
        let count = self.entries_per_block.min(self.entries.len() - start);
        let decoded = imap_block::decode_block(block, count)?;
        for (offset, entry) in decoded.into_iter().enumerate() {
            let idx = start + offset;
            if self.entries[idx].allocated != entry.allocated {
                if entry.allocated {
                    self.live += 1;
                } else {
                    self.live -= 1;
                }
            }
            self.entries[idx] = entry;
        }
        self.block_addrs[index] = addr;
        self.dirty[index] = false;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn imap() -> Imap {
        Imap::new(64, 8)
    }

    #[test]
    fn allocate_skips_invalid_and_is_dense() {
        let mut m = imap();
        let a = m.allocate().unwrap();
        let b = m.allocate().unwrap();
        assert_eq!(a, Ino(1));
        assert_eq!(b, Ino(2));
        assert_eq!(m.live_count(), 2);
        assert!(m.is_allocated(a));
        assert!(!m.is_allocated(Ino(3)));
    }

    #[test]
    fn free_bumps_version_and_allows_reuse() {
        let mut m = imap();
        let ino = m.allocate().unwrap();
        let v0 = m.get(ino).unwrap().version;
        m.free(ino).unwrap();
        assert_eq!(m.get(ino).unwrap().version, v0 + 1);
        assert!(!m.is_allocated(ino));
        // Wraps around and finds the freed slot again.
        for _ in 0..62 {
            m.allocate().unwrap();
        }
        let reused = m.allocate().unwrap();
        assert_eq!(reused, ino);
        // Version survives reuse.
        assert_eq!(m.get(ino).unwrap().version, v0 + 1);
    }

    #[test]
    fn exhaustion_returns_no_inodes() {
        let mut m = Imap::new(4, 8);
        // Inodes 1..=3 are allocatable (0 is invalid).
        assert!(m.allocate().is_ok());
        assert!(m.allocate().is_ok());
        assert!(m.allocate().is_ok());
        assert_eq!(m.allocate(), Err(FsError::NoInodes));
    }

    #[test]
    fn double_free_is_detected() {
        let mut m = imap();
        let ino = m.allocate().unwrap();
        m.free(ino).unwrap();
        assert!(m.free(ino).is_err());
    }

    #[test]
    fn dirty_tracking_follows_blocks() {
        let mut m = imap();
        assert!(!m.any_dirty());
        let ino = m.allocate().unwrap(); // Ino 1, block 0.
        assert_eq!(m.dirty_blocks(), vec![0]);
        m.set_location(Ino(17), BlockAddr(5), 2).unwrap(); // Block 2.
        assert_eq!(m.dirty_blocks(), vec![0, 2]);
        let old = m.commit_block(0, BlockAddr(9));
        assert_eq!(old, BlockAddr::NIL);
        assert_eq!(m.dirty_blocks(), vec![2]);
        assert_eq!(m.block_addr(0), BlockAddr(9));
        let _ = ino;
    }

    #[test]
    fn encode_load_round_trips() {
        let mut m = imap();
        let ino = m.allocate().unwrap();
        m.set_location(ino, BlockAddr(42), 1).unwrap();
        m.set_atime(ino, 777).unwrap();
        let block = m.encode_block(0, 512);

        let mut fresh = imap();
        fresh.load_block(0, BlockAddr(42), &block).unwrap();
        assert_eq!(fresh.get(ino).unwrap(), m.get(ino).unwrap());
        assert_eq!(fresh.live_count(), 1);
        assert!(!fresh.any_dirty());
        assert_eq!(fresh.block_addr(0), BlockAddr(42));
    }

    #[test]
    fn restore_entry_adjusts_live_count() {
        let mut m = imap();
        m.restore_entry(
            Ino(5),
            ImapEntry {
                addr: BlockAddr(3),
                slot: 0,
                allocated: true,
                version: 7,
                atime_ns: 0,
            },
        )
        .unwrap();
        assert_eq!(m.live_count(), 1);
        m.restore_entry(Ino(5), ImapEntry::FREE).unwrap();
        assert_eq!(m.live_count(), 0);
    }

    #[test]
    fn allocated_inos_iterates() {
        let mut m = imap();
        let a = m.allocate().unwrap();
        let b = m.allocate().unwrap();
        m.free(a).unwrap();
        let live: Vec<Ino> = m.allocated_inos().collect();
        assert_eq!(live, vec![b]);
    }

    #[test]
    fn out_of_range_is_rejected() {
        let m = imap();
        assert!(m.get(Ino(0)).is_err());
        assert!(m.get(Ino(64)).is_err());
    }
}
