//! The incremental, resumable async cleaner (§4.3.4's "clean during
//! idle periods", driven from outside).
//!
//! [`CleanerRun`] decomposes the synchronous clean-on-threshold path
//! into small steps a host event loop can interleave with foreground
//! operations: each call to [`Lfs::cleaner_step`] performs one bounded
//! unit of work — claim or issue one bounded segment read, classify a
//! bounded number of summary entries, or commit the finished
//! relocations with a checkpoint — and returns. Cleaner I/O is issued
//! with the device's maintenance class on (see
//! [`BlockDevice::set_maintenance`]), so on an engine-backed device it
//! competes in the same request queues as foreground clients while its
//! queue waits land in `engine.maintenance.disk_wait_ns` rather than
//! any client's account. Segment reads use the non-blocking
//! [`BlockDevice::start_read_async`] facade when the device offers one:
//! a read issued in one step is claimed in a later step, so foreground
//! traffic (especially on *other* spindles of a striped volume)
//! advances virtual time underneath it and the claim often costs no
//! additional time at all.
//!
//! The crash-safety protocol is unchanged from the synchronous cleaner:
//! a victim becomes [`SegState::CleanPending`] only after every live
//! block has been re-dirtied in the cache, and pending segments are
//! promoted to clean only by the checkpoint that also persists their
//! relocated contents. A crash at any step therefore finds either the
//! old copies intact or the checkpoint that supersedes them.

use sim_disk::BlockDevice;
use vfs::FsResult;

use crate::cleaner::{AsyncCleanerPolicy, CleanerRunMode};
use crate::fs::Lfs;
use crate::layout::summary::ChunkSummary;
use crate::layout::usage_block::SegState;
use crate::types::{BlockAddr, SegNo};

/// A segment read in flight between steps.
#[derive(Debug)]
struct PendingRead {
    /// Device token from [`BlockDevice::start_read_async`].
    token: u64,
    /// First block of the span, relative to the segment base.
    block_off: usize,
    /// Blocks in the span.
    nblocks: usize,
}

/// Progress on the victim currently being cleaned.
#[derive(Debug)]
struct VictimProgress {
    seg: SegNo,
    /// The segment image, filled front-to-back by the read steps.
    image: Vec<u8>,
    /// Blocks of the image that are valid.
    blocks_read: usize,
    pending_read: Option<PendingRead>,
    /// Chunk-walk cursor: block offset of the current chunk's summary.
    offset: usize,
    /// Entries of the current chunk already classified.
    entry_cursor: usize,
    expected_seq: Option<u64>,
    expected_partial: u32,
    live_blocks: u64,
    live_inodes: u64,
}

impl VictimProgress {
    fn new(seg: SegNo, image_bytes: usize) -> Self {
        Self {
            seg,
            image: vec![0u8; image_bytes],
            blocks_read: 0,
            pending_read: None,
            offset: 0,
            entry_cursor: 0,
            expected_seq: None,
            expected_partial: 0,
            live_blocks: 0,
            live_inodes: 0,
        }
    }
}

/// The state of one incremental cleaning run, owned by [`Lfs`] between
/// steps.
#[derive(Debug)]
pub struct CleanerRun {
    policy: AsyncCleanerPolicy,
    /// Remaining relocation budget (live bytes that still fit the clean
    /// segments available when the run started).
    budget: u64,
    current: Option<VictimProgress>,
    /// Victims fully cleaned by this run so far.
    cleaned: usize,
}

impl CleanerRun {
    fn new(policy: AsyncCleanerPolicy, budget: u64) -> Self {
        Self {
            policy,
            budget,
            current: None,
            cleaned: 0,
        }
    }

    /// Victims fully cleaned by this run so far.
    pub fn segments_cleaned(&self) -> usize {
        self.cleaned
    }

    /// True while a segment read issued through the device's async read
    /// facade is still unclaimed. Hosts use this to spend idle time
    /// letting the disk service the read, so the claiming step finds it
    /// complete instead of waiting synchronously.
    pub fn read_pending(&self) -> bool {
        self.current
            .as_ref()
            .is_some_and(|v| v.pending_read.is_some())
    }
}

/// What one [`Lfs::cleaner_step`] call did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CleanerStepOutcome {
    /// Nothing to do: sync mode, read-only, or watermarks satisfied with
    /// no run active.
    Idle,
    /// One bounded unit of work was performed; the run continues.
    Progress,
    /// The run just ended. If it cleaned any segment, the committing
    /// checkpoint has landed and the segments are reusable.
    Completed,
}

/// Internal result of one unit of run work.
enum StepWork {
    Continue,
    Finished,
}

impl<D: BlockDevice> Lfs<D> {
    /// Segments currently reusable or awaiting their commit: clean plus
    /// clean-pending.
    fn clean_and_pending(&self) -> usize {
        self.usage.clean_count() + self.usage.segments_in_state(SegState::CleanPending).len()
    }

    /// The run-start threshold, floored safely above the emergency
    /// cleaning floor (`reserve + 2`) so a responsive host always cleans
    /// asynchronously before a foreground operation is forced to.
    fn effective_low(&self, policy: &AsyncCleanerPolicy) -> usize {
        policy.low_watermark.max(self.reserve_segments + 3)
    }

    /// The run-stop threshold (hysteresis above the start threshold).
    fn effective_high(&self, policy: &AsyncCleanerPolicy) -> usize {
        policy.high_watermark.max(self.effective_low(policy) + 2)
    }

    /// Segments kept in reserve so a checkpoint can always complete —
    /// the base of the emergency cleaning floor. Hosts size async
    /// watermarks relative to this.
    pub fn reserve_segment_count(&self) -> usize {
        self.reserve_segments
    }

    /// True while an incremental cleaning run is in progress.
    pub fn cleaner_run_active(&self) -> bool {
        self.cleaner_run.is_some()
    }

    /// True while the active run has a segment read in flight; see
    /// [`CleanerRun::read_pending`].
    pub fn cleaner_read_pending(&self) -> bool {
        self.cleaner_run.as_ref().is_some_and(CleanerRun::read_pending)
    }

    /// Whether the host should call [`Lfs::cleaner_step`] now.
    /// `queue_depth` is the engine's pending-request count (pass 0 for
    /// devices without a queue); an idle-gated policy declines while the
    /// queue is deeper than its bound. Always false in sync mode.
    pub fn cleaner_wants_step(&self, queue_depth: u64) -> bool {
        let CleanerRunMode::Async(policy) = self.cfg.cleaner.run_mode else {
            return false;
        };
        if self.read_only {
            return false;
        }
        if let Some(gate) = policy.idle_queue_depth {
            if queue_depth > gate {
                return false;
            }
        }
        if self.cleaner_run.is_some() {
            return true;
        }
        let level = self.clean_and_pending();
        if self.cleaner_futile_at == Some(level) {
            // The last run found nothing to clean at this level; until
            // the segment population changes, another run won't either.
            return false;
        }
        level < self.effective_low(&policy)
    }

    /// Performs one bounded unit of incremental cleaning: start a run if
    /// the low watermark is crossed, claim or issue one bounded segment
    /// read, classify a bounded number of summary entries, or — when the
    /// high watermark is reached or victims run out — commit the run's
    /// relocations with a checkpoint. Returns [`CleanerStepOutcome::Idle`]
    /// in sync mode, so hosts may call it unconditionally.
    pub fn cleaner_step(&mut self) -> FsResult<CleanerStepOutcome> {
        let CleanerRunMode::Async(policy) = self.cfg.cleaner.run_mode else {
            return Ok(CleanerStepOutcome::Idle);
        };
        if self.read_only {
            return Ok(CleanerStepOutcome::Idle);
        }
        if self.cleaner_run.is_none() {
            let level = self.clean_and_pending();
            if level >= self.effective_low(&policy) || self.cleaner_futile_at == Some(level) {
                return Ok(CleanerStepOutcome::Idle);
            }
            self.cleaner_run = Some(CleanerRun::new(policy, self.relocation_budget()));
            self.obs.async_runs_started.inc();
            self.obs.registry.event(
                self.clock.now_ns(),
                "cleaner_run",
                format!(
                    "start clean={} pending={} budget={}",
                    self.usage.clean_count(),
                    self.usage.segments_in_state(SegState::CleanPending).len(),
                    self.cleaner_run.as_ref().unwrap().budget,
                ),
            );
        }
        self.obs.async_steps.inc();
        let mut run = self.cleaner_run.take().expect("run just ensured");
        let was_maintenance = std::mem::replace(&mut self.in_maintenance, true);
        self.dev.set_maintenance(true);
        let work = self.run_step(&mut run);
        self.dev.set_maintenance(false);
        self.in_maintenance = was_maintenance;
        match work {
            Ok(StepWork::Continue) => {
                // Prepay write-back debt: once the cache is half dirty
                // (the run's re-dirtied live blocks plus foreground
                // writes), drain it from the cleaner's own time slice.
                // Otherwise the relocations sit in cache until some
                // foreground operation's write-back pays for them —
                // the cleaner's cost would land on foreground latency.
                // A plain data flush, not a checkpoint: promotion of the
                // run's clean-pending segments waits for the single
                // committing checkpoint when the run finishes. Skipped
                // once the clean count reaches the checkpoint reserve —
                // a direct flush bypasses the emergency commit-pending
                // path, so down there the foreground write path (which
                // has that escape hatch) must do the draining.
                if self.cache.dirty_count() * 2 >= self.cache.capacity_blocks()
                    && self.usage.clean_count() > self.reserve_segments
                {
                    self.dev.set_maintenance(true);
                    let fl = self.flush(false, false);
                    self.dev.set_maintenance(false);
                    fl?;
                }
                self.cleaner_run = Some(run);
                Ok(CleanerStepOutcome::Progress)
            }
            Ok(StepWork::Finished) => {
                if run.cleaned > 0 {
                    // Commit: persist the relocations and promote the
                    // pending segments. The checkpoint is still
                    // maintenance I/O; re-tag around it.
                    self.dev.set_maintenance(true);
                    let cp = self.checkpoint();
                    self.dev.set_maintenance(false);
                    cp?;
                }
                // Futility damping: a run that cleaned nothing (no
                // victim worth selecting — see the packing check in
                // `pick_async_victim`) must not restart at the same
                // segment population, or an eager host would spin.
                self.cleaner_futile_at = if run.cleaned == 0 {
                    Some(self.clean_and_pending())
                } else {
                    None
                };
                self.obs.async_runs_completed.inc();
                self.obs.registry.event(
                    self.clock.now_ns(),
                    "cleaner_run",
                    format!("finish cleaned={} clean={}", run.cleaned, self.usage.clean_count()),
                );
                Ok(CleanerStepOutcome::Completed)
            }
            Err(e) => Err(e),
        }
    }

    /// One unit of run work.
    fn run_step(&mut self, run: &mut CleanerRun) -> FsResult<StepWork> {
        if let Some(mut v) = run.current.take() {
            // A stale victim (its state changed under us — e.g. an
            // emergency synchronous pass cleaned it) is abandoned; any
            // in-flight read is claimed and discarded so no queue is
            // left holding it.
            if self.usage.state(v.seg) != SegState::Dirty {
                if let Some(p) = v.pending_read.take() {
                    let _ = self.dev.finish_read_async(p.token);
                }
                self.obs.async_victims_aborted.inc();
                return Ok(StepWork::Continue);
            }
            if v.pending_read.is_some() || v.blocks_read < self.sb.seg_blocks as usize {
                self.read_step(&mut v, &run.policy)?;
                run.current = Some(v);
                return Ok(StepWork::Continue);
            }
            let done = self.classify_step(&mut v, run.policy.max_step_entries.max(1))?;
            if done {
                self.usage.set_state(v.seg, SegState::CleanPending);
                self.obs.segments_cleaned.inc();
                self.obs.cleaner_blocks_copied.add(v.live_blocks);
                self.obs.cleaner_inodes_copied.add(v.live_inodes);
                run.cleaned += 1;
            } else {
                run.current = Some(v);
            }
            return Ok(StepWork::Continue);
        }
        // Between victims: reach the high watermark and stop, or select
        // the next victim within budget.
        if self.clean_and_pending() >= self.effective_high(&run.policy) {
            return Ok(StepWork::Finished);
        }
        match self.pick_async_victim(run) {
            Some(seg) => {
                let image_bytes = self.sb.seg_blocks as usize * self.block_size();
                run.current = Some(VictimProgress::new(seg, image_bytes));
                Ok(StepWork::Continue)
            }
            None => Ok(StepWork::Finished),
        }
    }

    /// Claims the in-flight read span, or issues the next bounded one.
    /// On devices without an async read path the span is read
    /// synchronously (still bounded per step).
    fn read_step(&mut self, v: &mut VictimProgress, policy: &AsyncCleanerPolicy) -> FsResult<()> {
        let bs = self.block_size();
        if let Some(p) = v.pending_read.take() {
            let data = self.dev.finish_read_async(p.token)?;
            v.image[p.block_off * bs..p.block_off * bs + data.len()].copy_from_slice(&data);
            v.blocks_read = p.block_off + p.nblocks;
            self.obs.cleaner_bytes_read.add(data.len() as u64);
            return Ok(());
        }
        let seg_blocks = self.sb.seg_blocks as usize;
        let n = (seg_blocks - v.blocks_read).min(policy.max_step_read_blocks.max(1));
        let addr = BlockAddr(self.sb.seg_block(v.seg, 0).0 + v.blocks_read as u32);
        let sector = self.sector_of(addr);
        self.dev.annotate("cleaner-read");
        match self.dev.start_read_async(sector, n * bs) {
            Some(token) => {
                v.pending_read = Some(PendingRead {
                    token,
                    block_off: v.blocks_read,
                    nblocks: n,
                });
            }
            None => {
                let mut buf = vec![0u8; n * bs];
                self.dev.read(sector, &mut buf)?;
                v.image[v.blocks_read * bs..(v.blocks_read + n) * bs].copy_from_slice(&buf);
                v.blocks_read += n;
                self.obs.cleaner_bytes_read.add(buf.len() as u64);
            }
        }
        Ok(())
    }

    /// Classifies up to `max_entries` summary entries of the fully-read
    /// victim image, resuming the chunk walk where the previous step
    /// stopped. Returns true when the walk is complete.
    fn classify_step(&mut self, v: &mut VictimProgress, max_entries: usize) -> FsResult<bool> {
        let bs = self.block_size();
        let seg_blocks = self.sb.seg_blocks as usize;
        let base = self.sb.seg_block(v.seg, 0);
        let mut processed = 0usize;
        while processed < max_entries {
            if v.offset + 1 >= seg_blocks {
                return Ok(true);
            }
            let here = BlockAddr(base.0 + v.offset as u32);
            let Ok(summary) = ChunkSummary::decode_at(&v.image[v.offset * bs..], here) else {
                return Ok(true);
            };
            if v.entry_cursor == 0 {
                match v.expected_seq {
                    None => {
                        if summary.partial != 0 {
                            return Ok(true);
                        }
                        v.expected_seq = Some(summary.seq);
                    }
                    Some(seq) => {
                        if summary.seq != seq || summary.partial != v.expected_partial {
                            return Ok(true);
                        }
                    }
                }
            }
            let s = (summary.reserved_blocks as usize)
                .max(ChunkSummary::summary_blocks(summary.entries.len(), bs));
            let payload_start = v.offset + s;
            if payload_start + summary.entries.len() > seg_blocks {
                return Ok(true);
            }
            while v.entry_cursor < summary.entries.len() && processed < max_entries {
                let entry = &summary.entries[v.entry_cursor];
                let block_off = payload_start + v.entry_cursor;
                let addr = BlockAddr(base.0 + block_off as u32);
                let data = v.image[block_off * bs..(block_off + 1) * bs].to_vec();
                let (blocks, inodes) =
                    self.clean_entry(entry.kind, entry.version, entry.crc, addr, &data)?;
                v.live_blocks += blocks;
                v.live_inodes += inodes;
                v.entry_cursor += 1;
                processed += 1;
            }
            if v.entry_cursor == summary.entries.len() {
                v.offset = payload_start + summary.entries.len();
                v.entry_cursor = 0;
                v.expected_partial += 1;
            }
        }
        Ok(false)
    }

    /// Chooses the run's next victim within its remaining budget,
    /// preferring (when the volume is striped segment-round-robin) a
    /// segment on a spindle other than the log head's, so cleaner reads
    /// overlap foreground writes instead of queueing behind them.
    fn pick_async_victim(&mut self, run: &mut CleanerRun) -> Option<SegNo> {
        // Packing check: cleaning can only gain segments while the live
        // data occupies more segments than it strictly needs (plus one
        // for the active tail). At optimal packing every "victim" is
        // pure compaction — its relocated blocks recreate an equivalent
        // partial segment, a treadmill that reclaims nothing and would
        // run forever under an always-eager policy.
        let seg_bytes = self.usage.seg_bytes();
        let packed = self.usage.total_live_bytes().div_ceil(seg_bytes) as usize;
        let used = (self.usage.nsegments() as usize).saturating_sub(self.clean_and_pending());
        if used <= packed + 1 {
            return None;
        }
        let candidates = self.pick_victims(self.cfg.cleaner.segments_per_pass.max(1));
        let affordable: Vec<SegNo> = candidates
            .into_iter()
            .filter(|&seg| self.usage.get(seg).live_bytes as u64 <= run.budget)
            .collect();
        let spindles = run.policy.stripe_spindles;
        let chosen = if spindles > 1 {
            let head = self.spindle_of_seg(self.pos.seg, spindles);
            match affordable
                .iter()
                .copied()
                .find(|&seg| self.spindle_of_seg(seg, spindles) != head)
            {
                Some(seg) => {
                    self.obs.async_offspindle_victims.inc();
                    Some(seg)
                }
                None => affordable.first().copied(),
            }
        } else {
            affordable.first().copied()
        };
        if let Some(seg) = chosen {
            run.budget -= self.usage.get(seg).live_bytes as u64;
        }
        chosen
    }

    /// The spindle a segment's blocks live on under segment-granular
    /// round-robin striping with `spindles` disks.
    fn spindle_of_seg(&self, seg: SegNo, spindles: usize) -> usize {
        let sector = self.sector_of(self.sb.seg_block(seg, 0));
        let chunk_sectors = (self.cfg.stripe_chunk_bytes() / sim_disk::SECTOR_SIZE) as u64;
        if chunk_sectors == 0 {
            return 0;
        }
        ((sector / chunk_sectors) as usize) % spindles.max(1)
    }
}
