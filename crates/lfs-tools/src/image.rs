//! Disk-image file handling for the CLI tools.
//!
//! Images are flat files of sectors, loaded into a [`sim_disk::SimDisk`]
//! with a WREN-IV timing model (the timing is irrelevant for offline
//! inspection but keeps one code path).

use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::Arc;

use sim_disk::{Clock, DiskGeometry, SimDisk, SECTOR_SIZE};
use volume::{StripedVolume, VolumeConfig, VolumeDisk};

/// Reads an image file, padding with zeros to `want` bytes.
fn read_padded(path: &Path, want: usize) -> io::Result<Vec<u8>> {
    let mut data = fs::read(path)?;
    if data.len() > want {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!(
                "image {} is larger than the device ({} > {want} bytes)",
                path.display(),
                data.len()
            ),
        ));
    }
    data.resize(want, 0);
    Ok(data)
}

/// Loads a disk image file, padding it to the geometry if shorter.
pub fn load(path: &Path, geometry: &DiskGeometry) -> io::Result<SimDisk> {
    let data = read_padded(path, geometry.num_sectors as usize * SECTOR_SIZE)?;
    Ok(SimDisk::from_image(geometry.clone(), Clock::new(), data))
}

/// Per-spindle backing-image paths for a striped volume:
/// `<image>.s0`, `<image>.s1`, …
pub fn spindle_paths(path: &Path, spindles: usize) -> Vec<PathBuf> {
    (0..spindles)
        .map(|i| {
            let mut name = path.as_os_str().to_os_string();
            name.push(format!(".s{i}"));
            PathBuf::from(name)
        })
        .collect()
}

/// Loads a striped volume from one backing image per spindle, each
/// padded to the per-spindle geometry if shorter.
pub fn load_striped(
    path: &Path,
    geometry: &DiskGeometry,
    cfg: VolumeConfig,
) -> io::Result<VolumeDisk> {
    let want = geometry.num_sectors as usize * SECTOR_SIZE;
    let images = spindle_paths(path, cfg.spindles)
        .iter()
        .map(|p| read_padded(p, want))
        .collect::<io::Result<Vec<_>>>()?;
    let vol = StripedVolume::from_images(geometry.clone(), Clock::new(), cfg, images);
    Ok(VolumeDisk::new(vol.into_shared()))
}

/// Creates a zero-filled striped volume of the per-spindle geometry.
pub fn create_blank_striped(geometry: &DiskGeometry, cfg: VolumeConfig) -> VolumeDisk {
    VolumeDisk::new(StripedVolume::new(geometry.clone(), Clock::new(), cfg).into_shared())
}

/// Writes a striped volume's spindles back to their backing images.
/// Consumes the handle: the caller must hold the only one.
pub fn save_striped(path: &Path, disk: VolumeDisk) -> io::Result<()> {
    let images = disk.into_images();
    for (p, image) in spindle_paths(path, images.len()).iter().zip(&images) {
        fs::write(p, image)?;
    }
    Ok(())
}

/// Creates a zero-filled image of the geometry's size.
pub fn create_blank(geometry: &DiskGeometry) -> SimDisk {
    SimDisk::new(geometry.clone(), Clock::new())
}

/// Writes a disk's contents back to an image file.
pub fn save(path: &Path, disk: &SimDisk) -> io::Result<()> {
    fs::write(path, disk.image())
}

/// Geometry chosen by a `--size-mb` option (WREN IV timing).
pub fn geometry_for_mb(mb: u64) -> DiskGeometry {
    DiskGeometry::wren_iv().with_sectors(mb * 1024 * 1024 / SECTOR_SIZE as u64)
}

/// Shared Arc clock helper for tools that need one.
pub fn clock() -> Arc<Clock> {
    Clock::new()
}
