//! Disk-image file handling for the CLI tools.
//!
//! Images are flat files of sectors, loaded into a [`sim_disk::SimDisk`]
//! with a WREN-IV timing model (the timing is irrelevant for offline
//! inspection but keeps one code path).

use std::fs;
use std::io;
use std::path::Path;
use std::sync::Arc;

use sim_disk::{Clock, DiskGeometry, SimDisk, SECTOR_SIZE};

/// Loads a disk image file, padding it to the geometry if shorter.
pub fn load(path: &Path, geometry: &DiskGeometry) -> io::Result<SimDisk> {
    let mut data = fs::read(path)?;
    let want = geometry.num_sectors as usize * SECTOR_SIZE;
    if data.len() > want {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!(
                "image is larger than the device ({} > {want} bytes)",
                data.len()
            ),
        ));
    }
    data.resize(want, 0);
    Ok(SimDisk::from_image(geometry.clone(), Clock::new(), data))
}

/// Creates a zero-filled image of the geometry's size.
pub fn create_blank(geometry: &DiskGeometry) -> SimDisk {
    SimDisk::new(geometry.clone(), Clock::new())
}

/// Writes a disk's contents back to an image file.
pub fn save(path: &Path, disk: &SimDisk) -> io::Result<()> {
    fs::write(path, disk.image())
}

/// Geometry chosen by a `--size-mb` option (WREN IV timing).
pub fn geometry_for_mb(mb: u64) -> DiskGeometry {
    DiskGeometry::wren_iv().with_sectors(mb * 1024 * 1024 / SECTOR_SIZE as u64)
}

/// Shared Arc clock helper for tools that need one.
pub fn clock() -> Arc<Clock> {
    Clock::new()
}
