//! Human-readable dumps of LFS on-disk structures (`dumpfs`).

use lfs_core::layout::checkpoint::CheckpointRegion;
use lfs_core::layout::summary::{BlockKind, ChunkSummary};
use lfs_core::layout::superblock::Superblock;
use sim_disk::BlockDevice;
use vfs::{FsError, FsResult};

/// Formats one summary entry for display.
fn entry_desc(kind: BlockKind) -> String {
    match kind {
        BlockKind::Data { ino, bno } => format!("data {ino} blk{bno}"),
        BlockKind::IndSingle { ino } => format!("ind-single {ino}"),
        BlockKind::IndDoubleTop { ino } => format!("ind-double-top {ino}"),
        BlockKind::IndDoubleChild { ino, outer } => {
            format!("ind-double-child {ino} [{outer}]")
        }
        BlockKind::InodeBlock => "inode block".to_string(),
        BlockKind::ImapBlock { index } => format!("imap block {index}"),
        BlockKind::UsageBlock { index } => format!("usage block {index}"),
    }
}

/// Dumps the superblock, both checkpoint regions, and every segment's
/// chunk chain to `out`.
pub fn dump(
    disk: &mut impl BlockDevice,
    out: &mut impl std::io::Write,
    verbose: bool,
) -> FsResult<()> {
    let mut first = vec![0u8; sim_disk::SECTOR_SIZE];
    disk.read(0, &mut first)?;
    let sb = Superblock::decode(&first)?;
    let bs = sb.block_size as usize;
    let spb = (bs / sim_disk::SECTOR_SIZE) as u64;

    writeln!(out, "superblock:").map_err(|_| FsError::Corrupt("io"))?;
    writeln!(
        out,
        "  block size {} B, {} segments x {} blocks, {} inodes max",
        sb.block_size, sb.nsegments, sb.seg_blocks, sb.max_inodes
    )
    .map_err(|_| FsError::Corrupt("io"))?;

    let region_bytes = (sb.cp_blocks * sb.block_size) as usize;
    for (name, addr) in [("A", sb.cp_a), ("B", sb.cp_b)] {
        let mut buf = vec![0u8; region_bytes];
        disk.read(addr.0 as u64 * spb, &mut buf)?;
        match CheckpointRegion::decode(&buf) {
            Ok(cp) => writeln!(
                out,
                "checkpoint {name}: serial {} seq {} at {} +{} (partial {}), {} imap blocks, {} usage blocks",
                cp.serial,
                cp.seq,
                cp.cur_seg,
                cp.next_block,
                cp.partial,
                cp.imap_addrs.iter().filter(|a| a.is_some()).count(),
                cp.usage_addrs.iter().filter(|a| a.is_some()).count(),
            )
            .map_err(|_| FsError::Corrupt("io"))?,
            Err(e) => writeln!(out, "checkpoint {name}: invalid ({e})")
                .map_err(|_| FsError::Corrupt("io"))?,
        }
    }

    for seg in 0..sb.nsegments {
        let base = sb.seg_start.0 + seg * sb.seg_blocks;
        let mut image = vec![0u8; sb.seg_blocks as usize * bs];
        disk.read(base as u64 * spb, &mut image)?;
        let mut offset = 0usize;
        let mut chunks = Vec::new();
        let mut expected: Option<(u64, u32)> = None;
        while offset + 1 < sb.seg_blocks as usize {
            let here = lfs_core::types::BlockAddr(base + offset as u32);
            let Ok(chunk) = ChunkSummary::decode_at(&image[offset * bs..], here) else {
                break;
            };
            match expected {
                None if chunk.partial != 0 => break,
                Some((seq, partial)) if chunk.seq != seq || chunk.partial != partial => break,
                _ => {}
            }
            let s = (chunk.reserved_blocks as usize)
                .max(ChunkSummary::summary_blocks(chunk.entries.len(), bs));
            let next = offset + s + chunk.entries.len();
            if next > sb.seg_blocks as usize {
                break;
            }
            expected = Some((chunk.seq, chunk.partial + 1));
            chunks.push((offset, chunk));
            offset = next;
        }
        if chunks.is_empty() {
            continue;
        }
        let seq = chunks[0].1.seq;
        writeln!(
            out,
            "segment {seg}: seq {seq}, {} chunk(s), {} blocks used",
            chunks.len(),
            offset
        )
        .map_err(|_| FsError::Corrupt("io"))?;
        if verbose {
            for (at, chunk) in &chunks {
                writeln!(
                    out,
                    "  chunk @+{at}: partial {} entries {} next_seg {}",
                    chunk.partial,
                    chunk.entries.len(),
                    chunk.next_seg
                )
                .map_err(|_| FsError::Corrupt("io"))?;
                for (i, entry) in chunk.entries.iter().enumerate() {
                    writeln!(
                        out,
                        "    [{i}] {} v{}",
                        entry_desc(entry.kind),
                        entry.version
                    )
                    .map_err(|_| FsError::Corrupt("io"))?;
                }
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use lfs_core::{Lfs, LfsConfig};
    use sim_disk::{Clock, DiskGeometry, SimDisk};
    use std::sync::Arc;
    use vfs::FileSystem;

    #[test]
    fn dump_shows_structures() {
        let clock = Clock::new();
        let disk = SimDisk::new(DiskGeometry::tiny_test(16_384), Arc::clone(&clock));
        let geometry = disk.geometry().clone();
        let mut fs = Lfs::format(disk, LfsConfig::small_test(), clock).unwrap();
        fs.write_file("/x", b"dump me").unwrap();
        fs.sync().unwrap();
        let image = fs.into_device().into_image();

        let mut disk = SimDisk::from_image(geometry, Clock::new(), image);
        let mut out = Vec::new();
        dump(&mut disk, &mut out, true).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("superblock:"));
        assert!(text.contains("checkpoint A: serial"));
        assert!(text.contains("segment 0: seq"));
        assert!(text.contains("inode block"));
        assert!(text.contains("data ino"));
    }
}
