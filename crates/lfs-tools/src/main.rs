//! `lfs-tools` — command-line utilities for LFS disk images.
//!
//! ```text
//! lfs-tools mkfs  <image> [--size-mb N]        format a new volume
//! lfs-tools fsck  <image> [--size-mb N] [--parallel N]   check consistency
//! lfs-tools verify <image> [--size-mb N] [--parallel N]  scrub: verify block checksums
//! lfs-tools dumpfs <image> [--size-mb N] [-v]  inspect on-disk structures
//! lfs-tools clean <image> [--size-mb N] --target N   run the cleaner
//! lfs-tools df    <image>                      segment-level space report
//! lfs-tools stat  <image> <path>               file attributes
//! lfs-tools ls    <image> <path>               list a directory
//! lfs-tools cat   <image> <path>               print a file
//! lfs-tools put   <image> <host-file> <path>   import a file
//! lfs-tools rebuild <image> --spindles N --policy <parity> --degraded I
//!                                              reconstruct a lost spindle
//! lfs-tools status <image> --spindles N        per-spindle state and health
//! ```
//!
//! Images are flat files; a missing image is created zero-filled by
//! `mkfs`. The `--size-mb` option (default 32) sets the simulated disk
//! size when creating or when the image needs padding.
//!
//! Every subcommand also accepts `--spindles N` (default 1): the volume
//! is then a striped array of N disks with one backing image per
//! spindle, named `<image>.s0`, `<image>.s1`, … — `<image>` itself is
//! never touched. `--policy` picks the striping policy by its stable
//! name (`rr-segment`, the default; `interleave`; `parity-segment`;
//! `parity-rotate`) and `--size-mb` is the size of *each* spindle.
//!
//! On a parity policy, `--degraded I` mounts the array with spindle I's
//! media treated as dead: every read touching it is served by XOR
//! reconstruction across the survivors, so a damaged array can still be
//! fsck'd, scrubbed, and copied out of. Degraded mounts are read-only
//! from the CLI's point of view — commands that would write the backing
//! images back refuse. `rebuild` reconstructs the named spindle's image
//! in full (the `<image>.sI` file may be stale or missing) and leaves
//! the array healthy.
//!
//! `--hot-spare N` (parity arrays only) stocks N hot spares and arms
//! the fail-slow health monitor for the duration of the command: a
//! spindle the monitor evicts is swapped for a spare and rebuilt online
//! with no operator action, exactly as a production mount would.
//! `status` reports each spindle's serving state, the monitor's verdict
//! (when one is armed), and its observed/model service-time inflation.
//!
//! `--parallel N` sets the maintenance fan-out: mount-time roll-forward
//! and the fsck / verify gather phases keep up to N reads in flight
//! (`--parallel 0` asks the device — one per spindle of a striped
//! array). The default, 1, is the classic sequential scan. The fan-out
//! only overlaps reads; every verdict is identical to the sequential
//! one.
//!
//! `--cache-stats` (on `status` and `verify`) mounts the file system and
//! prints the memory manager's report after the command's work: policy,
//! write/read boundary, pool occupancy, hit/ghost/promotion counters and
//! per-client charges. With `--cache-stats`, `status` also works on a
//! single-image volume (`--spindles 1`), where it prints the cache
//! report alone.

use std::io::Write;
use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::Arc;

use lfs_core::{Lfs, LfsConfig};
use lfs_tools::image;
use sim_disk::{BlockDevice, Clock, SimDisk};
use vfs::FileSystem;
use volume::{
    HealthPolicy, HealthState, RebuildPolicy, RebuildProgress, SpindleState, StripePolicyKind,
    VolumeConfig, VolumeDisk,
};

fn usage() -> ExitCode {
    eprintln!(
        "usage: lfs-tools <mkfs|fsck|verify|dumpfs|clean|ls|cat|put|rebuild|status> <image> \
         [args...]\n\
         run with a subcommand; see crate docs for details"
    );
    ExitCode::from(2)
}

struct Opts {
    image: PathBuf,
    size_mb: u64,
    spindles: usize,
    policy: StripePolicyKind,
    degraded: Option<usize>,
    hot_spares: usize,
    cache_stats: bool,
    verbose: bool,
    target: usize,
    parallel: usize,
    rest: Vec<String>,
}

fn parse(args: &[String]) -> Option<Opts> {
    let mut opts = Opts {
        image: PathBuf::new(),
        size_mb: 32,
        spindles: 1,
        policy: StripePolicyKind::RrSegment,
        degraded: None,
        hot_spares: 0,
        cache_stats: false,
        verbose: false,
        target: 8,
        parallel: 1,
        rest: Vec::new(),
    };
    let mut it = args.iter().peekable();
    let mut positional = Vec::new();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--size-mb" => opts.size_mb = it.next()?.parse().ok()?,
            "--spindles" => opts.spindles = it.next()?.parse().ok().filter(|&n| n > 0)?,
            "--policy" => opts.policy = StripePolicyKind::parse(it.next()?)?,
            "--degraded" => opts.degraded = Some(it.next()?.parse().ok()?),
            "--hot-spare" => opts.hot_spares = it.next()?.parse().ok()?,
            "--cache-stats" => opts.cache_stats = true,
            "--target" => opts.target = it.next()?.parse().ok()?,
            "--parallel" => opts.parallel = it.next()?.parse().ok()?,
            "-v" | "--verbose" => opts.verbose = true,
            _ => positional.push(arg.clone()),
        }
    }
    opts.image = PathBuf::from(positional.first()?);
    opts.rest = positional[1..].to_vec();
    Some(opts)
}

/// Small-volume config used by the CLI (fast, modest inode count).
/// Parity policies add the layout rules that close the parity write
/// hole — every image formatted for a parity array gets them, so a
/// crash mid-command never leaves a row whose XOR is stale across
/// committed data.
fn cli_config(opts: &Opts) -> LfsConfig {
    let base = LfsConfig::paper()
        .with_cache_bytes(2 * 1024 * 1024)
        .with_recovery_fanout(opts.parallel);
    if opts.spindles > 1 && opts.policy.is_parity() {
        base.with_segment_aligned_metadata().with_seal_on_flush()
    } else {
        base
    }
}

/// Striping config selected by `--spindles` / `--policy`. Fails with a
/// friendly message (instead of the library panic) when the LFS segment
/// does not split across the parity array's data spindles.
fn striped_config(opts: &Opts) -> Result<VolumeConfig, String> {
    let chunk = cli_config(opts).stripe_chunk_bytes();
    // RAID-0/5 stripe unit for the small-chunk policies.
    const INTERLEAVE_CHUNK: usize = 64 * 1024;
    let n = opts.spindles;
    match opts.policy {
        StripePolicyKind::RrSegment => Ok(VolumeConfig::rr_segment(n, chunk)),
        StripePolicyKind::Interleave => Ok(VolumeConfig::interleave(n, INTERLEAVE_CHUNK)),
        StripePolicyKind::ParitySegment => {
            let data = n - 1;
            if data == 0 || !chunk.is_multiple_of(data * sim_disk::SECTOR_SIZE) {
                return Err(format!(
                    "parity-segment: the {chunk}-byte segment does not split into \
                     {data} sector-aligned chunks; use a spindle count where \
                     (spindles - 1) divides the segment into sector multiples"
                ));
            }
            Ok(VolumeConfig::parity_segment(n, chunk))
        }
        StripePolicyKind::ParityRotate => {
            if n < 2 {
                return Err("parity-rotate needs at least 2 spindles".into());
            }
            Ok(VolumeConfig::parity_rotate(n, INTERLEAVE_CHUNK))
        }
    }
}

/// How a logical volume maps to host files: one flat image, or one
/// backing image per spindle of a striped array. Commands are generic
/// over this, so single-disk and striped volumes share every code path.
trait Backing {
    type Dev: BlockDevice;
    fn load(&self, opts: &Opts) -> Result<Self::Dev, String>;
    fn create_blank(&self, opts: &Opts) -> Result<Self::Dev, String>;
    fn clock(dev: &Self::Dev) -> Arc<Clock>;
    fn save(&self, opts: &Opts, dev: Self::Dev) -> Result<(), String>;
}

struct SingleImage;

impl Backing for SingleImage {
    type Dev = SimDisk;

    fn load(&self, opts: &Opts) -> Result<SimDisk, String> {
        if opts.degraded.is_some() {
            return Err("--degraded needs a parity array (--spindles > 1)".into());
        }
        image::load(&opts.image, &image::geometry_for_mb(opts.size_mb)).map_err(|e| e.to_string())
    }

    fn create_blank(&self, opts: &Opts) -> Result<SimDisk, String> {
        Ok(image::create_blank(&image::geometry_for_mb(opts.size_mb)))
    }

    fn clock(dev: &SimDisk) -> Arc<Clock> {
        dev.clock().clone()
    }

    fn save(&self, opts: &Opts, dev: SimDisk) -> Result<(), String> {
        image::save(&opts.image, &dev).map_err(|e| e.to_string())
    }
}

/// Validates a `--degraded` spindle index against the array and, if
/// set, kills that spindle's media so reads reconstruct through parity.
fn apply_degraded(opts: &Opts, dev: &VolumeDisk) -> Result<(), String> {
    let Some(i) = opts.degraded else {
        return Ok(());
    };
    if !opts.policy.is_parity() {
        return Err(format!(
            "--degraded needs a parity policy; '{}' has no redundancy to read through",
            opts.policy
        ));
    }
    if i >= opts.spindles {
        return Err(format!(
            "--degraded {i}: no such spindle (array has {})",
            opts.spindles
        ));
    }
    dev.kill_spindle(i);
    Ok(())
}

/// Stocks `--hot-spare N` spares and arms the default fail-slow health
/// monitor on a parity mount, so an eviction during the command swaps a
/// spare in and rebuilds online — the production automation, available
/// from the CLI.
fn apply_hot_spares(opts: &Opts, dev: &VolumeDisk) -> Result<(), String> {
    if opts.hot_spares == 0 {
        return Ok(());
    }
    if !opts.policy.is_parity() {
        return Err(format!(
            "--hot-spare needs a parity policy; '{}' cannot rebuild a replacement",
            opts.policy
        ));
    }
    dev.set_health_policy(HealthPolicy::default());
    dev.set_hot_spares(opts.hot_spares);
    Ok(())
}

struct StripedImages;

impl Backing for StripedImages {
    type Dev = VolumeDisk;

    fn load(&self, opts: &Opts) -> Result<VolumeDisk, String> {
        let dev = image::load_striped(
            &opts.image,
            &image::geometry_for_mb(opts.size_mb),
            striped_config(opts)?,
        )
        .map_err(|e| e.to_string())?;
        apply_degraded(opts, &dev)?;
        apply_hot_spares(opts, &dev)?;
        Ok(dev)
    }

    fn create_blank(&self, opts: &Opts) -> Result<VolumeDisk, String> {
        Ok(image::create_blank_striped(
            &image::geometry_for_mb(opts.size_mb),
            striped_config(opts)?,
        ))
    }

    fn clock(dev: &VolumeDisk) -> Arc<Clock> {
        Arc::clone(dev.volume().borrow().clock())
    }

    fn save(&self, opts: &Opts, dev: VolumeDisk) -> Result<(), String> {
        image::save_striped(&opts.image, dev).map_err(|e| e.to_string())
    }
}

fn run() -> Result<(), String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first().cloned() else {
        return Err("missing subcommand".into());
    };
    let Some(opts) = parse(&args[1..]) else {
        return Err("bad arguments".into());
    };

    if command == "rebuild" {
        return cmd_rebuild(&opts);
    }
    if command == "status" {
        return cmd_status(&opts);
    }
    if opts.spindles == 1 {
        run_cmd(&command, &opts, SingleImage)
    } else {
        run_cmd(&command, &opts, StripedImages)
    }
}

/// `rebuild <image> --spindles N --policy <parity> --degraded I`:
/// reconstructs spindle I's entire image from the survivors (every
/// chunk row is the XOR of the same row on the other spindles) and
/// writes all backing images back healthy. The lost spindle's
/// `<image>.sI` file may hold stale bytes or not exist at all — its
/// content is never read.
fn cmd_rebuild(opts: &Opts) -> Result<(), String> {
    let Some(i) = opts.degraded else {
        return Err("rebuild: name the lost spindle with --degraded <i>".into());
    };
    if opts.spindles < 2 {
        return Err("rebuild: needs a parity array (--spindles > 1)".into());
    }
    // A missing replacement image is the expected case (the drive is
    // gone); materialize an empty file so the array loads, then let the
    // degraded mount treat it as dead.
    let paths = image::spindle_paths(&opts.image, opts.spindles);
    let lost = &paths[i.min(paths.len() - 1)];
    if !lost.exists() {
        std::fs::write(lost, []).map_err(|e| e.to_string())?;
    }
    let dev = StripedImages.load(opts)?; // applies the --degraded kill
    // Offline rebuild: no foreground to yield to, so disable the idle
    // gate and take big steps.
    dev.replace_spindle(
        i,
        RebuildPolicy::default()
            .with_idle_queue_depth(None)
            .with_max_step_rows(64),
    )
    .map_err(|e| e.to_string())?;
    let rows = dev
        .volume()
        .borrow()
        .rebuild()
        .map(|r| r.total_rows())
        .unwrap_or(0);
    loop {
        match dev.rebuild_step().map_err(|e| format!("rebuild: {e}"))? {
            RebuildProgress::Progress { .. } => {}
            RebuildProgress::Completed => break,
            RebuildProgress::Idle => return Err("rebuild: no rebuild in progress".into()),
        }
    }
    let mut settle = dev.clone();
    settle.flush().map_err(|e| format!("rebuild: {e}"))?;
    drop(settle);
    let chunk_kb = striped_config(opts)?.chunk_bytes as u64 / 1024;
    println!("rebuilt spindle {i}: {rows} chunk rows ({} KB) reconstructed from parity", rows * chunk_kb);
    image::save_striped(&opts.image, dev).map_err(|e| e.to_string())
}

/// `status <image> --spindles N [--policy P] [--degraded I] [--hot-spare N]`:
/// per-spindle serving state, the health monitor's verdict when one is
/// armed (`--hot-spare` arms it), and the observed/model service-time
/// inflation the verdict is based on.
fn cmd_status(opts: &Opts) -> Result<(), String> {
    if opts.spindles < 2 {
        if !opts.cache_stats {
            return Err(
                "status: needs a striped array (--spindles > 1); \
                 on a single image use --cache-stats"
                    .into(),
            );
        }
        let dev = SingleImage.load(opts)?;
        let clock = <SingleImage as Backing>::clock(&dev);
        let fs = Lfs::mount(dev, cli_config(opts), clock)
            .map_err(|e| format!("mount failed: {e}"))?;
        print!("{}", fs.cache_report().render());
        return Ok(());
    }
    let dev = StripedImages.load(opts)?;
    let vol = dev.volume().borrow();
    println!(
        "{} spindles, policy {}, {} hot spare(s) stocked",
        opts.spindles,
        opts.policy,
        vol.hot_spares()
    );
    for i in 0..opts.spindles {
        let serving = match vol.spindle_state(i) {
            SpindleState::Online => "online",
            SpindleState::Dead => "dead",
            SpindleState::Rebuilding => "rebuilding",
        };
        let verdict = match vol.health_state(i) {
            Some(HealthState::Healthy) => "healthy",
            Some(HealthState::Suspect) => "suspect",
            Some(HealthState::Evicted) => "evicted",
            None => "unmonitored",
        };
        match vol.health_inflation_millis(i) {
            Some(0) => println!("  spindle {i}: {serving:<10} {verdict:<11} inflation - (no samples)"),
            Some(m) => println!(
                "  spindle {i}: {serving:<10} {verdict:<11} inflation {}.{:03}x",
                m / 1000,
                m % 1000
            ),
            None => println!("  spindle {i}: {serving:<10} {verdict}"),
        }
    }
    drop(vol);
    if opts.cache_stats {
        let clock = <StripedImages as Backing>::clock(&dev);
        let fs = Lfs::mount(dev, cli_config(opts), clock)
            .map_err(|e| format!("mount failed: {e}"))?;
        print!("{}", fs.cache_report().render());
    }
    Ok(())
}

fn run_cmd<B: Backing>(command: &str, opts: &Opts, backing: B) -> Result<(), String> {
    let mount = |backing: &B| -> Result<Lfs<B::Dev>, String> {
        let dev = backing.load(opts)?;
        let clock = B::clock(&dev);
        Lfs::mount(dev, cli_config(opts), clock).map_err(|e| format!("mount failed: {e}"))
    };
    let save = |backing: &B, fs: Lfs<B::Dev>| -> Result<(), String> {
        if opts.degraded.is_some() {
            return Err(
                "refusing to write backing images from a degraded mount; \
                 run `lfs-tools rebuild` first"
                    .into(),
            );
        }
        backing.save(opts, fs.into_device())
    };

    match command {
        "mkfs" => {
            let disk = backing.create_blank(opts)?;
            let clock = B::clock(&disk);
            let fs = Lfs::format(disk, cli_config(opts), clock)
                .map_err(|e| format!("format failed: {e}"))?;
            println!(
                "formatted {}: {} segments of {} blocks",
                opts.image.display(),
                fs.superblock().nsegments,
                fs.superblock().seg_blocks
            );
            save(&backing, fs)
        }
        "fsck" => {
            let mut fs = mount(&backing)?;
            let report = fs.fsck().map_err(|e| format!("fsck failed: {e}"))?;
            println!("{report}");
            if opts.parallel != 1 {
                let stats = fs.stats();
                println!(
                    "parallel scan: {} reads overlapped, {} roll-forward partitions",
                    stats.recovery_parallel_reads, stats.recovery_partitions
                );
            }
            if report.is_clean() {
                Ok(())
            } else {
                Err(format!("{} error(s) found", report.errors.len()))
            }
        }
        "verify" => {
            let mut fs = mount(&backing)?;
            let report = fs.scrub().map_err(|e| format!("verify failed: {e}"))?;
            println!(
                "scrubbed {} segments: {} blocks verified, {} bad, \
                 {} relocated, {} unrecoverable, {} unreadable chunks",
                report.segments,
                report.blocks_verified,
                report.bad_blocks,
                report.relocated,
                report.unrecoverable,
                report.unreadable_chunks,
            );
            if opts.cache_stats {
                print!("{}", fs.cache_report().render());
            }
            if fs.is_read_only() {
                println!("volume degraded to read-only");
            }
            let clean = report.is_clean();
            if report.relocated > 0 {
                // The scrub rewrote damaged blocks at the log head and
                // checkpointed; persist the repaired image.
                save(&backing, fs)?;
                println!("relocations written back to {}", opts.image.display());
            }
            if clean {
                Ok(())
            } else {
                Err(format!(
                    "{} bad block(s), {} unrecoverable",
                    report.bad_blocks, report.unrecoverable
                ))
            }
        }
        "dumpfs" => {
            let mut disk = backing.load(opts)?;
            let mut out = std::io::stdout().lock();
            lfs_tools::dump::dump(&mut disk, &mut out, opts.verbose)
                .map_err(|e| format!("dump failed: {e}"))
        }
        "clean" => {
            let mut fs = mount(&backing)?;
            let before = fs.usage_table().clean_count();
            let after = fs
                .clean_until(opts.target)
                .map_err(|e| format!("cleaning failed: {e}"))?;
            println!("clean segments: {before} -> {after}");
            fs.sync().map_err(|e| format!("sync failed: {e}"))?;
            save(&backing, fs)
        }
        "df" => {
            let mut fs = mount(&backing)?;
            use lfs_core::layout::usage_block::SegState;
            let usage = fs.usage_table();
            let seg_kb = usage.seg_bytes() / 1024;
            let counts = |state: SegState| usage.segments_in_state(state).len();
            println!(
                "{} segments x {} KB; clean {}, dirty {}, clean-pending {}, active {}",
                usage.nsegments(),
                seg_kb,
                counts(SegState::Clean),
                counts(SegState::Dirty),
                counts(SegState::CleanPending),
                counts(SegState::Active),
            );
            let stats = fs.fs_stats().map_err(|e| format!("df: {e}"))?;
            println!(
                "live data: {} KB of {} KB ({:.1}% utilization), {} live inodes",
                stats.used_bytes / 1024,
                stats.capacity_bytes / 1024,
                stats.utilization() * 100.0,
                stats.live_inodes,
            );
            Ok(())
        }
        "stat" => {
            let mut fs = mount(&backing)?;
            let path = opts.rest.first().ok_or("stat: missing path")?;
            let ino = fs.lookup(path).map_err(|e| format!("stat: {e}"))?;
            let meta = fs.stat(ino).map_err(|e| format!("stat: {e}"))?;
            println!("{path}: {} {}", meta.kind, meta.ino);
            println!("  size {} B, nlink {}", meta.size, meta.nlink);
            println!(
                "  mtime {:.3}s atime {:.3}s (virtual)",
                meta.mtime_ns as f64 / 1e9,
                meta.atime_ns as f64 / 1e9
            );
            let entry = fs.inode_map().get(ino).map_err(|e| format!("stat: {e}"))?;
            println!(
                "  imap: version {}, inode at {} slot {}",
                entry.version, entry.addr, entry.slot
            );
            Ok(())
        }
        "ls" => {
            let mut fs = mount(&backing)?;
            let path = opts.rest.first().map(String::as_str).unwrap_or("/");
            let entries = fs.readdir(path).map_err(|e| format!("ls: {e}"))?;
            for entry in entries {
                let meta = fs.stat(entry.ino).map_err(|e| format!("stat: {e}"))?;
                println!(
                    "{:>10}  {:<4}  {}",
                    meta.size,
                    entry.kind.to_string(),
                    entry.name
                );
            }
            Ok(())
        }
        "cat" => {
            let mut fs = mount(&backing)?;
            let path = opts.rest.first().ok_or("cat: missing path")?;
            let data = fs.read_file(path).map_err(|e| format!("cat: {e}"))?;
            std::io::stdout()
                .write_all(&data)
                .map_err(|e| e.to_string())
        }
        "put" => {
            let mut fs = mount(&backing)?;
            let host = opts.rest.first().ok_or("put: missing host file")?;
            let path = opts.rest.get(1).ok_or("put: missing target path")?;
            let data = std::fs::read(host).map_err(|e| e.to_string())?;
            fs.write_file(path, &data)
                .map_err(|e| format!("put: {e}"))?;
            fs.sync().map_err(|e| format!("sync failed: {e}"))?;
            println!("wrote {} bytes to {path}", data.len());
            save(&backing, fs)
        }
        _ => Err(format!("unknown subcommand '{command}'")),
    }
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            if message == "missing subcommand" || message == "bad arguments" {
                return usage();
            }
            eprintln!("lfs-tools: {message}");
            ExitCode::FAILURE
        }
    }
}
