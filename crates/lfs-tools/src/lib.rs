#![warn(missing_docs)]

//! Library backing the `lfs-tools` command-line interface.

pub mod dump;
pub mod image;
