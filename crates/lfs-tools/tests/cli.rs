//! End-to-end tests of the `lfs-tools` command-line interface, driving
//! the real binary against image files in a temp directory.

use std::path::PathBuf;
use std::process::{Command, Output};

fn bin() -> &'static str {
    env!("CARGO_BIN_EXE_lfs-tools")
}

fn tmpdir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("lfs-tools-test-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn run(args: &[&str]) -> Output {
    Command::new(bin())
        .args(args)
        .output()
        .expect("spawn lfs-tools")
}

fn run_ok(args: &[&str]) -> String {
    let out = run(args);
    assert!(
        out.status.success(),
        "lfs-tools {args:?} failed:\nstdout: {}\nstderr: {}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8_lossy(&out.stdout).into_owned()
}

#[test]
fn mkfs_put_ls_cat_fsck_round_trip() {
    let dir = tmpdir("roundtrip");
    let image = dir.join("vol.img");
    let image = image.to_str().unwrap();

    let out = run_ok(&["mkfs", image, "--size-mb", "16"]);
    assert!(out.contains("formatted"), "{out}");

    let host_file = dir.join("input.txt");
    std::fs::write(&host_file, b"tools round trip\n").unwrap();
    let out = run_ok(&[
        "put",
        image,
        host_file.to_str().unwrap(),
        "/greeting",
        "--size-mb",
        "16",
    ]);
    assert!(out.contains("wrote 17 bytes"), "{out}");

    let out = run_ok(&["ls", image, "/", "--size-mb", "16"]);
    assert!(out.contains("greeting"), "{out}");

    let out = run_ok(&["cat", image, "/greeting", "--size-mb", "16"]);
    assert_eq!(out, "tools round trip\n");

    let out = run_ok(&["fsck", image, "--size-mb", "16"]);
    assert!(out.contains("clean"), "{out}");

    let out = run_ok(&["dumpfs", image, "--size-mb", "16"]);
    assert!(out.contains("superblock:"), "{out}");
    assert!(out.contains("checkpoint A"), "{out}");
    assert!(out.contains("segment 0"), "{out}");

    let out = run_ok(&["dumpfs", image, "--size-mb", "16", "-v"]);
    assert!(out.contains("inode block"), "{out}");
}

#[test]
fn df_and_stat_report() {
    let dir = tmpdir("dfstat");
    let image = dir.join("vol.img");
    let image = image.to_str().unwrap();
    run_ok(&["mkfs", image, "--size-mb", "16"]);
    let host = dir.join("h.txt");
    std::fs::write(&host, b"attr me").unwrap();
    run_ok(&[
        "put",
        image,
        host.to_str().unwrap(),
        "/target",
        "--size-mb",
        "16",
    ]);

    let out = run_ok(&["df", image, "--size-mb", "16"]);
    assert!(out.contains("segments x"), "{out}");
    assert!(out.contains("live data:"), "{out}");

    let out = run_ok(&["stat", image, "/target", "--size-mb", "16"]);
    assert!(out.contains("size 7 B"), "{out}");
    assert!(out.contains("imap: version"), "{out}");
    assert!(!run(&["stat", image, "/ghost", "--size-mb", "16"])
        .status
        .success());
}

#[test]
fn clean_reports_segment_counts() {
    let dir = tmpdir("clean");
    let image = dir.join("vol.img");
    let image = image.to_str().unwrap();
    run_ok(&["mkfs", image, "--size-mb", "16"]);
    let out = run_ok(&["clean", image, "--size-mb", "16", "--target", "4"]);
    assert!(out.contains("clean segments:"), "{out}");
}

#[test]
fn verify_scrubs_a_healthy_volume() {
    let dir = tmpdir("verify");
    let image = dir.join("vol.img");
    let image = image.to_str().unwrap();
    run_ok(&["mkfs", image, "--size-mb", "16"]);
    let host = dir.join("h.txt");
    std::fs::write(&host, b"verify me").unwrap();
    run_ok(&[
        "put",
        image,
        host.to_str().unwrap(),
        "/checked",
        "--size-mb",
        "16",
    ]);

    let out = run_ok(&["verify", image, "--size-mb", "16"]);
    assert!(out.contains("scrubbed"), "{out}");
    assert!(out.contains("0 bad"), "{out}");
    // A healthy volume verified some live blocks.
    assert!(!out.contains(" 0 blocks verified"), "{out}");
}

#[test]
fn verify_flags_bit_rot_in_the_image() {
    let dir = tmpdir("verify-rot");
    let image_path = dir.join("vol.img");
    let image = image_path.to_str().unwrap();
    run_ok(&["mkfs", image, "--size-mb", "16"]);
    let host = dir.join("h.txt");
    std::fs::write(&host, vec![0x77u8; 4096]).unwrap();
    run_ok(&[
        "put",
        image,
        host.to_str().unwrap(),
        "/rotting",
        "--size-mb",
        "16",
    ]);

    // Flip bytes somewhere in the log: find a 4096-byte run of 0x77 (the
    // file's data block) and corrupt the middle of it.
    let mut bytes = std::fs::read(&image_path).unwrap();
    let pos = bytes
        .windows(64)
        .position(|w| w.iter().all(|&b| b == 0x77))
        .expect("file data block in image");
    for b in &mut bytes[pos..pos + 32] {
        *b ^= 0xFF;
    }
    std::fs::write(&image_path, &bytes).unwrap();

    let out = run(&["verify", image, "--size-mb", "16"]);
    assert!(
        !out.status.success(),
        "verify must fail on a rotted image: {}",
        String::from_utf8_lossy(&out.stdout)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stdout.contains("scrubbed"), "{stdout}");
    assert!(stderr.contains("bad block"), "{stderr}");
}

/// `--spindles N` mounts a striped volume with one backing image per
/// spindle (`<image>.s0`, `<image>.s1`, …); the full round trip works
/// and the data really lands across both images.
#[test]
fn striped_mkfs_put_verify_round_trip() {
    let dir = tmpdir("striped");
    let image_path = dir.join("vol.img");
    let image = image_path.to_str().unwrap();

    let out = run_ok(&["mkfs", image, "--size-mb", "16", "--spindles", "2"]);
    assert!(out.contains("formatted"), "{out}");
    // One backing image per spindle; the flat image itself is never made.
    assert!(dir.join("vol.img.s0").exists());
    assert!(dir.join("vol.img.s1").exists());
    assert!(!image_path.exists());

    // Big enough (3 MB) that the log crosses several 1 MB stripe chunks
    // and demonstrably reaches the second spindle.
    let host = dir.join("h.txt");
    std::fs::write(&host, vec![0x5Au8; 3 << 20]).unwrap();
    let out = run_ok(&[
        "put",
        image,
        host.to_str().unwrap(),
        "/wide",
        "--size-mb",
        "16",
        "--spindles",
        "2",
    ]);
    assert!(out.contains("wrote 3145728 bytes"), "{out}");

    let out = run_ok(&["ls", image, "/", "--size-mb", "16", "--spindles", "2"]);
    assert!(out.contains("wide"), "{out}");
    let out = run_ok(&["cat", image, "/wide", "--size-mb", "16", "--spindles", "2"]);
    assert_eq!(out.len(), 3 << 20);

    let out = run_ok(&["fsck", image, "--size-mb", "16", "--spindles", "2"]);
    assert!(out.contains("clean"), "{out}");
    let out = run_ok(&["verify", image, "--size-mb", "16", "--spindles", "2"]);
    assert!(out.contains("0 bad"), "{out}");
    let out = run_ok(&["dumpfs", image, "--size-mb", "16", "--spindles", "2"]);
    assert!(out.contains("superblock:"), "{out}");

    // Both spindles carry live data: segment round-robin puts the
    // superblock/checkpoints on spindle 0 and spreads log segments, so
    // neither image may be all zeros.
    for s in ["vol.img.s0", "vol.img.s1"] {
        let bytes = std::fs::read(dir.join(s)).unwrap();
        assert!(
            bytes.iter().any(|&b| b != 0),
            "{s} is all zeros — striping never touched it"
        );
    }

    // A wrong spindle count must not mount as a healthy volume.
    let out = run(&["fsck", image, "--size-mb", "16", "--spindles", "3"]);
    assert!(!out.status.success(), "fsck with wrong spindle count must fail");
}

#[test]
fn status_reports_health_and_hot_spares() {
    let dir = tmpdir("status");
    let image = dir.join("vol.img");
    let image = image.to_str().unwrap();
    let base = ["--size-mb", "8", "--spindles", "3", "--policy", "parity-segment"];

    let args: Vec<&str> = ["mkfs", image].iter().chain(&base).copied().collect();
    run_ok(&args);

    // Unmonitored by default: serving state only.
    let args: Vec<&str> = ["status", image].iter().chain(&base).copied().collect();
    let out = run_ok(&args);
    assert!(out.contains("0 hot spare(s) stocked"), "{out}");
    assert!(out.contains("spindle 2: online     unmonitored"), "{out}");

    // --hot-spare arms the monitor and stocks the spare.
    let args: Vec<&str> = ["status", image]
        .iter()
        .chain(&base)
        .chain(&["--hot-spare", "1"])
        .copied()
        .collect();
    let out = run_ok(&args);
    assert!(out.contains("1 hot spare(s) stocked"), "{out}");
    assert!(out.contains("healthy"), "{out}");

    // A degraded mount shows the dead spindle.
    let args: Vec<&str> = ["status", image]
        .iter()
        .chain(&base)
        .chain(&["--degraded", "1"])
        .copied()
        .collect();
    let out = run_ok(&args);
    assert!(out.contains("spindle 1: dead"), "{out}");

    // Hot spares need redundancy to rebuild from.
    let out = run(&[
        "status", image, "--size-mb", "8", "--spindles", "3", "--hot-spare", "1",
    ]);
    assert!(!out.status.success(), "--hot-spare on rr-segment must fail");

    // status is an array command.
    let out = run(&["status", image, "--size-mb", "8"]);
    assert!(!out.status.success(), "status on a single image must fail");
}

/// `--cache-stats` on `verify` and `status` prints the memory manager's
/// report: policy, boundary, pool occupancy and traffic counters.
#[test]
fn cache_stats_reports_memory_manager() {
    let dir = tmpdir("cache-stats");
    let image = dir.join("vol.img");
    let image = image.to_str().unwrap();
    run_ok(&["mkfs", image, "--size-mb", "16"]);
    let host = dir.join("h.txt");
    std::fs::write(&host, vec![0x3Cu8; 64 * 1024]).unwrap();
    run_ok(&[
        "put",
        image,
        host.to_str().unwrap(),
        "/cached",
        "--size-mb",
        "16",
    ]);

    // verify --cache-stats: the report rides on the scrub summary. The
    // scrub reads chunks raw (below the block cache), so a fresh mount
    // legitimately shows a cold cache — the value here is the policy,
    // boundary and pool configuration of the mounted manager.
    let out = run_ok(&["verify", image, "--size-mb", "16", "--cache-stats"]);
    assert!(out.contains("scrubbed"), "{out}");
    assert!(out.contains("cache: policy=shared"), "{out}");
    assert!(out.contains("boundary: write target"), "{out}");
    assert!(out.contains("pools: dirty="), "{out}");
    assert!(out.contains("traffic: hits="), "{out}");

    // status --cache-stats works on a single image (the array report
    // needs spindles, the cache report does not)...
    let out = run_ok(&["status", image, "--size-mb", "16", "--cache-stats"]);
    assert!(out.contains("cache: policy="), "{out}");
    assert!(out.contains("flush efficiency:"), "{out}");

    // ...but plain single-image status still refuses.
    assert!(!run(&["status", image, "--size-mb", "16"]).status.success());

    // And on an array, status appends the cache report to the spindle
    // listing.
    let simg = dir.join("arr.img");
    let simg = simg.to_str().unwrap();
    run_ok(&["mkfs", simg, "--size-mb", "8", "--spindles", "2"]);
    let out = run_ok(&[
        "status",
        simg,
        "--size-mb",
        "8",
        "--spindles",
        "2",
        "--cache-stats",
    ]);
    assert!(out.contains("2 spindles"), "{out}");
    assert!(out.contains("cache: policy="), "{out}");
}

#[test]
fn bad_usage_exits_nonzero() {
    assert!(!run(&[]).status.success());
    assert!(!run(&["frobnicate", "/nonexistent.img"]).status.success());
    assert!(!run(&["cat"]).status.success());
    // Missing image file.
    assert!(!run(&["fsck", "/definitely/not/here.img"]).status.success());
}

#[test]
fn mounting_garbage_fails_cleanly() {
    let dir = tmpdir("garbage");
    let image = dir.join("junk.img");
    std::fs::write(&image, vec![0xAAu8; 1 << 20]).unwrap();
    let out = run(&["fsck", image.to_str().unwrap(), "--size-mb", "4"]);
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("mount failed"), "{stderr}");
}
