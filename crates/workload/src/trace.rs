//! File-system operation traces: record, serialise, and replay.
//!
//! The paper closes by noting that "the real test of a file system is its
//! performance over months and years of use" — which needs traces. This
//! module provides a plain-text trace format, a [`Recorder`] that wraps
//! any [`FileSystem`] and logs the operations flowing through it, and a
//! [`replay`] driver that applies a trace to any file system. Recorded
//! traces from one implementation can be replayed against another (or
//! against both, for A/B comparisons at trace fidelity).
//!
//! Format: one operation per line, fields separated by spaces, payloads
//! reproduced from a seed so traces stay compact:
//!
//! ```text
//! mkdir /a
//! create /a/f
//! write /a/f 0 4096 1234     # path offset len payload-seed
//! read /a/f 0 4096
//! truncate /a/f 100
//! rename /a/f /a/g
//! link /a/g /a/h
//! unlink /a/h
//! rmdir /a
//! sync
//! fsync /a/g
//! ```

use std::fmt::Write as _;

use vfs::{FileSystem, FsError, FsResult};

use crate::payload;

/// One traced operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceOp {
    /// Create a regular file.
    Create(String),
    /// Create a directory.
    Mkdir(String),
    /// Remove a file.
    Unlink(String),
    /// Remove an empty directory.
    Rmdir(String),
    /// Write `len` seeded bytes at `offset`.
    Write {
        /// Target path.
        path: String,
        /// Byte offset.
        offset: u64,
        /// Length in bytes.
        len: u32,
        /// Payload seed (regenerated at replay).
        seed: u64,
    },
    /// Read `len` bytes at `offset`.
    Read {
        /// Target path.
        path: String,
        /// Byte offset.
        offset: u64,
        /// Length in bytes.
        len: u32,
    },
    /// Set the file length.
    Truncate {
        /// Target path.
        path: String,
        /// New size.
        size: u64,
    },
    /// Rename a file or directory.
    Rename(String, String),
    /// Create a hard link.
    Link(String, String),
    /// Flush everything.
    Sync,
    /// Flush one file.
    Fsync(String),
}

impl TraceOp {
    /// Serialises the operation as one trace line.
    pub fn to_line(&self) -> String {
        let mut line = String::new();
        match self {
            TraceOp::Create(p) => write!(line, "create {p}").unwrap(),
            TraceOp::Mkdir(p) => write!(line, "mkdir {p}").unwrap(),
            TraceOp::Unlink(p) => write!(line, "unlink {p}").unwrap(),
            TraceOp::Rmdir(p) => write!(line, "rmdir {p}").unwrap(),
            TraceOp::Write {
                path,
                offset,
                len,
                seed,
            } => write!(line, "write {path} {offset} {len} {seed}").unwrap(),
            TraceOp::Read { path, offset, len } => {
                write!(line, "read {path} {offset} {len}").unwrap()
            }
            TraceOp::Truncate { path, size } => write!(line, "truncate {path} {size}").unwrap(),
            TraceOp::Rename(a, b) => write!(line, "rename {a} {b}").unwrap(),
            TraceOp::Link(a, b) => write!(line, "link {a} {b}").unwrap(),
            TraceOp::Sync => write!(line, "sync").unwrap(),
            TraceOp::Fsync(p) => write!(line, "fsync {p}").unwrap(),
        }
        line
    }

    /// Parses one trace line (comments after `#` and blank lines yield
    /// `None`).
    pub fn parse_line(line: &str) -> FsResult<Option<TraceOp>> {
        let line = line.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            return Ok(None);
        }
        let mut fields = line.split_whitespace();
        let op = fields.next().unwrap();
        let mut arg = || {
            fields
                .next()
                .ok_or(FsError::Corrupt("trace line missing field"))
        };
        let parsed = match op {
            "create" => TraceOp::Create(arg()?.to_string()),
            "mkdir" => TraceOp::Mkdir(arg()?.to_string()),
            "unlink" => TraceOp::Unlink(arg()?.to_string()),
            "rmdir" => TraceOp::Rmdir(arg()?.to_string()),
            "write" => TraceOp::Write {
                path: arg()?.to_string(),
                offset: parse_num(arg()?)?,
                len: parse_num(arg()?)? as u32,
                seed: parse_num(arg()?)?,
            },
            "read" => TraceOp::Read {
                path: arg()?.to_string(),
                offset: parse_num(arg()?)?,
                len: parse_num(arg()?)? as u32,
            },
            "truncate" => TraceOp::Truncate {
                path: arg()?.to_string(),
                size: parse_num(arg()?)?,
            },
            "rename" => TraceOp::Rename(arg()?.to_string(), arg()?.to_string()),
            "link" => TraceOp::Link(arg()?.to_string(), arg()?.to_string()),
            "sync" => TraceOp::Sync,
            "fsync" => TraceOp::Fsync(arg()?.to_string()),
            _ => return Err(FsError::Corrupt("unknown trace operation")),
        };
        Ok(Some(parsed))
    }

    /// Applies the operation to a file system.
    pub fn apply<F: FileSystem + ?Sized>(&self, fs: &mut F) -> FsResult<()> {
        match self {
            TraceOp::Create(p) => fs.create(p).map(|_| ()),
            TraceOp::Mkdir(p) => fs.mkdir(p).map(|_| ()),
            TraceOp::Unlink(p) => fs.unlink(p),
            TraceOp::Rmdir(p) => fs.rmdir(p),
            TraceOp::Write {
                path,
                offset,
                len,
                seed,
            } => {
                let ino = fs.lookup(path)?;
                let data = payload(*seed, *len as usize);
                let mut written = 0usize;
                while written < data.len() {
                    written += fs.write_at(ino, offset + written as u64, &data[written..])?;
                }
                Ok(())
            }
            TraceOp::Read { path, offset, len } => {
                let ino = fs.lookup(path)?;
                let mut buf = vec![0u8; *len as usize];
                fs.read_at(ino, *offset, &mut buf).map(|_| ())
            }
            TraceOp::Truncate { path, size } => {
                let ino = fs.lookup(path)?;
                fs.truncate(ino, *size)
            }
            TraceOp::Rename(a, b) => fs.rename(a, b),
            TraceOp::Link(a, b) => fs.link(a, b),
            TraceOp::Sync => fs.sync(),
            TraceOp::Fsync(p) => {
                let ino = fs.lookup(p)?;
                fs.fsync(ino)
            }
        }
    }
}

fn parse_num(s: &str) -> FsResult<u64> {
    s.parse().map_err(|_| FsError::Corrupt("bad trace number"))
}

/// Serialises a trace to text.
pub fn to_text(ops: &[TraceOp]) -> String {
    let mut out = String::new();
    for op in ops {
        out.push_str(&op.to_line());
        out.push('\n');
    }
    out
}

/// Parses a text trace.
pub fn from_text(text: &str) -> FsResult<Vec<TraceOp>> {
    let mut ops = Vec::new();
    for line in text.lines() {
        if let Some(op) = TraceOp::parse_line(line)? {
            ops.push(op);
        }
    }
    Ok(ops)
}

/// Statistics from a replay.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReplayOutcome {
    /// Operations that succeeded.
    pub succeeded: u64,
    /// Operations that returned an error (fine when replaying a trace
    /// recorded against different initial state).
    pub failed: u64,
}

/// Replays a trace against any file system. Errors from individual
/// operations are counted, not fatal — a trace may legitimately contain
/// operations that failed when recorded, too.
pub fn replay<F: FileSystem + ?Sized>(fs: &mut F, ops: &[TraceOp]) -> ReplayOutcome {
    let mut outcome = ReplayOutcome::default();
    for op in ops {
        match op.apply(fs) {
            Ok(()) => outcome.succeeded += 1,
            Err(_) => outcome.failed += 1,
        }
    }
    outcome
}

/// Wraps a [`FileSystem`], recording every operation that flows through.
///
/// Writes are recorded with a synthetic payload seed (traces replay with
/// deterministic — not identical — data, keeping trace files small).
#[derive(Debug)]
pub struct Recorder<F> {
    inner: F,
    ops: Vec<TraceOp>,
    next_seed: u64,
}

impl<F: FileSystem> Recorder<F> {
    /// Starts recording on top of `inner`.
    pub fn new(inner: F) -> Self {
        Self {
            inner,
            ops: Vec::new(),
            next_seed: 1,
        }
    }

    /// The operations recorded so far.
    pub fn ops(&self) -> &[TraceOp] {
        &self.ops
    }

    /// Stops recording and returns `(inner, trace)`.
    pub fn finish(self) -> (F, Vec<TraceOp>) {
        (self.inner, self.ops)
    }

    fn seed(&mut self) -> u64 {
        self.next_seed += 1;
        self.next_seed
    }

    /// Path of an inode is unknown at the trait level, so ino-based calls
    /// record under a reverse-lookup of the most recent path. To keep the
    /// recorder simple, it tracks the last path each ino resolved to.
    fn remember(&mut self, op: TraceOp) {
        self.ops.push(op);
    }
}

/// The recorder keeps a small (ino → path) map fed by path operations, so
/// ino-based data calls can be recorded as path-based trace lines.
#[derive(Debug, Default)]
struct PathMemory {
    entries: Vec<(vfs::Ino, String)>,
}

impl PathMemory {
    fn insert(&mut self, ino: vfs::Ino, path: &str) {
        self.entries.retain(|(i, _)| *i != ino);
        self.entries.push((ino, path.to_string()));
        if self.entries.len() > 4096 {
            self.entries.remove(0);
        }
    }

    fn get(&self, ino: vfs::Ino) -> Option<&str> {
        self.entries
            .iter()
            .rev()
            .find(|(i, _)| *i == ino)
            .map(|(_, p)| p.as_str())
    }
}

/// A recording wrapper with ino→path memory.
#[derive(Debug)]
pub struct TracingFs<F> {
    recorder: Recorder<F>,
    memory: PathMemory,
}

impl<F: FileSystem> TracingFs<F> {
    /// Starts tracing on top of `inner`.
    pub fn new(inner: F) -> Self {
        Self {
            recorder: Recorder::new(inner),
            memory: PathMemory::default(),
        }
    }

    /// Stops tracing and returns `(inner, trace)`.
    pub fn finish(self) -> (F, Vec<TraceOp>) {
        self.recorder.finish()
    }

    /// The operations recorded so far.
    pub fn ops(&self) -> &[TraceOp] {
        self.recorder.ops()
    }

    fn path_of(&self, ino: vfs::Ino) -> Option<String> {
        self.memory.get(ino).map(str::to_string)
    }
}

impl<F: FileSystem> FileSystem for TracingFs<F> {
    fn lookup(&mut self, path: &str) -> FsResult<vfs::Ino> {
        let ino = self.recorder.inner.lookup(path)?;
        self.memory.insert(ino, path);
        Ok(ino)
    }

    fn create(&mut self, path: &str) -> FsResult<vfs::Ino> {
        let ino = self.recorder.inner.create(path)?;
        self.memory.insert(ino, path);
        self.recorder.remember(TraceOp::Create(path.to_string()));
        Ok(ino)
    }

    fn mkdir(&mut self, path: &str) -> FsResult<vfs::Ino> {
        let ino = self.recorder.inner.mkdir(path)?;
        self.memory.insert(ino, path);
        self.recorder.remember(TraceOp::Mkdir(path.to_string()));
        Ok(ino)
    }

    fn unlink(&mut self, path: &str) -> FsResult<()> {
        self.recorder.inner.unlink(path)?;
        self.recorder.remember(TraceOp::Unlink(path.to_string()));
        Ok(())
    }

    fn rmdir(&mut self, path: &str) -> FsResult<()> {
        self.recorder.inner.rmdir(path)?;
        self.recorder.remember(TraceOp::Rmdir(path.to_string()));
        Ok(())
    }

    fn rename(&mut self, from: &str, to: &str) -> FsResult<()> {
        self.recorder.inner.rename(from, to)?;
        self.recorder
            .remember(TraceOp::Rename(from.to_string(), to.to_string()));
        Ok(())
    }

    fn link(&mut self, existing: &str, new: &str) -> FsResult<()> {
        self.recorder.inner.link(existing, new)?;
        self.recorder
            .remember(TraceOp::Link(existing.to_string(), new.to_string()));
        Ok(())
    }

    fn read_at(&mut self, ino: vfs::Ino, offset: u64, buf: &mut [u8]) -> FsResult<usize> {
        let n = self.recorder.inner.read_at(ino, offset, buf)?;
        if let Some(path) = self.path_of(ino) {
            self.recorder.remember(TraceOp::Read {
                path,
                offset,
                len: n as u32,
            });
        }
        Ok(n)
    }

    fn write_at(&mut self, ino: vfs::Ino, offset: u64, data: &[u8]) -> FsResult<usize> {
        let n = self.recorder.inner.write_at(ino, offset, data)?;
        if let Some(path) = self.path_of(ino) {
            let seed = self.recorder.seed();
            self.recorder.remember(TraceOp::Write {
                path,
                offset,
                len: n as u32,
                seed,
            });
        }
        Ok(n)
    }

    fn truncate(&mut self, ino: vfs::Ino, size: u64) -> FsResult<()> {
        self.recorder.inner.truncate(ino, size)?;
        if let Some(path) = self.path_of(ino) {
            self.recorder.remember(TraceOp::Truncate { path, size });
        }
        Ok(())
    }

    fn stat(&mut self, ino: vfs::Ino) -> FsResult<vfs::Metadata> {
        self.recorder.inner.stat(ino)
    }

    fn readdir(&mut self, path: &str) -> FsResult<Vec<vfs::DirEntry>> {
        self.recorder.inner.readdir(path)
    }

    fn fsync(&mut self, ino: vfs::Ino) -> FsResult<()> {
        self.recorder.inner.fsync(ino)?;
        if let Some(path) = self.path_of(ino) {
            self.recorder.remember(TraceOp::Fsync(path));
        }
        Ok(())
    }

    fn sync(&mut self) -> FsResult<()> {
        self.recorder.inner.sync()?;
        self.recorder.remember(TraceOp::Sync);
        Ok(())
    }

    fn drop_caches(&mut self) -> FsResult<()> {
        self.recorder.inner.drop_caches()
    }

    fn fs_stats(&mut self) -> FsResult<vfs::FsStats> {
        self.recorder.inner.fs_stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vfs::model::ModelFs;

    #[test]
    fn trace_text_round_trips() {
        let ops = vec![
            TraceOp::Mkdir("/d".into()),
            TraceOp::Create("/d/f".into()),
            TraceOp::Write {
                path: "/d/f".into(),
                offset: 0,
                len: 512,
                seed: 7,
            },
            TraceOp::Read {
                path: "/d/f".into(),
                offset: 100,
                len: 12,
            },
            TraceOp::Truncate {
                path: "/d/f".into(),
                size: 9,
            },
            TraceOp::Rename("/d/f".into(), "/d/g".into()),
            TraceOp::Link("/d/g".into(), "/d/h".into()),
            TraceOp::Fsync("/d/g".into()),
            TraceOp::Sync,
            TraceOp::Unlink("/d/h".into()),
            TraceOp::Rmdir("/x".into()),
        ];
        let text = to_text(&ops);
        assert_eq!(from_text(&text).unwrap(), ops);
    }

    #[test]
    fn parser_skips_comments_and_rejects_garbage() {
        let ops = from_text("# header\n\nmkdir /a # trailing\n").unwrap();
        assert_eq!(ops, vec![TraceOp::Mkdir("/a".into())]);
        assert!(from_text("explode /a").is_err());
        assert!(from_text("write /a zero 1 2").is_err());
        assert!(from_text("write /a 1").is_err());
    }

    #[test]
    fn recorded_trace_replays_to_identical_tree() {
        // Drive a tracing model FS, then replay the trace into a fresh one.
        let mut traced = TracingFs::new(ModelFs::new());
        traced.mkdir("/proj").unwrap();
        let ino = traced.create("/proj/file").unwrap();
        traced.write_at(ino, 0, &payload(2, 300)).unwrap();
        traced.truncate(ino, 120).unwrap();
        traced.rename("/proj/file", "/proj/renamed").unwrap();
        traced.sync().unwrap();
        let (original, ops) = traced.finish();

        let mut replayed = ModelFs::new();
        let outcome = replay(&mut replayed, &ops);
        assert_eq!(outcome.failed, 0);

        // Trees match structurally (contents differ only by payload seed,
        // and sizes must agree).
        let mut original = original;
        let a: Vec<_> = original.readdir("/proj").unwrap();
        let b: Vec<_> = replayed.readdir("/proj").unwrap();
        assert_eq!(a, b);
        let ia = original.lookup("/proj/renamed").unwrap();
        let ib = replayed.lookup("/proj/renamed").unwrap();
        assert_eq!(
            original.stat(ia).unwrap().size,
            replayed.stat(ib).unwrap().size
        );
    }

    #[test]
    fn replay_counts_failures_without_stopping() {
        let ops = vec![
            TraceOp::Mkdir("/a".into()),
            TraceOp::Unlink("/missing".into()),
            TraceOp::Create("/a/f".into()),
        ];
        let mut fs = ModelFs::new();
        let outcome = replay(&mut fs, &ops);
        assert_eq!(outcome.succeeded, 2);
        assert_eq!(outcome.failed, 1);
        assert!(fs.lookup("/a/f").is_ok());
    }
}
