//! The large-file workload of §5.2 (Figure 4).
//!
//! "The test consisted of five stages: writing a 100-megabyte file
//! sequentially, reading the file sequentially, writing 100 megabytes
//! randomly to the file, reading 100 megabytes randomly from the file,
//! and rereading the file sequentially again. The test program used an
//! eight-kilobyte request size."
//!
//! Note that the paper's random offsets are *not unique* — "the random
//! I/Os were not unique, thus allowing data to be overwritten in the file
//! cache" — so we also sample offsets with replacement.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use vfs::{FileSystem, FsResult, Ino};

use crate::payload;

/// Parameters of the large-file test.
#[derive(Debug, Clone)]
pub struct LargeFileSpec {
    /// Total bytes per stage.
    pub total_bytes: u64,
    /// Request size in bytes.
    pub request: usize,
    /// RNG seed for the random stages.
    pub seed: u64,
}

impl LargeFileSpec {
    /// The paper's configuration: 100 MB file, 8 KB requests.
    pub fn paper() -> Self {
        Self {
            total_bytes: 100 * 1024 * 1024,
            request: 8 * 1024,
            seed: 0xF164,
        }
    }

    /// A scaled-down variant for tests.
    pub fn scaled(total_bytes: u64, request: usize) -> Self {
        Self {
            total_bytes,
            request,
            seed: 0xF164,
        }
    }

    /// Number of requests per stage.
    pub fn nrequests(&self) -> u64 {
        self.total_bytes / self.request as u64
    }
}

/// Stage 1: sequential write of the whole file.
pub fn seq_write<F: FileSystem + ?Sized>(
    fs: &mut F,
    ino: Ino,
    spec: &LargeFileSpec,
) -> FsResult<()> {
    let data = payload(spec.seed, spec.request);
    for r in 0..spec.nrequests() {
        fs.write_at(ino, r * spec.request as u64, &data)?;
    }
    Ok(())
}

/// Stage 2/5: sequential read of the whole file.
pub fn seq_read<F: FileSystem + ?Sized>(
    fs: &mut F,
    ino: Ino,
    spec: &LargeFileSpec,
) -> FsResult<()> {
    let mut buf = vec![0u8; spec.request];
    for r in 0..spec.nrequests() {
        fs.read_at(ino, r * spec.request as u64, &mut buf)?;
    }
    Ok(())
}

/// Stage 3: random writes (offsets sampled with replacement).
pub fn rand_write<F: FileSystem + ?Sized>(
    fs: &mut F,
    ino: Ino,
    spec: &LargeFileSpec,
) -> FsResult<()> {
    let mut rng = StdRng::seed_from_u64(spec.seed);
    let data = payload(spec.seed ^ 0xDEAD, spec.request);
    let slots = spec.nrequests();
    for _ in 0..spec.nrequests() {
        let slot = rng.gen_range(0..slots);
        fs.write_at(ino, slot * spec.request as u64, &data)?;
    }
    Ok(())
}

/// Stage 4: random reads (offsets sampled with replacement).
pub fn rand_read<F: FileSystem + ?Sized>(
    fs: &mut F,
    ino: Ino,
    spec: &LargeFileSpec,
) -> FsResult<()> {
    let mut rng = StdRng::seed_from_u64(spec.seed ^ 0xBEEF);
    let mut buf = vec![0u8; spec.request];
    let slots = spec.nrequests();
    for _ in 0..spec.nrequests() {
        let slot = rng.gen_range(0..slots);
        fs.read_at(ino, slot * spec.request as u64, &mut buf)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use vfs::model::ModelFs;

    #[test]
    fn all_stages_run_against_the_model() {
        let mut fs = ModelFs::new();
        let spec = LargeFileSpec::scaled(64 * 1024, 4 * 1024);
        let ino = fs.create("/big").unwrap();
        seq_write(&mut fs, ino, &spec).unwrap();
        assert_eq!(fs.stat(ino).unwrap().size, 64 * 1024);
        seq_read(&mut fs, ino, &spec).unwrap();
        rand_write(&mut fs, ino, &spec).unwrap();
        // Random writes with replacement never grow the file.
        assert_eq!(fs.stat(ino).unwrap().size, 64 * 1024);
        rand_read(&mut fs, ino, &spec).unwrap();
        seq_read(&mut fs, ino, &spec).unwrap();
    }

    #[test]
    fn paper_spec_matches_section_5_2() {
        let spec = LargeFileSpec::paper();
        assert_eq!(spec.total_bytes, 100 * 1024 * 1024);
        assert_eq!(spec.request, 8192);
        assert_eq!(spec.nrequests(), 12_800);
    }

    #[test]
    fn random_stages_are_deterministic() {
        let mut a = ModelFs::new();
        let mut b = ModelFs::new();
        let spec = LargeFileSpec::scaled(32 * 1024, 1024);
        let ia = a.create("/f").unwrap();
        let ib = b.create("/f").unwrap();
        seq_write(&mut a, ia, &spec).unwrap();
        seq_write(&mut b, ib, &spec).unwrap();
        rand_write(&mut a, ia, &spec).unwrap();
        rand_write(&mut b, ib, &spec).unwrap();
        assert_eq!(a.read_file("/f").unwrap(), b.read_file("/f").unwrap());
    }
}
