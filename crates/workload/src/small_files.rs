//! The small-file workload of §5.1 (Figure 3).
//!
//! "The test consisted of creating 10 megabytes of small files, followed
//! by flushing the file cache and reading all the files from disk. After
//! reading all the files, they were deleted." Files are spread over
//! directories as in the office/engineering environment.

use vfs::{FileSystem, FsResult};

use crate::payload;

/// Parameters of the small-file test.
#[derive(Debug, Clone)]
pub struct SmallFileSpec {
    /// Number of files.
    pub nfiles: usize,
    /// Size of each file in bytes.
    pub file_size: usize,
    /// Files per directory.
    pub files_per_dir: usize,
    /// Payload seed.
    pub seed: u64,
    /// Tag inserted into every file name. Empty for single-client runs;
    /// multi-client runs tag each client's files (e.g. `"c007_"`) so many
    /// clients can churn the *same* directories without name collisions.
    pub tag: String,
}

impl SmallFileSpec {
    /// The paper's 1 KB configuration: 10 000 × 1 KB = 10 MB.
    pub fn paper_1k() -> Self {
        Self {
            nfiles: 10_000,
            file_size: 1024,
            files_per_dir: 100,
            seed: 0x1F5,
            tag: String::new(),
        }
    }

    /// The paper's 10 KB configuration: 1 000 × 10 KB = 10 MB.
    pub fn paper_10k() -> Self {
        Self {
            nfiles: 1_000,
            file_size: 10 * 1024,
            files_per_dir: 100,
            seed: 0x1F5,
            tag: String::new(),
        }
    }

    /// A scaled-down variant for tests.
    pub fn scaled(nfiles: usize, file_size: usize) -> Self {
        Self {
            nfiles,
            file_size,
            files_per_dir: 50,
            seed: 0x1F5,
            tag: String::new(),
        }
    }

    /// One client's slice of a shared-directory multi-client run.
    ///
    /// Every client uses the *same* single directory (`/sf0000`) with its
    /// client id tagged into each file name. Sharing one directory keeps
    /// the on-disk hot set (directory data, inode region) identical
    /// across client counts, so a scaling sweep measures concurrency —
    /// not allocator placement luck. The payload seed varies per client.
    pub fn for_client(client: usize, nfiles: usize, file_size: usize) -> Self {
        Self {
            nfiles,
            file_size,
            files_per_dir: usize::MAX,
            seed: 0x1F5 ^ (client as u64).wrapping_mul(0x9E37_79B9),
            tag: format!("c{client:03}_"),
        }
    }

    /// Path of file `i`.
    pub fn path(&self, i: usize) -> String {
        format!("/sf{:04}/{}f{:06}", i / self.files_per_dir, self.tag, i)
    }

    /// Path of directory `d` (see [`SmallFileSpec::ndirs`]).
    pub fn dir(&self, d: usize) -> String {
        format!("/sf{d:04}")
    }

    /// Number of directories used.
    pub fn ndirs(&self) -> usize {
        self.nfiles.div_ceil(self.files_per_dir)
    }
}

/// Create phase: makes the directories and writes every file.
///
/// A directory another client already created is fine — shared-directory
/// multi-client runs make the same `mkdir` calls from every client.
pub fn create_phase<F: FileSystem + ?Sized>(fs: &mut F, spec: &SmallFileSpec) -> FsResult<()> {
    for d in 0..spec.ndirs() {
        match fs.mkdir(&spec.dir(d)) {
            Ok(_) | Err(vfs::FsError::AlreadyExists) => {}
            Err(e) => return Err(e),
        }
    }
    let data = payload(spec.seed, spec.file_size);
    for i in 0..spec.nfiles {
        fs.write_file(&spec.path(i), &data)?;
    }
    Ok(())
}

/// Read phase: reads every file in creation order, verifying length.
pub fn read_phase<F: FileSystem + ?Sized>(fs: &mut F, spec: &SmallFileSpec) -> FsResult<()> {
    let mut buf = vec![0u8; spec.file_size];
    for i in 0..spec.nfiles {
        let ino = fs.lookup(&spec.path(i))?;
        let mut read = 0;
        while read < spec.file_size {
            let n = fs.read_at(ino, read as u64, &mut buf[read..])?;
            if n == 0 {
                return Err(vfs::FsError::Corrupt("small file shorter than written"));
            }
            read += n;
        }
    }
    Ok(())
}

/// Delete phase: unlinks every file.
pub fn delete_phase<F: FileSystem + ?Sized>(fs: &mut F, spec: &SmallFileSpec) -> FsResult<()> {
    for i in 0..spec.nfiles {
        fs.unlink(&spec.path(i))?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use vfs::model::ModelFs;

    #[test]
    fn phases_run_against_the_model() {
        let mut fs = ModelFs::new();
        let spec = SmallFileSpec::scaled(120, 256);
        create_phase(&mut fs, &spec).unwrap();
        assert_eq!(fs.readdir("/sf0000").unwrap().len(), 50);
        read_phase(&mut fs, &spec).unwrap();
        delete_phase(&mut fs, &spec).unwrap();
        assert!(fs.readdir("/sf0001").unwrap().is_empty());
    }

    #[test]
    fn per_client_specs_share_one_directory_without_collisions() {
        let a = SmallFileSpec::for_client(0, 10, 256);
        let b = SmallFileSpec::for_client(1, 10, 256);
        assert_eq!(a.ndirs(), 1);
        assert_eq!(a.dir(0), b.dir(0), "clients share the directory");
        assert_ne!(a.path(3), b.path(3), "file names are tagged per client");
        assert!(a.path(3).starts_with("/sf0000/"));
        assert_ne!(a.seed, b.seed, "payloads differ per client");

        // Both clients' phases run against one tree.
        let mut fs = ModelFs::new();
        create_phase(&mut fs, &a).unwrap();
        create_phase(&mut fs, &b).unwrap();
        assert_eq!(fs.readdir("/sf0000").unwrap().len(), 20);
        delete_phase(&mut fs, &a).unwrap();
        delete_phase(&mut fs, &b).unwrap();
    }

    #[test]
    fn paper_specs_total_ten_megabytes() {
        // "10000 one-kilobyte and 1000 ten-kilobyte files" — both total
        // the paper's "10 megabytes of small files".
        let k1 = SmallFileSpec::paper_1k();
        assert_eq!(k1.nfiles * k1.file_size, 10_000 * 1024);
        let k10 = SmallFileSpec::paper_10k();
        assert_eq!(k10.nfiles * k10.file_size, 10_000 * 1024);
    }

    #[test]
    fn paths_group_by_directory() {
        let spec = SmallFileSpec::scaled(100, 64);
        assert!(spec.path(0).starts_with("/sf0000/"));
        assert!(spec.path(50).starts_with("/sf0001/"));
        assert_eq!(spec.ndirs(), 2);
    }
}
