//! Hot/cold overwrite churn.
//!
//! The cleaner-policy comparisons (and the LFS follow-up literature) use
//! skewed update patterns: most overwrites hit a small hot set while a
//! large cold set sits mostly still. The skew is what gives age-aware
//! cleaning policies something to exploit — and what stresses greedy
//! ones.

use vfs::{FileSystem, FsResult};

use crate::payload;

/// Parameters of the hot/cold churn.
#[derive(Debug, Clone)]
pub struct HotColdSpec {
    /// Total files in the working set.
    pub nfiles: usize,
    /// Size of every file in bytes.
    pub file_size: usize,
    /// Fraction of the files that are "hot" (e.g. 0.2).
    pub hot_fraction: f64,
    /// Probability that an overwrite hits the hot set (e.g. 0.8).
    pub hot_bias: f64,
    /// Number of whole-file overwrites to perform.
    pub overwrites: usize,
    /// RNG seed.
    pub seed: u64,
}

impl HotColdSpec {
    /// The classic 80/20 skew.
    pub fn eighty_twenty(nfiles: usize, file_size: usize, overwrites: usize) -> Self {
        Self {
            nfiles,
            file_size,
            hot_fraction: 0.2,
            hot_bias: 0.8,
            overwrites,
            seed: 0x807_020,
        }
    }

    /// Path of file `i`.
    pub fn path(&self, i: usize) -> String {
        format!("/hc{i:05}")
    }

    fn hot_count(&self) -> usize {
        ((self.nfiles as f64 * self.hot_fraction) as usize).max(1)
    }
}

/// Creates the working set (call once before [`churn`]).
pub fn populate<F: FileSystem + ?Sized>(fs: &mut F, spec: &HotColdSpec) -> FsResult<()> {
    let data = payload(spec.seed, spec.file_size);
    for i in 0..spec.nfiles {
        fs.write_file(&spec.path(i), &data)?;
    }
    fs.sync()
}

/// Runs the skewed overwrite churn. Returns how many overwrites hit the
/// hot set.
pub fn churn<F: FileSystem + ?Sized>(fs: &mut F, spec: &HotColdSpec) -> FsResult<usize> {
    let hot = spec.hot_count();
    let data = payload(spec.seed ^ 0xC0FFEE, spec.file_size);
    let mut state = spec.seed | 1;
    let mut rng = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    let mut hot_hits = 0;
    for _ in 0..spec.overwrites {
        let r = rng();
        let target = if (r % 1_000) as f64 / 1_000.0 < spec.hot_bias {
            hot_hits += 1;
            (r / 1_024) as usize % hot
        } else {
            hot + (r / 1_024) as usize % (spec.nfiles - hot).max(1)
        };
        let path = spec.path(target);
        let ino = fs.lookup(&path)?;
        fs.truncate(ino, 0)?;
        let mut written = 0;
        while written < data.len() {
            written += fs.write_at(ino, written as u64, &data[written..])?;
        }
    }
    Ok(hot_hits)
}

#[cfg(test)]
mod tests {
    use super::*;
    use vfs::model::ModelFs;

    #[test]
    fn skew_is_roughly_honoured() {
        let mut fs = ModelFs::new();
        let spec = HotColdSpec::eighty_twenty(50, 256, 1_000);
        populate(&mut fs, &spec).unwrap();
        let hot_hits = churn(&mut fs, &spec).unwrap();
        let fraction = hot_hits as f64 / 1_000.0;
        assert!(
            (0.7..0.9).contains(&fraction),
            "hot fraction {fraction} should be near the 0.8 bias"
        );
        // All files still exist at the spec'd size.
        for i in 0..50 {
            let ino = fs.lookup(&spec.path(i)).unwrap();
            assert_eq!(fs.stat(ino).unwrap().size, 256);
        }
    }

    #[test]
    fn is_deterministic() {
        let run = || {
            let mut fs = ModelFs::new();
            let spec = HotColdSpec::eighty_twenty(20, 128, 200);
            populate(&mut fs, &spec).unwrap();
            churn(&mut fs, &spec).unwrap()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn degenerate_all_hot_works() {
        let mut fs = ModelFs::new();
        let spec = HotColdSpec {
            nfiles: 3,
            file_size: 64,
            hot_fraction: 1.0,
            hot_bias: 1.0,
            overwrites: 50,
            seed: 9,
        };
        populate(&mut fs, &spec).unwrap();
        assert_eq!(churn(&mut fs, &spec).unwrap(), 50);
    }
}
