//! An office/engineering workload generator (§3).
//!
//! The paper characterises the target environment as "a large number of
//! relatively small files (less than 8 kilobytes) whose contents are
//! accessed sequentially and in their entirety. The average file life
//! time is short, less than a day before it is overwritten or deleted."
//!
//! This generator maintains a working set of such files and issues a
//! seeded random mix of creates, whole-file overwrites, whole-file reads,
//! and deletes — the sustained workload the figures' one-shot tests do
//! not cover.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use vfs::{FileSystem, FsResult};

use crate::payload;

/// Parameters of the office workload.
#[derive(Debug, Clone)]
pub struct OfficeSpec {
    /// Total operations to issue.
    pub operations: usize,
    /// Target working-set size in files.
    pub working_set: usize,
    /// Maximum file size in bytes (paper: "less than 8 kilobytes").
    pub max_file_size: usize,
    /// Number of directories files are spread over.
    pub ndirs: usize,
    /// RNG seed.
    pub seed: u64,
}

impl OfficeSpec {
    /// A moderate default: 5 000 ops over a 200-file working set.
    pub fn default_mix() -> Self {
        Self {
            operations: 5_000,
            working_set: 200,
            max_file_size: 8 * 1024,
            ndirs: 10,
            seed: 0x0FF1CE,
        }
    }

    /// A scaled-down variant for tests.
    pub fn scaled(operations: usize, working_set: usize) -> Self {
        Self {
            operations,
            working_set,
            max_file_size: 2 * 1024,
            ndirs: 4,
            seed: 0x0FF1CE,
        }
    }
}

/// Counters from one run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OfficeOutcome {
    /// Files created.
    pub creates: u64,
    /// Whole-file overwrites.
    pub overwrites: u64,
    /// Whole-file reads.
    pub reads: u64,
    /// Files deleted.
    pub deletes: u64,
    /// Bytes written.
    pub bytes_written: u64,
    /// Bytes read.
    pub bytes_read: u64,
}

/// Runs the workload. Leaves the surviving working set in place.
pub fn run<F: FileSystem + ?Sized>(fs: &mut F, spec: &OfficeSpec) -> FsResult<OfficeOutcome> {
    let mut rng = StdRng::seed_from_u64(spec.seed);
    let mut outcome = OfficeOutcome::default();
    for d in 0..spec.ndirs {
        fs.mkdir(&format!("/office{d}"))?;
    }
    // Live files: (path, size).
    let mut live: Vec<(String, usize)> = Vec::new();
    let mut serial = 0u64;

    for _ in 0..spec.operations {
        let roll: f64 = rng.gen();
        // Below the working-set target, bias toward creation.
        let create_bias = if live.len() < spec.working_set {
            0.5
        } else {
            0.15
        };
        if roll < create_bias || live.is_empty() {
            let size = rng.gen_range(256..=spec.max_file_size);
            let dir = rng.gen_range(0..spec.ndirs);
            let path = format!("/office{dir}/doc{serial:07}");
            serial += 1;
            fs.write_file(&path, &payload(serial, size))?;
            outcome.creates += 1;
            outcome.bytes_written += size as u64;
            live.push((path, size));
        } else if roll < create_bias + 0.15 {
            // Delete: short lifetimes are the norm.
            let victim = rng.gen_range(0..live.len());
            let (path, _) = live.swap_remove(victim);
            fs.unlink(&path)?;
            outcome.deletes += 1;
        } else if roll < create_bias + 0.35 {
            // Overwrite in entirety (truncate + rewrite).
            let target = rng.gen_range(0..live.len());
            let size = rng.gen_range(256..=spec.max_file_size);
            let (path, stored) = &mut live[target];
            let ino = fs.lookup(path)?;
            fs.truncate(ino, 0)?;
            let data = payload(serial, size);
            serial += 1;
            let mut written = 0;
            while written < data.len() {
                written += fs.write_at(ino, written as u64, &data[written..])?;
            }
            *stored = size;
            outcome.overwrites += 1;
            outcome.bytes_written += size as u64;
        } else {
            // Read sequentially and in its entirety.
            let target = rng.gen_range(0..live.len());
            let (path, size) = live[target].clone();
            let data = fs.read_file(&path)?;
            if data.len() != size {
                return Err(vfs::FsError::Corrupt("office file has wrong length"));
            }
            outcome.reads += 1;
            outcome.bytes_read += size as u64;
        }
    }
    Ok(outcome)
}

#[cfg(test)]
mod tests {
    use super::*;
    use vfs::model::ModelFs;

    #[test]
    fn runs_against_the_model() {
        let mut fs = ModelFs::new();
        let outcome = run(&mut fs, &OfficeSpec::scaled(500, 30)).unwrap();
        assert!(outcome.creates > 0);
        assert!(outcome.deletes > 0);
        assert!(outcome.reads > 0);
        assert!(outcome.overwrites > 0);
        assert!(outcome.bytes_written > outcome.deletes);
    }

    #[test]
    fn is_deterministic() {
        let mut a = ModelFs::new();
        let mut b = ModelFs::new();
        let spec = OfficeSpec::scaled(300, 20);
        assert_eq!(run(&mut a, &spec).unwrap(), run(&mut b, &spec).unwrap());
        // And the resulting trees match.
        assert_eq!(
            a.readdir("/office0").unwrap().len(),
            b.readdir("/office0").unwrap().len()
        );
    }
}
