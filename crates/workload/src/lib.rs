#![warn(missing_docs)]

//! Workload generators for the paper's evaluation (§5).
//!
//! Every generator drives any [`vfs::FileSystem`], so each experiment runs
//! identically against LFS and the FFS baseline. Timing uses the shared
//! virtual [`sim_disk::Clock`] via [`Stopwatch`].
//!
//! # Examples
//!
//! ```
//! use vfs::model::ModelFs;
//! use workload::small_files::{create_phase, read_phase, SmallFileSpec};
//!
//! let mut fs = ModelFs::new();
//! let spec = SmallFileSpec::scaled(100, 1024);
//! create_phase(&mut fs, &spec).unwrap();
//! read_phase(&mut fs, &spec).unwrap();
//! ```

pub mod hotcold;
pub mod large_file;
pub mod office;
pub mod small_files;
pub mod trace;
pub mod utilization;

use std::sync::Arc;

use sim_disk::Clock;

/// Measures virtual elapsed time over the shared clock.
#[derive(Debug)]
pub struct Stopwatch {
    clock: Arc<Clock>,
    start_ns: u64,
}

impl Stopwatch {
    /// Starts measuring now.
    pub fn start(clock: Arc<Clock>) -> Self {
        let start_ns = clock.now_ns();
        Self { clock, start_ns }
    }

    /// Virtual seconds since start.
    pub fn elapsed_secs(&self) -> f64 {
        (self.clock.now_ns() - self.start_ns) as f64 / 1e9
    }

    /// Virtual nanoseconds since start.
    pub fn elapsed_ns(&self) -> u64 {
        self.clock.now_ns() - self.start_ns
    }

    /// Restarts the stopwatch and returns the previous elapsed seconds.
    pub fn lap_secs(&mut self) -> f64 {
        let elapsed = self.elapsed_secs();
        self.start_ns = self.clock.now_ns();
        elapsed
    }
}

/// Deterministic pseudo-random payload of `len` bytes.
pub fn payload(seed: u64, len: usize) -> Vec<u8> {
    // A small xorshift keeps payload generation cheap and reproducible
    // without threading an RNG through every call site.
    let mut state = seed | 1;
    (0..len)
        .map(|_| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state as u8
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stopwatch_tracks_virtual_time() {
        let clock = Clock::new();
        let mut watch = Stopwatch::start(Arc::clone(&clock));
        clock.advance_ns(2_500_000_000);
        assert!((watch.elapsed_secs() - 2.5).abs() < 1e-9);
        assert!((watch.lap_secs() - 2.5).abs() < 1e-9);
        assert_eq!(watch.elapsed_ns(), 0);
    }

    #[test]
    fn payload_is_deterministic_and_seed_sensitive() {
        assert_eq!(payload(1, 64), payload(1, 64));
        assert_ne!(payload(1, 64), payload(2, 64));
        assert_eq!(payload(9, 100).len(), 100);
    }
}
