//! Point-in-time cache reports for tools and benches.

use block_cache::CacheStats;

use crate::config::CachePolicy;

/// Per-client working-set accounting.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ClientUsage {
    /// Lookups by this client that found the block cached.
    pub hits: u64,
    /// Lookups by this client that missed.
    pub misses: u64,
    /// Misses by this client that landed on a ghost entry.
    pub ghost_hits: u64,
    /// Blocks currently charged to this client.
    pub resident_blocks: u64,
}

impl ClientUsage {
    /// Hit rate in milli-units (hits * 1000 / lookups), 0 when idle.
    pub fn hit_rate_millis(&self) -> u64 {
        (self.hits * 1000)
            .checked_div(self.hits + self.misses)
            .unwrap_or(0)
    }
}

/// A point-in-time report of the manager's pools, boundary, counters and
/// per-client charges — what `lfs-tools --cache-stats` prints.
#[derive(Debug, Clone)]
pub struct CacheReport {
    /// Active replacement policy.
    pub policy: CachePolicy,
    /// Block size in bytes.
    pub block_size: usize,
    /// Total memory budget in blocks.
    pub capacity_blocks: usize,
    /// Write-buffer boundary: dirty blocks at/above this trigger a flush.
    /// Under shared LRU this is the legacy dirty high-water mark.
    pub write_target_blocks: usize,
    /// Read-pool budget (capacity minus boundary; the whole capacity
    /// under shared LRU, where clean blocks are only bounded by total).
    pub read_target_blocks: usize,
    /// Current dirty (write-buffer) blocks.
    pub dirty_blocks: usize,
    /// Current clean blocks.
    pub clean_blocks: usize,
    /// Clean blocks on probation (first touch, not yet re-referenced).
    pub probation_blocks: usize,
    /// Clean blocks in the protected pool (re-referenced).
    pub protected_blocks: usize,
    /// Ghost entries (evicted keys still remembered).
    pub ghost_blocks: usize,
    /// Hit/miss/eviction counters.
    pub stats: CacheStats,
    /// Misses that landed on a ghost entry.
    pub ghost_hits: u64,
    /// Probation-to-protected promotions.
    pub promotions: u64,
    /// Times the adaptive boundary moved.
    pub boundary_moves: u64,
    /// Last observed flush efficiency: bytes flushed per segment write,
    /// in milli-units of the flush unit (1000 = perfectly full segments).
    pub flush_eff_millis: u64,
    /// Per-client usage, sorted by client id.
    pub clients: Vec<(u32, ClientUsage)>,
}

impl CacheReport {
    /// Overall hit rate in milli-units.
    pub fn hit_rate_millis(&self) -> u64 {
        (self.stats.hits * 1000)
            .checked_div(self.stats.hits + self.stats.misses)
            .unwrap_or(0)
    }

    /// Renders the multi-line human-readable report.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "cache: policy={} capacity={} blocks x {} B\n",
            self.policy.as_str(),
            self.capacity_blocks,
            self.block_size
        ));
        out.push_str(&format!(
            "  boundary: write target {} / read target {} (moved {} times)\n",
            self.write_target_blocks, self.read_target_blocks, self.boundary_moves
        ));
        out.push_str(&format!(
            "  pools: dirty={} clean={} (probation={} protected={}) ghost={}\n",
            self.dirty_blocks,
            self.clean_blocks,
            self.probation_blocks,
            self.protected_blocks,
            self.ghost_blocks
        ));
        out.push_str(&format!(
            "  traffic: hits={} misses={} ({}.{:01}% hit) evictions={} ghost-hits={} promotions={}\n",
            self.stats.hits,
            self.stats.misses,
            self.hit_rate_millis() / 10,
            self.hit_rate_millis() % 10,
            self.stats.evictions,
            self.ghost_hits,
            self.promotions
        ));
        out.push_str(&format!(
            "  flush efficiency: {}.{:03} of flush unit\n",
            self.flush_eff_millis / 1000,
            self.flush_eff_millis % 1000
        ));
        if self.clients.is_empty() {
            out.push_str("  clients: (none attributed)\n");
        } else {
            out.push_str("  clients:\n");
            for (id, usage) in &self.clients {
                out.push_str(&format!(
                    "    c{:03}: resident={} hits={} misses={} ghost-hits={} ({}.{:01}% hit)\n",
                    id,
                    usage.resident_blocks,
                    usage.hits,
                    usage.misses,
                    usage.ghost_hits,
                    usage.hit_rate_millis() / 10,
                    usage.hit_rate_millis() % 10
                ));
            }
        }
        out
    }
}
