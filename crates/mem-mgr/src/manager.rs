//! The memory manager proper.

use std::collections::{BTreeMap, HashMap};

use block_cache::{BlockKey, CacheStats, Owner, WritebackPolicy, WritebackTrigger};

use crate::config::{CachePolicy, FlushCause, MemConfig};
use crate::ghost::GhostList;
use crate::report::{CacheReport, ClientUsage};

/// Sentinel index terminating the intrusive lists.
const NIL: u32 = u32::MAX;

/// Flush reports per tuning decision.
const TUNE_WINDOW: u32 = 4;

/// Which pool a resident block lives in. Under [`CachePolicy::SharedLru`]
/// every block (clean or dirty) lives on the `Protected` list, which then
/// acts as the single legacy LRU.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Pool {
    Write,
    Probation,
    Protected,
}

#[derive(Debug)]
struct Slot {
    key: BlockKey,
    data: Box<[u8]>,
    dirty: bool,
    /// Virtual time at which the block first became dirty (ns).
    dirty_since_ns: u64,
    /// Client charged for this block's memory (the faulting/writing one).
    client: Option<u32>,
    pool: Pool,
    prev: u32,
    next: u32,
}

/// An intrusive doubly-linked list over the slot slab. `head` is the MRU
/// (hot) end, `tail` the LRU (cold) end.
#[derive(Debug, Clone, Copy)]
struct List {
    head: u32,
    tail: u32,
    len: usize,
}

impl List {
    const fn new() -> Self {
        List {
            head: NIL,
            tail: NIL,
            len: 0,
        }
    }
}

fn live(slots: &mut [Option<Slot>], idx: u32) -> &mut Slot {
    slots[idx as usize].as_mut().expect("live slot")
}

fn link_front(list: &mut List, slots: &mut [Option<Slot>], idx: u32) {
    let head = list.head;
    {
        let slot = live(slots, idx);
        slot.prev = NIL;
        slot.next = head;
    }
    if head != NIL {
        live(slots, head).prev = idx;
    } else {
        list.tail = idx;
    }
    list.head = idx;
    list.len += 1;
}

fn link_back(list: &mut List, slots: &mut [Option<Slot>], idx: u32) {
    let tail = list.tail;
    {
        let slot = live(slots, idx);
        slot.next = NIL;
        slot.prev = tail;
    }
    if tail != NIL {
        live(slots, tail).next = idx;
    } else {
        list.head = idx;
    }
    list.tail = idx;
    list.len += 1;
}

fn unlink(list: &mut List, slots: &mut [Option<Slot>], idx: u32) {
    let (prev, next) = {
        let slot = live(slots, idx);
        (slot.prev, slot.next)
    };
    if prev != NIL {
        live(slots, prev).next = next;
    } else {
        list.head = next;
    }
    if next != NIL {
        live(slots, next).prev = prev;
    } else {
        list.tail = prev;
    }
    list.len -= 1;
}

/// Registry-backed mirrors of the manager's counters and pool gauges.
#[derive(Debug, Clone, Default)]
struct CoreObs {
    hits: obs::Counter,
    misses: obs::Counter,
    evictions: obs::Counter,
    ghost_hits: obs::Counter,
    promotions: obs::Counter,
    boundary_moves: obs::Counter,
    flush_bytes: obs::Counter,
    flush_chunk_writes: obs::Counter,
    write_target_blocks: obs::Gauge,
    read_target_blocks: obs::Gauge,
    dirty_blocks: obs::Gauge,
    clean_blocks: obs::Gauge,
    probation_blocks: obs::Gauge,
    protected_blocks: obs::Gauge,
    ghost_blocks: obs::Gauge,
    flush_eff_millis: obs::Gauge,
}

impl CoreObs {
    fn rehome(&mut self, registry: &obs::Registry) {
        self.hits = registry.adopt_counter("cache.hits", &self.hits);
        self.misses = registry.adopt_counter("cache.misses", &self.misses);
        self.evictions = registry.adopt_counter("cache.evictions", &self.evictions);
        self.ghost_hits = registry.adopt_counter("cache.ghost_hits", &self.ghost_hits);
        self.promotions = registry.adopt_counter("cache.promotions", &self.promotions);
        self.boundary_moves = registry.adopt_counter("cache.boundary_moves", &self.boundary_moves);
        self.flush_bytes = registry.adopt_counter("cache.flush_bytes", &self.flush_bytes);
        self.flush_chunk_writes =
            registry.adopt_counter("cache.flush_chunk_writes", &self.flush_chunk_writes);
        self.write_target_blocks =
            registry.adopt_gauge("cache.write_target_blocks", &self.write_target_blocks);
        self.read_target_blocks =
            registry.adopt_gauge("cache.read_target_blocks", &self.read_target_blocks);
        self.dirty_blocks = registry.adopt_gauge("cache.dirty_blocks", &self.dirty_blocks);
        self.clean_blocks = registry.adopt_gauge("cache.clean_blocks", &self.clean_blocks);
        self.probation_blocks =
            registry.adopt_gauge("cache.probation_blocks", &self.probation_blocks);
        self.protected_blocks =
            registry.adopt_gauge("cache.protected_blocks", &self.protected_blocks);
        self.ghost_blocks = registry.adopt_gauge("cache.ghost_blocks", &self.ghost_blocks);
        self.flush_eff_millis =
            registry.adopt_gauge("cache.flush_eff_millis", &self.flush_eff_millis);
    }
}

/// Per-client instrument handles (`cache.client.<id>.*`).
#[derive(Debug, Clone, Default)]
struct ClientObs {
    hits: obs::Counter,
    misses: obs::Counter,
    ghost_hits: obs::Counter,
    resident_blocks: obs::Gauge,
}

impl ClientObs {
    fn rehome(&mut self, registry: &obs::Registry, id: u32) {
        self.hits = registry.adopt_counter(&format!("cache.client.{id:03}.hits"), &self.hits);
        self.misses = registry.adopt_counter(&format!("cache.client.{id:03}.misses"), &self.misses);
        self.ghost_hits =
            registry.adopt_counter(&format!("cache.client.{id:03}.ghost_hits"), &self.ghost_hits);
        self.resident_blocks = registry.adopt_gauge(
            &format!("cache.client.{id:03}.resident_blocks"),
            &self.resident_blocks,
        );
    }
}

/// The split write-buffer / read-cache memory manager.
///
/// See the crate docs for the design. The public surface is a strict
/// superset of the legacy `block_cache::BlockCache`, so the file systems
/// swap in behind the same `BlockKey`/`Owner` seams.
#[derive(Debug)]
pub struct MemMgr {
    map: HashMap<BlockKey, u32>,
    slots: Vec<Option<Slot>>,
    free: Vec<u32>,
    /// Dirty blocks (adaptive mode only).
    write_list: List,
    /// First-touch clean blocks (adaptive); unused under shared LRU.
    probation: List,
    /// Re-referenced clean blocks (adaptive); the single legacy LRU list
    /// (clean *and* dirty) under shared LRU.
    protected: List,
    block_size: usize,
    capacity_blocks: usize,
    config: MemConfig,
    stats: CacheStats,
    /// Minimum `dirty_since_ns` over all dirty blocks (u64::MAX when
    /// none). Reset only when the dirty count hits zero — same
    /// conservative rule as the legacy cache, so the age trigger can fire
    /// early but never late.
    oldest_dirty_ns: u64,
    dirty_count: usize,
    ghost: GhostList,
    ghost_hits: u64,
    promotions: u64,
    boundary_moves: u64,
    flush_eff_millis: u64,
    /// The boundary: dirty blocks at/above this trigger a flush. Under
    /// shared LRU this is the fixed legacy high-water mark.
    write_target: usize,
    min_write: usize,
    max_write: usize,
    step: usize,
    win_flushes: u32,
    win_ghost_hits: u64,
    win_waste_chunks: u64,
    active_client: Option<u32>,
    clients: BTreeMap<u32, ClientUsage>,
    client_obs: BTreeMap<u32, ClientObs>,
    registry: Option<obs::Registry>,
    obs: CoreObs,
}

impl MemMgr {
    /// Creates a manager holding up to `capacity_blocks` blocks of
    /// `block_size` bytes.
    ///
    /// # Panics
    ///
    /// Panics if either parameter is zero.
    pub fn new(block_size: usize, capacity_blocks: usize, config: MemConfig) -> Self {
        assert!(block_size > 0, "block size must be positive");
        assert!(capacity_blocks > 0, "capacity must be positive");
        let min_write = (capacity_blocks / 16).max(1);
        let max_write = capacity_blocks
            .saturating_sub((capacity_blocks / 8).max(1))
            .max(min_write);
        let high_water =
            ((capacity_blocks as f64 * config.writeback.dirty_high_water) as usize).max(1);
        let write_target = match config.policy {
            CachePolicy::SharedLru => high_water,
            CachePolicy::Adaptive => high_water.clamp(min_write, max_write),
        };
        let mgr = Self {
            map: HashMap::new(),
            slots: Vec::new(),
            free: Vec::new(),
            write_list: List::new(),
            probation: List::new(),
            protected: List::new(),
            block_size,
            capacity_blocks,
            config,
            stats: CacheStats::default(),
            oldest_dirty_ns: u64::MAX,
            dirty_count: 0,
            // ARC-style ghost depth: remember up to twice the resident
            // capacity in evicted keys, so a working-set block whose
            // re-touch interval exceeds its probation lifetime (e.g.
            // under a streaming scan) can still earn promotion on its
            // second miss. Entries are key-sized — a few per-cent
            // overhead against block-sized residents.
            ghost: GhostList::new(capacity_blocks * 2),
            ghost_hits: 0,
            promotions: 0,
            boundary_moves: 0,
            flush_eff_millis: 0,
            write_target,
            min_write,
            max_write,
            step: (capacity_blocks / 32).max(1),
            win_flushes: 0,
            win_ghost_hits: 0,
            win_waste_chunks: 0,
            active_client: None,
            clients: BTreeMap::new(),
            client_obs: BTreeMap::new(),
            registry: None,
            obs: CoreObs::default(),
        };
        mgr.publish_gauges();
        mgr
    }

    /// Re-homes all instruments into a shared [`obs::Registry`]; counts
    /// accumulated so far are carried over.
    pub fn attach_obs(&mut self, registry: &obs::Registry) {
        self.obs.rehome(registry);
        for (id, cobs) in self.client_obs.iter_mut() {
            cobs.rehome(registry, *id);
        }
        self.registry = Some(registry.clone());
        self.publish_gauges();
    }

    /// Block size in bytes.
    pub fn block_size(&self) -> usize {
        self.block_size
    }

    /// Capacity in blocks.
    pub fn capacity_blocks(&self) -> usize {
        self.capacity_blocks
    }

    /// Number of cached blocks (clean + dirty).
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Returns true if nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Number of dirty blocks.
    pub fn dirty_count(&self) -> usize {
        self.dirty_count
    }

    /// Number of clean blocks.
    pub fn clean_count(&self) -> usize {
        self.map.len() - self.dirty_count
    }

    /// Hit/miss/eviction counters.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// The active write-back policy.
    pub fn policy(&self) -> WritebackPolicy {
        self.config.writeback
    }

    /// The active replacement policy.
    pub fn cache_policy(&self) -> CachePolicy {
        self.config.policy
    }

    /// Current write-buffer boundary in blocks.
    pub fn write_target(&self) -> usize {
        self.write_target
    }

    /// Misses that landed on a ghost entry so far.
    pub fn ghost_hits(&self) -> u64 {
        self.ghost_hits
    }

    /// Times the adaptive boundary has moved.
    pub fn boundary_moves(&self) -> u64 {
        self.boundary_moves
    }

    /// Sets the client subsequent accesses are attributed to (hit/miss
    /// counters) and charged for (resident blocks they fault or write).
    pub fn set_client(&mut self, client: Option<u32>) {
        self.active_client = client;
    }

    // ---- accounting helpers -------------------------------------------

    fn client_obs_handle(&mut self, id: u32) -> Option<&ClientObs> {
        if id >= self.config.per_client_obs_max {
            return None;
        }
        if !self.client_obs.contains_key(&id) {
            let mut cobs = ClientObs::default();
            if let Some(registry) = &self.registry {
                cobs.rehome(registry, id);
            }
            self.client_obs.insert(id, cobs);
        }
        self.client_obs.get(&id)
    }

    fn note_hit(&mut self) {
        self.stats.hits += 1;
        self.obs.hits.inc();
        if let Some(c) = self.active_client {
            self.clients.entry(c).or_default().hits += 1;
            if let Some(cobs) = self.client_obs_handle(c) {
                cobs.hits.inc();
            }
        }
    }

    fn note_miss(&mut self, key: BlockKey) {
        self.stats.misses += 1;
        self.obs.misses.inc();
        let ghosted = self.config.policy == CachePolicy::Adaptive && self.ghost.lookup(key).is_some();
        if ghosted {
            self.ghost_hits += 1;
            self.win_ghost_hits += 1;
            self.obs.ghost_hits.inc();
        }
        if let Some(c) = self.active_client {
            let usage = self.clients.entry(c).or_default();
            usage.misses += 1;
            if ghosted {
                usage.ghost_hits += 1;
            }
            if let Some(cobs) = self.client_obs_handle(c) {
                cobs.misses.inc();
                if ghosted {
                    cobs.ghost_hits.inc();
                }
            }
        }
    }

    fn charge(&mut self, client: Option<u32>, delta: i64) {
        if let Some(c) = client {
            let usage = self.clients.entry(c).or_default();
            usage.resident_blocks = (usage.resident_blocks as i64 + delta).max(0) as u64;
            let resident = usage.resident_blocks;
            if let Some(cobs) = self.client_obs_handle(c) {
                cobs.resident_blocks.set(resident);
            }
        }
    }

    /// Moves the memory charge for a slot to the active client.
    fn retag(&mut self, idx: u32) {
        let old = self.slots[idx as usize].as_ref().expect("live slot").client;
        let new = self.active_client;
        if old != new {
            self.charge(old, -1);
            self.charge(new, 1);
            live(&mut self.slots, idx).client = new;
        }
    }

    fn publish_gauges(&self) {
        let (wt, rt, prob, prot) = match self.config.policy {
            CachePolicy::SharedLru => {
                (self.write_target as u64, self.capacity_blocks as u64, 0, 0)
            }
            CachePolicy::Adaptive => (
                self.write_target as u64,
                (self.capacity_blocks - self.write_target) as u64,
                self.probation.len as u64,
                self.protected.len as u64,
            ),
        };
        self.obs.write_target_blocks.set(wt);
        self.obs.read_target_blocks.set(rt);
        self.obs.dirty_blocks.set(self.dirty_count as u64);
        self.obs.clean_blocks.set(self.clean_count() as u64);
        self.obs.probation_blocks.set(prob);
        self.obs.protected_blocks.set(prot);
        self.obs.ghost_blocks.set(self.ghost.len() as u64);
    }

    // ---- list plumbing -------------------------------------------------

    fn unlink_from(&mut self, pool: Pool, idx: u32) {
        let Self {
            write_list,
            probation,
            protected,
            slots,
            ..
        } = self;
        let list = match pool {
            Pool::Write => write_list,
            Pool::Probation => probation,
            Pool::Protected => protected,
        };
        unlink(list, slots, idx);
    }

    fn link_front_to(&mut self, pool: Pool, idx: u32) {
        let Self {
            write_list,
            probation,
            protected,
            slots,
            ..
        } = self;
        let list = match pool {
            Pool::Write => write_list,
            Pool::Probation => probation,
            Pool::Protected => protected,
        };
        link_front(list, slots, idx);
        live(slots, idx).pool = pool;
    }

    fn link_back_to(&mut self, pool: Pool, idx: u32) {
        let Self {
            write_list,
            probation,
            protected,
            slots,
            ..
        } = self;
        let list = match pool {
            Pool::Write => write_list,
            Pool::Probation => probation,
            Pool::Protected => protected,
        };
        link_back(list, slots, idx);
        live(slots, idx).pool = pool;
    }

    fn alloc(&mut self, slot: Slot) -> u32 {
        match self.free.pop() {
            Some(idx) => {
                self.slots[idx as usize] = Some(slot);
                idx
            }
            None => {
                let idx = self.slots.len() as u32;
                self.slots.push(Some(slot));
                idx
            }
        }
    }

    /// Drops a resident slot without counting an eviction (removal /
    /// invalidation paths).
    fn discard_idx(&mut self, idx: u32) -> Slot {
        let (pool, key, client) = {
            let slot = self.slots[idx as usize].as_ref().expect("live slot");
            (slot.pool, slot.key, slot.client)
        };
        self.unlink_from(pool, idx);
        self.map.remove(&key);
        self.charge(client, -1);
        let slot = self.slots[idx as usize].take().expect("live slot");
        self.free.push(idx);
        if slot.dirty {
            self.dirty_count -= 1;
            if self.dirty_count == 0 {
                self.oldest_dirty_ns = u64::MAX;
            }
        }
        slot
    }

    /// Evicts a clean slot: like [`discard_idx`] but counted, and (in
    /// adaptive mode) remembered on the ghost list.
    fn evict_idx(&mut self, idx: u32) {
        let slot = self.discard_idx(idx);
        debug_assert!(!slot.dirty, "never evict dirty blocks");
        self.stats.evictions += 1;
        self.obs.evictions.inc();
        if self.config.policy == CachePolicy::Adaptive {
            self.ghost.insert(slot.key, slot.client);
        }
    }

    /// Shared-LRU victim: the least-recently-used clean block, i.e. the
    /// first clean slot walking from the cold end of the single list.
    fn shared_victim(&self) -> Option<u32> {
        let mut idx = self.protected.tail;
        while idx != NIL {
            let slot = self.slots[idx as usize].as_ref().expect("live slot");
            if !slot.dirty {
                return Some(idx);
            }
            idx = slot.prev;
        }
        None
    }

    /// Adaptive victim: prefer the probation FIFO while it holds more
    /// than its share (or the protected pool is empty), so one-touch
    /// blocks absorb scans before re-referenced blocks pay.
    fn adaptive_victim(&self) -> Option<u32> {
        let probation_target = (self.clean_count() / 4).max(1);
        let from_probation = self.probation.len > probation_target || self.protected.len == 0;
        if from_probation && self.probation.tail != NIL {
            Some(self.probation.tail)
        } else if self.protected.tail != NIL {
            Some(self.protected.tail)
        } else if self.probation.tail != NIL {
            Some(self.probation.tail)
        } else {
            None
        }
    }

    /// Adaptive budget: clean blocks may borrow any memory the write
    /// buffer is not using, so only a true over-capacity state evicts.
    fn enforce_budget(&mut self) {
        while self.map.len() > self.capacity_blocks && self.clean_count() > 0 {
            match self.adaptive_victim() {
                Some(idx) => self.evict_idx(idx),
                None => break,
            }
        }
    }

    // ---- lookups -------------------------------------------------------

    /// Looks up a block, counting a hit or miss (and, in adaptive mode, a
    /// ghost hit on misses of recently evicted keys).
    pub fn get(&mut self, key: BlockKey) -> Option<&[u8]> {
        match self.map.get(&key).copied() {
            Some(idx) => {
                self.note_hit();
                let pool = self.slots[idx as usize].as_ref().expect("live slot").pool;
                match self.config.policy {
                    CachePolicy::SharedLru => {
                        self.unlink_from(pool, idx);
                        self.link_front_to(Pool::Protected, idx);
                    }
                    CachePolicy::Adaptive => match pool {
                        Pool::Write => {}
                        Pool::Probation => {
                            self.unlink_from(pool, idx);
                            self.link_front_to(Pool::Protected, idx);
                            self.promotions += 1;
                            self.obs.promotions.inc();
                            self.publish_gauges();
                        }
                        Pool::Protected => {
                            self.unlink_from(pool, idx);
                            self.link_front_to(Pool::Protected, idx);
                        }
                    },
                }
                Some(&self.slots[idx as usize].as_ref().expect("live slot").data)
            }
            None => {
                self.note_miss(key);
                None
            }
        }
    }

    /// Returns true if the block is cached, without touching recency or
    /// stats.
    pub fn contains(&self, key: BlockKey) -> bool {
        self.map.contains_key(&key)
    }

    /// Looks up a block without touching recency, hit/miss stats, or
    /// pool membership. For maintenance passes (recovery's metadata
    /// gather) that must not perturb the cache's observable behaviour.
    pub fn peek(&self, key: BlockKey) -> Option<&[u8]> {
        self.map
            .get(&key)
            .map(|&idx| &*self.slots[idx as usize].as_ref().expect("live slot").data)
    }

    /// Returns true if the block is cached and dirty.
    pub fn is_dirty(&self, key: BlockKey) -> bool {
        self.map
            .get(&key)
            .is_some_and(|&idx| self.slots[idx as usize].as_ref().expect("live slot").dirty)
    }

    /// Looks up a block for modification, marking it dirty (it moves into
    /// the write buffer) and charging it to the active client.
    pub fn get_mut(&mut self, key: BlockKey, now_ns: u64) -> Option<&mut [u8]> {
        match self.map.get(&key).copied() {
            Some(idx) => {
                self.note_hit();
                self.retag(idx);
                let (pool, was_dirty) = {
                    let slot = self.slots[idx as usize].as_ref().expect("live slot");
                    (slot.pool, slot.dirty)
                };
                if !was_dirty {
                    {
                        let slot = live(&mut self.slots, idx);
                        slot.dirty = true;
                        slot.dirty_since_ns = now_ns;
                    }
                    self.dirty_count += 1;
                    self.oldest_dirty_ns = self.oldest_dirty_ns.min(now_ns);
                }
                match self.config.policy {
                    CachePolicy::SharedLru => {
                        self.unlink_from(pool, idx);
                        self.link_front_to(Pool::Protected, idx);
                    }
                    CachePolicy::Adaptive => {
                        if !was_dirty {
                            self.unlink_from(pool, idx);
                            self.link_front_to(Pool::Write, idx);
                        }
                    }
                }
                self.publish_gauges();
                Some(&mut live(&mut self.slots, idx).data)
            }
            None => {
                self.note_miss(key);
                None
            }
        }
    }

    // ---- inserts -------------------------------------------------------

    /// Shared-LRU eviction, decision-exact with the legacy cache: evict
    /// least-recently-used *clean* blocks while at capacity; if everything
    /// is dirty, overflow (the CacheFull trigger tells the FS to flush).
    fn shared_evict_for_insert(&mut self) {
        while self.map.len() >= self.capacity_blocks {
            match self.shared_victim() {
                Some(idx) => self.evict_idx(idx),
                None => break,
            }
        }
    }

    fn insert_slot(&mut self, key: BlockKey, data: Box<[u8]>, dirty: bool, now_ns: u64) {
        assert_eq!(data.len(), self.block_size, "cached block has wrong size");
        if self.config.policy == CachePolicy::SharedLru {
            self.shared_evict_for_insert();
        }
        let was_ghost =
            self.config.policy == CachePolicy::Adaptive && self.ghost.remove(key);
        if let Some(idx) = self.map.get(&key).copied() {
            // Replace in place: the old contents (dirty or not) are dead.
            let (pool, old_dirty) = {
                let slot = self.slots[idx as usize].as_ref().expect("live slot");
                (slot.pool, slot.dirty)
            };
            self.unlink_from(pool, idx);
            if old_dirty {
                self.dirty_count -= 1;
                if self.dirty_count == 0 {
                    self.oldest_dirty_ns = u64::MAX;
                }
            }
            self.retag(idx);
            {
                let slot = live(&mut self.slots, idx);
                slot.data = data;
                slot.dirty = dirty;
                slot.dirty_since_ns = if dirty { now_ns } else { u64::MAX };
            }
            self.place(idx, dirty, was_ghost);
        } else {
            let idx = self.alloc(Slot {
                key,
                data,
                dirty,
                dirty_since_ns: if dirty { now_ns } else { u64::MAX },
                client: self.active_client,
                pool: Pool::Protected,
                prev: NIL,
                next: NIL,
            });
            self.map.insert(key, idx);
            self.charge(self.active_client, 1);
            self.place(idx, dirty, was_ghost);
        }
        if dirty {
            self.dirty_count += 1;
            self.oldest_dirty_ns = self.oldest_dirty_ns.min(now_ns);
        }
        if self.config.policy == CachePolicy::Adaptive {
            self.enforce_budget();
        }
        self.publish_gauges();
    }

    /// Links a (re)inserted slot into the pool its state calls for.
    fn place(&mut self, idx: u32, dirty: bool, was_ghost: bool) {
        let pool = match self.config.policy {
            CachePolicy::SharedLru => Pool::Protected,
            CachePolicy::Adaptive => {
                if dirty {
                    Pool::Write
                } else if was_ghost {
                    // A ghost hit coming back is a proven re-reference:
                    // it skips probation.
                    Pool::Protected
                } else {
                    Pool::Probation
                }
            }
        };
        self.link_front_to(pool, idx);
    }

    /// Inserts a block read from disk (clean).
    pub fn insert_clean(&mut self, key: BlockKey, data: Box<[u8]>) {
        self.insert_slot(key, data, false, 0);
    }

    /// Inserts a freshly written block (dirty as of `now_ns`).
    pub fn insert_dirty(&mut self, key: BlockKey, data: Box<[u8]>, now_ns: u64) {
        self.insert_slot(key, data, true, now_ns);
    }

    // ---- write-back ----------------------------------------------------

    /// Marks a block clean after it has been written to disk. In adaptive
    /// mode the block leaves the write buffer for the *cold* end of
    /// probation, so flush churn drains before it touches the read
    /// working set. No-op if the block is absent or already clean.
    pub fn mark_clean(&mut self, key: BlockKey) {
        if let Some(idx) = self.map.get(&key).copied() {
            let (pool, dirty) = {
                let slot = self.slots[idx as usize].as_ref().expect("live slot");
                (slot.pool, slot.dirty)
            };
            if !dirty {
                return;
            }
            {
                let slot = live(&mut self.slots, idx);
                slot.dirty = false;
                slot.dirty_since_ns = u64::MAX;
            }
            self.dirty_count -= 1;
            if self.dirty_count == 0 {
                self.oldest_dirty_ns = u64::MAX;
            }
            if self.config.policy == CachePolicy::Adaptive {
                self.unlink_from(pool, idx);
                self.link_back_to(Pool::Probation, idx);
                self.enforce_budget();
            }
            self.publish_gauges();
        }
    }

    /// Reports a completed flush: `bytes` written in `chunk_writes`
    /// segment-sized device writes, and why. Feeds the flush-efficiency
    /// gauge and (in adaptive mode) the boundary tuner.
    pub fn note_flush(&mut self, bytes: u64, chunk_writes: u64, cause: FlushCause) {
        self.obs.flush_bytes.add(bytes);
        self.obs.flush_chunk_writes.add(chunk_writes);
        let unit = self.config.flush_unit_bytes;
        if unit == 0 || chunk_writes == 0 {
            return;
        }
        self.flush_eff_millis = bytes * 1000 / (chunk_writes * unit);
        self.obs.flush_eff_millis.set(self.flush_eff_millis);
        if self.config.policy != CachePolicy::Adaptive {
            return;
        }
        // Waste: segment writes beyond what the flushed bytes needed,
        // plus a structural penalty when cache pressure itself could not
        // fill even one segment (the write buffer is too small). Only
        // pressure flushes are charged — sync and age flushes drain
        // whatever happens to be dirty, so their fragmentation says
        // nothing about the boundary.
        let mut waste = 0;
        if cause == FlushCause::CachePressure {
            let ideal = bytes.div_ceil(unit).max(1);
            waste = chunk_writes.saturating_sub(ideal);
            if bytes < unit {
                waste += 1;
            }
        }
        self.win_waste_chunks += waste;
        self.win_flushes += 1;
        if self.win_flushes >= TUNE_WINDOW {
            self.tune();
        }
    }

    /// One tuning decision: compare the window's read-side marginal
    /// benefit (ghost hits — misses a bigger read pool would have served)
    /// against the write side's flush-efficiency loss (wasted partial
    /// segment writes), and move the boundary one step toward the
    /// starving pool.
    fn tune(&mut self) {
        let unit_blocks = ((self.config.flush_unit_bytes as usize) / self.block_size).max(1);
        let floor = unit_blocks.clamp(self.min_write, self.max_write);
        let old = self.write_target;
        if self.win_waste_chunks > 0 {
            // Flushes are underfilling segments: grow the write buffer.
            self.write_target = (self.write_target + self.step).min(self.max_write);
        } else if self.win_ghost_hits as usize >= self.step
            && self.write_target.saturating_sub(self.step) >= floor
        {
            // Reads are starving and the buffer can still fill whole
            // segments after shrinking: give the read pool a step.
            self.write_target -= self.step;
        }
        if self.write_target != old {
            self.boundary_moves += 1;
            self.obs.boundary_moves.inc();
            self.publish_gauges();
        }
        self.win_flushes = 0;
        self.win_ghost_hits = 0;
        self.win_waste_chunks = 0;
    }

    /// Forces the boundary to `write_blocks` (clamped to the legal
    /// range). A test/tooling hook — the tuner keeps moving it afterwards.
    pub fn set_boundary(&mut self, write_blocks: usize) {
        let clamped = write_blocks.clamp(self.min_write, self.max_write);
        if clamped != self.write_target {
            self.write_target = clamped;
            self.boundary_moves += 1;
            self.obs.boundary_moves.inc();
            if self.config.policy == CachePolicy::Adaptive {
                self.enforce_budget();
            }
            self.publish_gauges();
        }
    }

    // ---- removal -------------------------------------------------------

    /// Removes a block entirely (e.g. the file was deleted). Returns true
    /// if it was present. Dirty contents are discarded — they are dead.
    pub fn remove(&mut self, key: BlockKey) -> bool {
        self.ghost.remove(key);
        match self.map.get(&key).copied() {
            Some(idx) => {
                self.discard_idx(idx);
                self.publish_gauges();
                true
            }
            None => false,
        }
    }

    fn remove_matching(&mut self, matches: impl Fn(&BlockKey) -> bool) {
        let mut keys: Vec<BlockKey> = self.map.keys().filter(|k| matches(k)).copied().collect();
        keys.sort();
        for key in keys {
            let idx = self.map[&key];
            self.discard_idx(idx);
        }
        self.ghost.retain(|k| !matches(&k));
        self.publish_gauges();
    }

    /// Removes every block belonging to `owner` (deleted file).
    pub fn remove_owner(&mut self, owner: Owner) {
        self.remove_matching(|k| k.owner == owner);
    }

    /// Removes keys of `owner` with `index >= first_index` (truncation).
    pub fn remove_owner_from(&mut self, owner: Owner, first_index: u64) {
        self.remove_matching(|k| k.owner == owner && k.index >= first_index);
    }

    /// Removes keys of `owner` with `lo <= index < hi` (e.g. purging
    /// address-keyed metadata blocks when a disk region is reused).
    pub fn remove_owner_index_range(&mut self, owner: Owner, lo: u64, hi: u64) {
        self.remove_matching(|k| k.owner == owner && k.index >= lo && k.index < hi);
    }

    /// Drops all clean blocks and the ghost history (the benchmark
    /// "flush the file cache" step).
    pub fn drop_clean(&mut self) {
        let keys: Vec<BlockKey> = self
            .map
            .iter()
            .filter(|(_, &idx)| !self.slots[idx as usize].as_ref().expect("live slot").dirty)
            .map(|(&key, _)| key)
            .collect();
        for key in keys {
            let idx = self.map[&key];
            self.discard_idx(idx);
        }
        self.ghost.clear();
        self.publish_gauges();
    }

    // ---- dirty-set queries ---------------------------------------------

    fn dirty_keys_matching(&self, matches: impl Fn(&BlockKey, &Slot) -> bool) -> Vec<BlockKey> {
        let mut keys: Vec<BlockKey> = self
            .map
            .iter()
            .filter(|(key, &idx)| {
                let slot = self.slots[idx as usize].as_ref().expect("live slot");
                slot.dirty && matches(key, slot)
            })
            .map(|(&key, _)| key)
            .collect();
        keys.sort();
        keys
    }

    /// Returns the keys of all dirty blocks, sorted for deterministic
    /// write-back order (by owner, then index).
    pub fn dirty_keys(&self) -> Vec<BlockKey> {
        self.dirty_keys_matching(|_, _| true)
    }

    /// Returns dirty keys of a single owner, sorted by index.
    pub fn dirty_keys_of(&self, owner: Owner) -> Vec<BlockKey> {
        self.dirty_keys_matching(|key, _| key.owner == owner)
    }

    /// Returns dirty keys whose dirty age exceeds the policy threshold.
    pub fn dirty_keys_older_than(&self, now_ns: u64) -> Vec<BlockKey> {
        let cutoff = now_ns.saturating_sub(self.config.writeback.age_threshold_ns);
        self.dirty_keys_matching(|_, slot| slot.dirty_since_ns <= cutoff)
    }

    /// Checks whether the file system should start a write-back now:
    /// the dirty pool reached the boundary, or the oldest dirty block
    /// exceeded the age threshold.
    pub fn writeback_trigger(&self, now_ns: u64) -> Option<WritebackTrigger> {
        if self.dirty_count >= self.write_target.max(1) {
            return Some(WritebackTrigger::CacheFull);
        }
        if self.oldest_dirty_ns != u64::MAX
            && now_ns.saturating_sub(self.oldest_dirty_ns) >= self.config.writeback.age_threshold_ns
        {
            return Some(WritebackTrigger::AgeThreshold);
        }
        None
    }

    // ---- reporting -----------------------------------------------------

    /// Point-in-time report of pools, boundary, counters and per-client
    /// charges.
    pub fn report(&self) -> CacheReport {
        let (probation, protected) = match self.config.policy {
            CachePolicy::SharedLru => (0, 0),
            CachePolicy::Adaptive => (self.probation.len, self.protected.len),
        };
        CacheReport {
            policy: self.config.policy,
            block_size: self.block_size,
            capacity_blocks: self.capacity_blocks,
            write_target_blocks: self.write_target,
            read_target_blocks: match self.config.policy {
                CachePolicy::SharedLru => self.capacity_blocks,
                CachePolicy::Adaptive => self.capacity_blocks - self.write_target,
            },
            dirty_blocks: self.dirty_count,
            clean_blocks: self.clean_count(),
            probation_blocks: probation,
            protected_blocks: protected,
            ghost_blocks: self.ghost.len(),
            stats: self.stats,
            ghost_hits: self.ghost_hits,
            promotions: self.promotions,
            boundary_moves: self.boundary_moves,
            flush_eff_millis: self.flush_eff_millis,
            clients: self.clients.iter().map(|(&id, &u)| (id, u)).collect(),
        }
    }

    /// Per-client usage for one client (zeroes if never seen).
    pub fn client_usage(&self, id: u32) -> ClientUsage {
        self.clients.get(&id).copied().unwrap_or_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vfs::Ino;

    const BS: usize = 64;

    fn shared(capacity: usize) -> MemMgr {
        MemMgr::new(BS, capacity, MemConfig::shared(WritebackPolicy::paper()))
    }

    fn adaptive(capacity: usize) -> MemMgr {
        // Flush unit of 4 blocks so tuner floors are small in tests.
        MemMgr::new(
            BS,
            capacity,
            MemConfig::adaptive(WritebackPolicy::paper(), (4 * BS) as u64),
        )
    }

    fn k(ino: u32, index: u64) -> BlockKey {
        BlockKey::file(Ino(ino), index)
    }

    fn block(fill: u8) -> Box<[u8]> {
        vec![fill; BS].into_boxed_slice()
    }

    #[test]
    fn shared_lru_evicts_least_recent_clean() {
        let mut c = shared(2);
        c.insert_clean(k(1, 0), block(1));
        c.insert_clean(k(1, 1), block(2));
        c.get(k(1, 0));
        c.insert_clean(k(1, 2), block(3));
        assert!(c.contains(k(1, 0)));
        assert!(!c.contains(k(1, 1)));
        assert_eq!(c.stats().evictions, 1);
    }

    #[test]
    fn dirty_blocks_never_evicted_either_policy() {
        for mut c in [shared(2), adaptive(2)] {
            c.insert_dirty(k(1, 0), block(1), 100);
            c.insert_dirty(k(1, 1), block(2), 200);
            c.insert_clean(k(1, 2), block(3));
            assert!(c.contains(k(1, 0)) && c.contains(k(1, 1)));
            assert_eq!(c.dirty_count(), 2);
        }
    }

    #[test]
    fn adaptive_scan_does_not_evict_protected() {
        let mut c = adaptive(8);
        // Build a re-referenced working set of 3 blocks.
        for i in 0..3 {
            c.insert_clean(k(1, i), block(i as u8));
        }
        for i in 0..3 {
            c.get(k(1, i)); // promote to protected
        }
        // Stream 100 one-touch blocks through the cache.
        for i in 0..100 {
            c.insert_clean(k(2, i), block(0));
        }
        for i in 0..3 {
            assert!(c.contains(k(1, i)), "scan evicted protected block {i}");
        }
        assert!(c.report().promotions >= 3);
    }

    #[test]
    fn shared_lru_scan_evicts_working_set() {
        // The contrast case: the same traffic kills the hot set in LRU.
        let mut c = shared(8);
        for i in 0..3 {
            c.insert_clean(k(1, i), block(i as u8));
        }
        for i in 0..3 {
            c.get(k(1, i));
        }
        for i in 0..100 {
            c.insert_clean(k(2, i), block(0));
        }
        assert!((0..3).all(|i| !c.contains(k(1, i))));
    }

    #[test]
    fn ghost_hit_is_counted_and_promotes_on_return() {
        let mut c = adaptive(4);
        for i in 0..20 {
            c.insert_clean(k(1, i), block(0));
        }
        // The last few evicted keys are ghosts (ghost capacity = twice
        // the cache capacity); the very first keys have aged out.
        assert!(c.get(k(1, 12)).is_none());
        assert_eq!(c.ghost_hits(), 1);
        c.insert_clean(k(1, 12), block(9));
        // Came back from the ghost list: protected directly.
        let report = c.report();
        assert!(report.protected_blocks >= 1);
        assert!(c.contains(k(1, 12)));
    }

    #[test]
    fn mark_clean_moves_to_cold_probation() {
        let mut c = adaptive(4);
        c.insert_dirty(k(1, 0), block(1), 10);
        assert_eq!(c.dirty_count(), 1);
        c.mark_clean(k(1, 0));
        assert_eq!(c.dirty_count(), 0);
        assert!(!c.is_dirty(k(1, 0)));
        // Fill the cache: the flushed block should be first to go.
        for i in 1..5 {
            c.insert_clean(k(1, i), block(0));
        }
        assert!(!c.contains(k(1, 0)), "flushed block should evict first");
    }

    #[test]
    fn adaptive_trigger_follows_boundary() {
        let mut c = adaptive(32);
        let target = c.write_target();
        for i in 0..target as u64 {
            c.insert_dirty(k(1, i), block(0), 0);
        }
        assert_eq!(c.writeback_trigger(0), Some(WritebackTrigger::CacheFull));
        c.set_boundary(c.capacity_blocks()); // clamped to max
        assert!(c.write_target() > target);
        assert_eq!(c.writeback_trigger(0), None);
        assert!(c.boundary_moves() >= 1);
    }

    #[test]
    fn tuner_grows_on_waste_and_shrinks_on_ghost_hits() {
        let mut c = adaptive(64);
        c.set_boundary(8);
        let start = c.write_target();
        // Four pressure flushes that underfill the 4-block unit.
        for _ in 0..4 {
            c.note_flush(BS as u64, 1, FlushCause::CachePressure);
        }
        assert!(c.write_target() > start, "waste should grow the buffer");
        let grown = c.write_target();
        // Now a window of perfect flushes plus heavy ghost traffic.
        for i in 0..200 {
            c.insert_clean(k(3, i), block(0));
        }
        for i in 0..200 {
            c.get(k(3, i)); // many land on ghosts
        }
        for _ in 0..4 {
            c.note_flush((4 * BS) as u64, 1, FlushCause::Sync);
        }
        assert!(c.write_target() < grown, "ghost hits should shrink it");
    }

    #[test]
    fn per_client_attribution_tracks_residency_and_hits() {
        let mut c = adaptive(8);
        c.set_client(Some(1));
        c.insert_clean(k(1, 0), block(1));
        c.get(k(1, 0));
        c.set_client(Some(2));
        c.insert_dirty(k(2, 0), block(2), 5);
        c.get(k(1, 0)); // hit on client 1's block, attributed to 2
        c.get(k(9, 9)); // miss for client 2
        let u1 = c.client_usage(1);
        let u2 = c.client_usage(2);
        assert_eq!(u1.resident_blocks, 1);
        assert_eq!(u1.hits, 1);
        assert_eq!(u2.resident_blocks, 1);
        assert_eq!(u2.hits, 1);
        assert_eq!(u2.misses, 1);
        // get_mut retags the charge to the writer.
        c.get_mut(k(1, 0), 7).unwrap()[0] = 3;
        assert_eq!(c.client_usage(1).resident_blocks, 0);
        assert_eq!(c.client_usage(2).resident_blocks, 2);
    }

    #[test]
    fn obs_names_appear_in_registry() {
        let registry = obs::Registry::new();
        let mut c = adaptive(8);
        c.set_client(Some(0));
        c.insert_clean(k(1, 0), block(1));
        c.attach_obs(&registry);
        c.get(k(1, 0));
        let snap = registry.snapshot();
        assert_eq!(snap.counter("cache.hits"), 1);
        assert_eq!(snap.counter("cache.client.000.hits"), 1);
        assert_eq!(snap.gauge("cache.client.000.resident_blocks"), 1);
        assert!(snap.gauge("cache.write_target_blocks") > 0);
    }

    #[test]
    fn remove_owner_purges_ghosts_too() {
        let mut c = adaptive(2);
        for i in 0..10 {
            c.insert_clean(k(1, i), block(0));
        }
        c.remove_owner(Owner::File(Ino(1)));
        assert!(c.is_empty());
        // No ghost hits after the purge: the owner is gone entirely.
        assert!(c.get(k(1, 0)).is_none());
        assert_eq!(c.ghost_hits(), 0);
    }

    #[test]
    fn writeback_age_trigger_matches_legacy() {
        let mut c = MemMgr::new(
            BS,
            100,
            MemConfig::shared(WritebackPolicy::paper().with_age_secs(30.0)),
        );
        c.insert_dirty(k(1, 0), block(1), 1_000);
        assert_eq!(c.writeback_trigger(1_000), None);
        assert_eq!(
            c.writeback_trigger(1_000 + 30_000_000_000),
            Some(WritebackTrigger::AgeThreshold)
        );
        c.remove(k(1, 0));
        assert_eq!(c.writeback_trigger(u64::MAX), None);
    }

    #[test]
    fn drop_clean_keeps_dirty_and_clears_ghosts() {
        let mut c = adaptive(4);
        for i in 0..10 {
            c.insert_clean(k(1, i), block(0));
        }
        c.insert_dirty(k(2, 0), block(1), 0);
        c.drop_clean();
        assert_eq!(c.len(), 1);
        assert!(c.is_dirty(k(2, 0)));
        assert_eq!(c.report().ghost_blocks, 0);
    }
}
