//! Memory-manager configuration.

use block_cache::WritebackPolicy;

/// Which replacement policy the manager runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CachePolicy {
    /// Legacy behaviour: one shared LRU over clean and dirty blocks,
    /// decision-exact with the original `block-cache` implementation.
    #[default]
    SharedLru,
    /// Split write buffer / 2Q read cache with the adaptive boundary.
    Adaptive,
}

impl CachePolicy {
    /// Stable lower-case name, used in bench labels and CLI flags.
    pub fn as_str(self) -> &'static str {
        match self {
            CachePolicy::SharedLru => "shared",
            CachePolicy::Adaptive => "adaptive",
        }
    }

    /// Parses a policy name as written by [`CachePolicy::as_str`]
    /// (aliases `shared-lru` and `lru` are accepted).
    pub fn parse(name: &str) -> Option<Self> {
        match name {
            "shared" | "shared-lru" | "lru" => Some(CachePolicy::SharedLru),
            "adaptive" => Some(CachePolicy::Adaptive),
            _ => None,
        }
    }
}

/// Why the file system flushed, as reported through
/// [`MemMgr::note_flush`](crate::MemMgr::note_flush).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlushCause {
    /// The dirty pool reached the write-buffer boundary
    /// ([`WritebackTrigger::CacheFull`](block_cache::WritebackTrigger)).
    CachePressure,
    /// The oldest dirty block exceeded the age threshold.
    AgeThreshold,
    /// An explicit `sync`/checkpoint request.
    Sync,
}

/// Configuration for a [`MemMgr`](crate::MemMgr).
#[derive(Debug, Clone, Copy)]
pub struct MemConfig {
    /// Replacement policy.
    pub policy: CachePolicy,
    /// Write-back triggers (age threshold, dirty high water). Under
    /// [`CachePolicy::Adaptive`] the high-water fraction only seeds the
    /// *initial* boundary; the tuner moves it afterwards.
    pub writeback: WritebackPolicy,
    /// The flush unit in bytes — the segment size for LFS. Flush
    /// efficiency is measured against this; `0` disables the write-side
    /// pressure model (FFS has no segment-sized flush to protect).
    pub flush_unit_bytes: u64,
    /// Per-client obs instruments (`cache.client.<id>.*`) are only
    /// published for client ids below this cap; internal accounting is
    /// kept for every client regardless.
    pub per_client_obs_max: u32,
}

impl MemConfig {
    /// Legacy shared-LRU configuration.
    pub fn shared(writeback: WritebackPolicy) -> Self {
        Self {
            policy: CachePolicy::SharedLru,
            writeback,
            flush_unit_bytes: 0,
            per_client_obs_max: 32,
        }
    }

    /// Adaptive split-pool configuration with the given flush unit.
    pub fn adaptive(writeback: WritebackPolicy, flush_unit_bytes: u64) -> Self {
        Self {
            policy: CachePolicy::Adaptive,
            writeback,
            flush_unit_bytes,
            per_client_obs_max: 32,
        }
    }

    /// Builder: replaces the policy.
    pub fn with_policy(mut self, policy: CachePolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Builder: replaces the flush unit.
    pub fn with_flush_unit_bytes(mut self, bytes: u64) -> Self {
        self.flush_unit_bytes = bytes;
        self
    }

    /// Builder: replaces the per-client obs cap.
    pub fn with_per_client_obs_max(mut self, max: u32) -> Self {
        self.per_client_obs_max = max;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn policy_names_round_trip() {
        for p in [CachePolicy::SharedLru, CachePolicy::Adaptive] {
            assert_eq!(CachePolicy::parse(p.as_str()), Some(p));
        }
        assert_eq!(CachePolicy::parse("lru"), Some(CachePolicy::SharedLru));
        assert_eq!(CachePolicy::parse("bogus"), None);
    }
}
