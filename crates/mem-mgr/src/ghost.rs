//! The ghost list: keys of recently evicted clean blocks.
//!
//! A ghost entry holds no data — just the key, the client the block was
//! charged to, and a FIFO sequence number. A miss that lands on a ghost
//! entry is a "ghost hit": evidence that a larger read pool would have
//! served the access from memory. The tuner consumes ghost-hit counts as
//! the read side's marginal-benefit signal.

use std::collections::{BTreeMap, HashMap};

use block_cache::BlockKey;

#[derive(Debug)]
pub(crate) struct GhostList {
    /// key -> (fifo sequence, charged client)
    map: HashMap<BlockKey, (u64, Option<u32>)>,
    /// fifo sequence -> key, oldest first
    order: BTreeMap<u64, BlockKey>,
    seq: u64,
    cap: usize,
}

impl GhostList {
    pub(crate) fn new(cap: usize) -> Self {
        Self {
            map: HashMap::new(),
            order: BTreeMap::new(),
            seq: 0,
            cap: cap.max(1),
        }
    }

    pub(crate) fn len(&self) -> usize {
        self.map.len()
    }

    /// Returns the charged client if `key` is a ghost. Does not consume
    /// the entry — that happens when the block is re-inserted.
    pub(crate) fn lookup(&self, key: BlockKey) -> Option<Option<u32>> {
        self.map.get(&key).map(|&(_, client)| client)
    }

    /// Records an eviction. Re-evicting a key refreshes its position.
    pub(crate) fn insert(&mut self, key: BlockKey, client: Option<u32>) {
        if let Some((old_seq, _)) = self.map.remove(&key) {
            self.order.remove(&old_seq);
        }
        self.seq += 1;
        self.map.insert(key, (self.seq, client));
        self.order.insert(self.seq, key);
        while self.map.len() > self.cap {
            let (&oldest, &victim) = self.order.iter().next().expect("ghost order non-empty");
            self.order.remove(&oldest);
            self.map.remove(&victim);
        }
    }

    /// Consumes a ghost entry (the block came back). Returns true if it
    /// was present.
    pub(crate) fn remove(&mut self, key: BlockKey) -> bool {
        match self.map.remove(&key) {
            Some((seq, _)) => {
                self.order.remove(&seq);
                true
            }
            None => false,
        }
    }

    /// Drops every ghost whose key fails the predicate (owner purges).
    pub(crate) fn retain(&mut self, mut keep: impl FnMut(BlockKey) -> bool) {
        let dead: Vec<(u64, BlockKey)> = self
            .map
            .iter()
            .filter(|(k, _)| !keep(**k))
            .map(|(k, &(seq, _))| (seq, *k))
            .collect();
        for (seq, key) in dead {
            self.order.remove(&seq);
            self.map.remove(&key);
        }
    }

    pub(crate) fn clear(&mut self) {
        self.map.clear();
        self.order.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vfs::Ino;

    fn k(i: u64) -> BlockKey {
        BlockKey::file(Ino(1), i)
    }

    #[test]
    fn fifo_capacity_is_enforced() {
        let mut g = GhostList::new(3);
        for i in 0..5 {
            g.insert(k(i), Some(i as u32));
        }
        assert_eq!(g.len(), 3);
        assert_eq!(g.lookup(k(0)), None);
        assert_eq!(g.lookup(k(1)), None);
        assert_eq!(g.lookup(k(4)), Some(Some(4)));
    }

    #[test]
    fn reinsert_refreshes_position() {
        let mut g = GhostList::new(2);
        g.insert(k(0), None);
        g.insert(k(1), None);
        g.insert(k(0), None); // refresh: k(1) is now the oldest
        g.insert(k(2), None);
        assert!(g.lookup(k(0)).is_some());
        assert!(g.lookup(k(1)).is_none());
    }

    #[test]
    fn remove_and_retain() {
        let mut g = GhostList::new(8);
        for i in 0..4 {
            g.insert(k(i), None);
        }
        assert!(g.remove(k(2)));
        assert!(!g.remove(k(2)));
        g.retain(|key| key.index < 1);
        assert_eq!(g.len(), 1);
        assert!(g.lookup(k(0)).is_some());
    }
}
