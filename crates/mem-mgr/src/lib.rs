#![warn(missing_docs)]

//! Adaptive memory manager: split write buffer / scan-resistant read cache.
//!
//! The 1990 LFS paper assumes one large file cache absorbs reads so the
//! log can own writes, but a single shared LRU makes those two jobs fight:
//! dirty blocks parked while they accumulate toward a segment-sized flush
//! evict the read working set, and one streaming client can flush
//! everyone's hot blocks. [`MemMgr`] partitions one memory budget into
//!
//! * a **write buffer** — dirty blocks accumulating toward segment-sized
//!   flushes, with flush efficiency (bytes flushed per segment write)
//!   reported back by the owning file system via [`MemMgr::note_flush`];
//! * a **scan-resistant read cache** — 2Q-style *probation* (FIFO, where
//!   blocks land on first touch) and *protected* (LRU, entered only on
//!   re-reference) pools, backed by a **ghost list** of recently evicted
//!   keys so the manager can observe the misses a larger read pool would
//!   have served;
//!
//! with an **adaptive boundary** that moves blocks between the pools by
//! comparing read hit-rate marginal benefit (ghost hits per tuning
//! window) against write-flush efficiency (partial-segment writes a
//! smaller buffer would cause) — the Luo & Carey "memory walls" tuner
//! simplified to this two-pool case.
//!
//! [`CachePolicy::SharedLru`] preserves the legacy `block-cache`
//! behaviour decision-for-decision (same victims, same counters, same
//! write-back triggers), so existing benchmarks are unchanged unless a
//! configuration opts into [`CachePolicy::Adaptive`].
//!
//! The manager also keeps **per-client working-set accounting**: every
//! resident block is charged to the client that faulted or wrote it, and
//! hits/misses/ghost hits are attributed to the accessing client
//! (`cache.client.<id>.*` instruments), so QoS-weighted tenants can be
//! charged for memory the way the engine charges them for I/O.
//!
//! Like `block-cache`, the manager never does I/O: the file system reads
//! misses from disk and decides when and in what layout dirty blocks are
//! written back. **Dirty blocks are never evicted** under either policy.

mod config;
mod ghost;
mod manager;
mod report;

pub use block_cache::{BlockKey, CacheStats, Owner, WritebackPolicy, WritebackTrigger};
pub use config::{CachePolicy, FlushCause, MemConfig};
pub use manager::MemMgr;
pub use report::{CacheReport, ClientUsage};
