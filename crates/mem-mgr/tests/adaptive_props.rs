//! Adaptive-mode safety properties: no boundary resize or eviction
//! decision may ever drop a dirty block, corrupt its contents, or let
//! the write-back key order diverge from the reference model.

use std::collections::HashMap;

use proptest::prelude::*;

use block_cache::{BlockKey, Owner, WritebackPolicy};
use mem_mgr::{FlushCause, MemConfig, MemMgr};
use vfs::Ino;

const BS: usize = 32;
const CAPACITY: usize = 8;

#[derive(Debug, Clone)]
enum Op {
    Get { ino: u8, index: u8 },
    GetMut { ino: u8, index: u8, at: u32 },
    InsertClean { ino: u8, index: u8, fill: u8 },
    InsertDirty { ino: u8, index: u8, fill: u8, at: u32 },
    MarkClean { ino: u8, index: u8 },
    Remove { ino: u8, index: u8 },
    RemoveOwner { ino: u8 },
    DropClean,
    SetBoundary { blocks: u8 },
    NoteFlush { bytes: u16, chunks: u8 },
    SetClient { id: u8 },
}

fn key(ino: u8, index: u8) -> BlockKey {
    BlockKey::file(Ino(ino as u32), index as u64)
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (1u8..4, 0u8..12).prop_map(|(ino, index)| Op::Get { ino, index }),
        (1u8..4, 0u8..12, any::<u32>()).prop_map(|(ino, index, at)| Op::GetMut { ino, index, at }),
        (1u8..4, 0u8..12, any::<u8>()).prop_map(|(ino, index, fill)| Op::InsertClean {
            ino,
            index,
            fill
        }),
        (1u8..4, 0u8..12, any::<u8>(), any::<u32>()).prop_map(|(ino, index, fill, at)| {
            Op::InsertDirty {
                ino,
                index,
                fill,
                at,
            }
        }),
        (1u8..4, 0u8..12).prop_map(|(ino, index)| Op::MarkClean { ino, index }),
        (1u8..4, 0u8..12).prop_map(|(ino, index)| Op::Remove { ino, index }),
        (1u8..4).prop_map(|ino| Op::RemoveOwner { ino }),
        Just(Op::DropClean),
        (0u8..32).prop_map(|blocks| Op::SetBoundary {
            blocks
        }),
        (0u16..2048, 0u8..8).prop_map(|(bytes, chunks)| Op::NoteFlush { bytes, chunks }),
        (0u8..6).prop_map(|id| Op::SetClient { id }),
    ]
}

/// Reference model: the dirty blocks and their exact contents.
#[derive(Default)]
struct DirtyModel {
    dirty: HashMap<BlockKey, Vec<u8>>,
}

impl DirtyModel {
    fn keys_sorted(&self) -> Vec<BlockKey> {
        let mut keys: Vec<BlockKey> = self.dirty.keys().copied().collect();
        keys.sort();
        keys
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 256, ..ProptestConfig::default() })]

    #[test]
    fn no_resize_or_eviction_loses_dirty_data(
        ops in proptest::collection::vec(op_strategy(), 1..150)
    ) {
        let config = MemConfig::adaptive(WritebackPolicy::paper(), (4 * BS) as u64);
        let mut mgr = MemMgr::new(BS, CAPACITY, config);
        let mut model = DirtyModel::default();

        for op in &ops {
            match *op {
                Op::Get { ino, index } => {
                    // A hit must return dirty contents verbatim.
                    if let Some(want) = model.dirty.get(&key(ino, index)) {
                        let got = mgr.get(key(ino, index)).expect("dirty block vanished");
                        prop_assert_eq!(got, &want[..], "dirty contents corrupted");
                    } else {
                        mgr.get(key(ino, index));
                    }
                }
                Op::GetMut { ino, index, at } => {
                    if let Some(data) = mgr.get_mut(key(ino, index), at as u64) {
                        data[0] = data[0].wrapping_add(1);
                        model.dirty.insert(key(ino, index), data.to_vec());
                    } else {
                        prop_assert!(
                            !model.dirty.contains_key(&key(ino, index)),
                            "dirty block vanished before get_mut"
                        );
                    }
                }
                Op::InsertClean { ino, index, fill } => {
                    mgr.insert_clean(key(ino, index), vec![fill; BS].into_boxed_slice());
                    model.dirty.remove(&key(ino, index));
                }
                Op::InsertDirty { ino, index, fill, at } => {
                    mgr.insert_dirty(key(ino, index), vec![fill; BS].into_boxed_slice(), at as u64);
                    model.dirty.insert(key(ino, index), vec![fill; BS]);
                }
                Op::MarkClean { ino, index } => {
                    mgr.mark_clean(key(ino, index));
                    model.dirty.remove(&key(ino, index));
                }
                Op::Remove { ino, index } => {
                    mgr.remove(key(ino, index));
                    model.dirty.remove(&key(ino, index));
                }
                Op::RemoveOwner { ino } => {
                    mgr.remove_owner(Owner::File(Ino(ino as u32)));
                    model.dirty.retain(|k, _| k.owner != Owner::File(Ino(ino as u32)));
                }
                Op::DropClean => {
                    mgr.drop_clean();
                }
                Op::SetBoundary { blocks } => {
                    mgr.set_boundary(blocks as usize);
                }
                Op::NoteFlush { bytes, chunks } => {
                    mgr.note_flush(bytes as u64, chunks as u64, FlushCause::CachePressure);
                }
                Op::SetClient { id } => {
                    mgr.set_client(if id == 0 { None } else { Some(id as u32) });
                }
            }

            // Invariant: the write-back set (keys and order) equals the
            // model after EVERY op — no resize/eviction interleaving may
            // reorder or drop it.
            prop_assert_eq!(mgr.dirty_keys(), model.keys_sorted(), "write-back set diverged");
            prop_assert_eq!(mgr.dirty_count(), model.dirty.len());
        }

        // Every dirty block is still present with exact contents.
        for (k, want) in &model.dirty {
            prop_assert!(mgr.contains(*k), "dirty block evicted");
            prop_assert!(mgr.is_dirty(*k));
            let got = mgr.get(*k).expect("dirty block unreadable");
            prop_assert_eq!(got, &want[..]);
        }

        // Memory budget: clean blocks never push residency above
        // capacity; only dirty overflow may.
        prop_assert!(
            mgr.len() <= CAPACITY.max(mgr.dirty_count()),
            "clean blocks overflowed the budget: len={} dirty={}",
            mgr.len(),
            mgr.dirty_count()
        );
    }
}
