//! `MemMgr` in shared-LRU mode must be decision-exact with the legacy
//! `block_cache::BlockCache`: same contents, same victims, same counters,
//! same write-back triggers, under arbitrary operation sequences. Every
//! existing benchmark assertion in the workspace rides on this.

use proptest::prelude::*;

use block_cache::{BlockCache, BlockKey, Owner, WritebackPolicy};
use mem_mgr::{MemConfig, MemMgr};
use vfs::Ino;

const BS: usize = 32;
const CAPACITY: usize = 6;

#[derive(Debug, Clone)]
enum Op {
    Get { ino: u8, index: u8 },
    GetMut { ino: u8, index: u8, at: u32 },
    InsertClean { ino: u8, index: u8, fill: u8 },
    InsertDirty { ino: u8, index: u8, fill: u8, at: u32 },
    MarkClean { ino: u8, index: u8 },
    Remove { ino: u8, index: u8 },
    RemoveOwner { ino: u8 },
    RemoveOwnerFrom { ino: u8, first: u8 },
    RemoveRange { ino: u8, lo: u8, hi: u8 },
    DropClean,
    Trigger { at: u32 },
}

fn key(ino: u8, index: u8) -> BlockKey {
    BlockKey::file(Ino(ino as u32), index as u64)
}

fn block(fill: u8) -> Box<[u8]> {
    vec![fill; BS].into_boxed_slice()
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (1u8..4, 0u8..10).prop_map(|(ino, index)| Op::Get { ino, index }),
        (1u8..4, 0u8..10, any::<u32>()).prop_map(|(ino, index, at)| Op::GetMut { ino, index, at }),
        (1u8..4, 0u8..10, any::<u8>()).prop_map(|(ino, index, fill)| Op::InsertClean {
            ino,
            index,
            fill
        }),
        (1u8..4, 0u8..10, any::<u8>(), any::<u32>()).prop_map(|(ino, index, fill, at)| {
            Op::InsertDirty {
                ino,
                index,
                fill,
                at,
            }
        }),
        (1u8..4, 0u8..10).prop_map(|(ino, index)| Op::MarkClean { ino, index }),
        (1u8..4, 0u8..10).prop_map(|(ino, index)| Op::Remove { ino, index }),
        (1u8..4).prop_map(|ino| Op::RemoveOwner { ino }),
        (1u8..4, 0u8..10).prop_map(|(ino, first)| Op::RemoveOwnerFrom { ino, first }),
        (1u8..4, 0u8..10, 0u8..10).prop_map(|(ino, lo, hi)| Op::RemoveRange { ino, lo, hi }),
        Just(Op::DropClean),
        any::<u32>().prop_map(|at| Op::Trigger { at }),
    ]
}

/// Applies one op to both implementations and compares the observable
/// results of that op.
fn apply_both(legacy: &mut BlockCache, mgr: &mut MemMgr, op: &Op) {
    match *op {
        Op::Get { ino, index } => {
            let a = legacy.get(key(ino, index)).map(|d| d.to_vec());
            let b = mgr.get(key(ino, index)).map(|d| d.to_vec());
            assert_eq!(a, b, "get({ino},{index}) diverged");
        }
        Op::GetMut { ino, index, at } => {
            let a = legacy
                .get_mut(key(ino, index), at as u64)
                .map(|d| d.to_vec());
            let b = mgr.get_mut(key(ino, index), at as u64).map(|d| d.to_vec());
            assert_eq!(a, b, "get_mut({ino},{index}) diverged");
        }
        Op::InsertClean { ino, index, fill } => {
            legacy.insert_clean(key(ino, index), block(fill));
            mgr.insert_clean(key(ino, index), block(fill));
        }
        Op::InsertDirty {
            ino,
            index,
            fill,
            at,
        } => {
            legacy.insert_dirty(key(ino, index), block(fill), at as u64);
            mgr.insert_dirty(key(ino, index), block(fill), at as u64);
        }
        Op::MarkClean { ino, index } => {
            legacy.mark_clean(key(ino, index));
            mgr.mark_clean(key(ino, index));
        }
        Op::Remove { ino, index } => {
            assert_eq!(
                legacy.remove(key(ino, index)),
                mgr.remove(key(ino, index)),
                "remove({ino},{index}) diverged"
            );
        }
        Op::RemoveOwner { ino } => {
            legacy.remove_owner(Owner::File(Ino(ino as u32)));
            mgr.remove_owner(Owner::File(Ino(ino as u32)));
        }
        Op::RemoveOwnerFrom { ino, first } => {
            legacy.remove_owner_from(Owner::File(Ino(ino as u32)), first as u64);
            mgr.remove_owner_from(Owner::File(Ino(ino as u32)), first as u64);
        }
        Op::RemoveRange { ino, lo, hi } => {
            legacy.remove_owner_index_range(Owner::File(Ino(ino as u32)), lo as u64, hi as u64);
            mgr.remove_owner_index_range(Owner::File(Ino(ino as u32)), lo as u64, hi as u64);
        }
        Op::DropClean => {
            legacy.drop_clean();
            mgr.drop_clean();
        }
        Op::Trigger { at } => {
            assert_eq!(
                legacy.writeback_trigger(at as u64),
                mgr.writeback_trigger(at as u64),
                "writeback_trigger({at}) diverged"
            );
        }
    }
}

/// Compares all externally observable state after a sequence.
fn assert_same_state(legacy: &BlockCache, mgr: &MemMgr) {
    assert_eq!(legacy.len(), mgr.len(), "len diverged");
    assert_eq!(legacy.dirty_count(), mgr.dirty_count(), "dirty_count");
    assert_eq!(legacy.stats(), mgr.stats(), "hit/miss/eviction counters");
    assert_eq!(legacy.dirty_keys(), mgr.dirty_keys(), "dirty key set");
    for ino in 1u8..4 {
        assert_eq!(
            legacy.dirty_keys_of(Owner::File(Ino(ino as u32))),
            mgr.dirty_keys_of(Owner::File(Ino(ino as u32)))
        );
        for index in 0u8..10 {
            let k = key(ino, index);
            assert_eq!(legacy.contains(k), mgr.contains(k), "contains({ino},{index})");
            assert_eq!(legacy.is_dirty(k), mgr.is_dirty(k), "is_dirty({ino},{index})");
        }
    }
    for at in [0u64, 1 << 20, 1 << 34, u64::MAX] {
        assert_eq!(
            legacy.writeback_trigger(at),
            mgr.writeback_trigger(at),
            "trigger at {at}"
        );
        assert_eq!(legacy.dirty_keys_older_than(at), mgr.dirty_keys_older_than(at));
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 256, ..ProptestConfig::default() })]

    #[test]
    fn shared_mode_matches_legacy_cache(ops in proptest::collection::vec(op_strategy(), 1..120)) {
        let policy = WritebackPolicy::paper();
        let mut legacy = BlockCache::new(BS, CAPACITY, policy);
        let mut mgr = MemMgr::new(BS, CAPACITY, MemConfig::shared(policy));
        for op in &ops {
            apply_both(&mut legacy, &mut mgr, op);
        }
        assert_same_state(&legacy, &mgr);
    }
}
