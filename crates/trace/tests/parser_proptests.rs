//! Robustness properties for the `lfs-trace v1` parser:
//!
//! 1. Arbitrary bytes never panic the parser — malformed input is a
//!    typed [`TraceError`], whatever it looks like.
//! 2. Every generated trace round-trips: `to_text` → `parse` →
//!    `to_text` is a fixed point and the parsed trace validates.
//! 3. Cyclic dependency graphs are rejected with the typed
//!    [`TraceError::CyclicDependency`], never accepted or panicked on.
//!
//! Plus the golden-fixture check: the committed `.trace` files under
//! `tests/fixtures/` parse to exactly what today's generators emit, so
//! a format or generator drift shows up as a failing diff. Regenerate
//! with `REGEN_FIXTURES=1 cargo test -p trace --test parser_proptests`.

use proptest::prelude::*;

use trace::{by_name, GenSpec, Trace, TraceError, TRACE_NAMES};

proptest! {
    #![proptest_config(ProptestConfig { cases: 96, ..ProptestConfig::default() })]

    /// Total parsing: raw bytes in, `Result` out, no panics.
    #[test]
    fn parser_never_panics_on_arbitrary_bytes(
        bytes in proptest::collection::vec(any::<u8>(), 0..2048),
    ) {
        let _ = Trace::parse_bytes(&bytes);
    }

    /// Token soup under a valid header digs past the header check; the
    /// parser must still only ever return a typed error or a trace.
    #[test]
    fn parser_never_panics_on_token_soup(
        lines in proptest::collection::vec(
            proptest::collection::vec(
                prop_oneof![
                    Just("op".to_string()),
                    Just("clients".to_string()),
                    Just("qos".to_string()),
                    Just("after".to_string()),
                    Just("-".to_string()),
                    Just("c0".to_string()),
                    Just("write".to_string()),
                    Just("latency".to_string()),
                    any::<u32>().prop_map(|n| n.to_string()),
                    Just("/a{b".to_string()),
                    Just("t,".to_string()),
                    Just("c-1".to_string()),
                ],
                0..8,
            ),
            0..24,
        ),
    ) {
        let mut text = String::from("lfs-trace v1\n");
        for line in &lines {
            text.push_str(&line.join(" "));
            text.push('\n');
        }
        if let Ok(t) = Trace::parse(&text) {
            // Anything accepted must survive its own round trip.
            let again = Trace::parse(&t.to_text()).expect("round trip of accepted trace");
            prop_assert_eq!(t.to_text(), again.to_text());
        }
    }

    /// Generated traces are fixed points of `to_text` ∘ `parse`.
    #[test]
    fn every_generated_trace_round_trips(
        gen_ix in 0usize..4,
        clients in 1usize..5,
        ops in 1usize..24,
        seed in any::<u64>(),
    ) {
        let spec = GenSpec {
            clients,
            ops_per_client: ops,
            working_set: 6,
            max_file_size: 1024,
            seed,
        };
        let t = by_name(TRACE_NAMES[gen_ix], &spec).expect("known generator");
        t.validate().expect("generated trace must validate");
        let text = t.to_text();
        let parsed = Trace::parse(&text).expect("generated trace must parse");
        prop_assert_eq!(&parsed.to_text(), &text, "to_text/parse is not a fixed point");
        prop_assert_eq!(parsed.clients, t.clients);
        prop_assert_eq!(parsed.records.len(), t.records.len());
    }

    /// A dependency ring of any length >= 2 (each record `after` the
    /// next, last closing back to the first) is rejected as cyclic.
    #[test]
    fn cyclic_dependency_graphs_are_rejected(
        len in 2usize..12,
        think in 0u64..1000,
    ) {
        let mut text = format!("lfs-trace v1\nclients {len}\n");
        for i in 0..len {
            let dep = (i + 1) % len;
            text.push_str(&format!("op {i} c{i} t{think} after {dep} sync\n"));
        }
        match Trace::parse(&text) {
            Err(TraceError::CyclicDependency { .. }) => {}
            other => prop_assert!(false, "cycle of {} accepted or mistyped: {:?}", len, other),
        }
    }
}

/// Golden fixtures: one committed `.trace` file per generator, pinned
/// to a small spec. Guards the on-disk format (a parser change that
/// breaks old traces fails here) and the generators (a generator change
/// shows up as a reviewable fixture diff).
#[test]
fn golden_fixtures_match_generators() {
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures");
    let regen = std::env::var_os("REGEN_FIXTURES").is_some();
    for name in TRACE_NAMES {
        let t = by_name(name, &GenSpec::small(3)).expect("known generator");
        let text = t.to_text();
        let path = dir.join(format!("{name}.trace"));
        if regen {
            std::fs::create_dir_all(&dir).expect("fixture dir");
            std::fs::write(&path, &text).expect("write fixture");
            continue;
        }
        let golden = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("missing fixture {} ({e}); run with REGEN_FIXTURES=1", path.display()));
        assert_eq!(
            golden, text,
            "fixture {name}.trace drifted from the generator; \
             regenerate with REGEN_FIXTURES=1 if intentional"
        );
        let parsed = Trace::parse(&golden).expect("fixture parses");
        parsed.validate().expect("fixture validates");
        assert_eq!(parsed.to_text(), golden, "fixture round-trips");
    }
}
