//! Cross-file-system replay equivalence.
//!
//! Every generated trace is *determinate*: conflicting operations are
//! ordered by happens-before edges. So replaying one trace through LFS,
//! FFS, and the in-memory model — with wildly different latencies, and
//! with QoS reordering the eligible set — must land all three in the
//! same final namespace with the same file contents. The suite also
//! keeps the dependency audit honest: every replay must check a
//! non-zero number of edges (the vacuity guard) and violate none.

use std::rc::Rc;
use std::sync::Arc;

use engine::{EngineConfig, EngineCore, EngineDisk};
use ffs_baseline::{Ffs, FfsConfig};
use lfs_core::{Lfs, LfsConfig};
use sim_disk::{Clock, DiskGeometry, SimDisk};
use trace::{by_name, replay, snapshot, GenSpec, ReplayConfig, ReplayReport, Trace, TRACE_NAMES};
use vfs::model::ModelFs;
use vfs::FileKind;

type Snapshot = Vec<(String, FileKind, u64, u64)>;

fn check(label: &str, report: &ReplayReport, trace: &Trace) {
    assert_eq!(
        report.total_ops,
        trace.records.len() as u64,
        "{label}: replay did not visit every record"
    );
    assert_eq!(report.failed_ops, 0, "{label}: operations failed");
    assert_eq!(
        report.dep_violations, 0,
        "{label}: happens-before edges violated"
    );
    assert!(
        report.dep_edges_checked > 0,
        "{label}: dependency audit was vacuous"
    );
}

fn replay_lfs(trace: &Trace, cfg: &ReplayConfig) -> Snapshot {
    let clock = Clock::new();
    let disk = SimDisk::new(DiskGeometry::tiny_test(16_384), Arc::clone(&clock));
    let core = EngineCore::new(disk, EngineConfig::default()).into_shared();
    let dev = EngineDisk::new(Rc::clone(&core));
    let registry = core.borrow().disk().obs().clone();
    let mut fs = Lfs::format(dev, LfsConfig::small_test(), clock).expect("format LFS");
    let report = replay(&mut fs, &core, &registry, trace, cfg).expect("LFS replay");
    check("lfs", &report, trace);
    let fsck = fs.fsck().expect("fsck");
    assert!(fsck.is_clean(), "LFS inconsistent after replay:\n{fsck}");
    snapshot(&mut fs).expect("LFS snapshot")
}

fn replay_ffs(trace: &Trace, cfg: &ReplayConfig) -> Snapshot {
    let clock = Clock::new();
    let disk = SimDisk::new(DiskGeometry::tiny_test(16_384), Arc::clone(&clock));
    let core = EngineCore::new(disk, EngineConfig::default()).into_shared();
    let dev = EngineDisk::new(Rc::clone(&core));
    let registry = core.borrow().disk().obs().clone();
    let mut fs = Ffs::format(dev, FfsConfig::small_test(), clock).expect("format FFS");
    let report = replay(&mut fs, &core, &registry, trace, cfg).expect("FFS replay");
    check("ffs", &report, trace);
    let fsck = fs.fsck().expect("fsck");
    assert!(fsck.is_clean(), "FFS inconsistent after replay:\n{fsck}");
    snapshot(&mut fs).expect("FFS snapshot")
}

fn replay_model(trace: &Trace, cfg: &ReplayConfig) -> Snapshot {
    let clock = Clock::new();
    let disk = SimDisk::new(DiskGeometry::tiny_test(16_384), Arc::clone(&clock));
    let core = EngineCore::new(disk, EngineConfig::default()).into_shared();
    let registry = core.borrow().disk().obs().clone();
    let mut fs = ModelFs::new();
    let report = replay(&mut fs, &core, &registry, trace, cfg).expect("model replay");
    check("model", &report, trace);
    snapshot(&mut fs).expect("model snapshot")
}

/// LFS, FFS, and the model agree on the final tree for every generator,
/// with QoS both off and on (different dispatch orders, same edges).
#[test]
fn all_file_systems_reach_the_same_final_state() {
    for name in TRACE_NAMES {
        let trace = by_name(name, &GenSpec::small(3)).expect("known generator");
        for qos in [false, true] {
            let cfg = ReplayConfig::default().with_qos(qos);
            let model = replay_model(&trace, &cfg);
            assert!(
                model.iter().any(|(_, kind, ..)| *kind == FileKind::Regular),
                "{name}: trace created no files — equivalence would be vacuous"
            );
            let lfs = replay_lfs(&trace, &cfg);
            assert_eq!(
                lfs, model,
                "{name} (qos={qos}): LFS final state diverged from the model"
            );
            let ffs = replay_ffs(&trace, &cfg);
            assert_eq!(
                ffs, model,
                "{name} (qos={qos}): FFS final state diverged from the model"
            );
        }
    }
}

/// A parsed fixture replays identically to its in-memory generator
/// twin: text round-tripping does not perturb replay semantics.
#[test]
fn parsed_fixture_replays_like_the_generator() {
    let trace = by_name("office", &GenSpec::small(3)).expect("office");
    let reparsed = Trace::parse(&trace.to_text()).expect("round trip");
    let cfg = ReplayConfig::default().with_qos(true);
    assert_eq!(replay_model(&trace, &cfg), replay_model(&reparsed, &cfg));
}
