#![warn(missing_docs)]

//! Multi-tenant file-system trace infrastructure: format, dependency
//! graph, generators, and a QoS-aware discrete-event replay driver.
//!
//! Rosenblum & Ousterhout close §4.3.5 with the observation that "the
//! real test of a file system is its performance over months and years
//! of use" — microbenchmarks argue, traces decide. This crate is the
//! repo's trace front door:
//!
//! * [`format`] — the versioned `lfs-trace v1` text format: per-record
//!   client id, operation (the `workload::trace` line grammar), think
//!   time, and explicit happens-before dependency edges, plus per-tenant
//!   QoS directives. Parsing is total: malformed input yields a typed
//!   [`TraceError`], never a panic, and dependency cycles are rejected
//!   up front.
//! * [`graph`] — the dependency graph (explicit edges plus per-client
//!   program order) and its maximal parallel process sets, following
//!   `fs-bench`'s trace scheduler.
//! * [`generate`] — deterministic generators for the paper's §4.3.5
//!   office workload and three multi-tenant shapes: mail server
//!   (cross-tenant fan-out), build farm (fan-out plus a link-step
//!   fan-in), and Zipf-skewed hot-file churn (a latency probe under a
//!   flood).
//! * [`replay`] — a discrete-event dispatcher that replays a trace
//!   through any [`engine::RequestEngine`]-backed file system on the
//!   shared virtual clock, arbitrating the eligible set with the same
//!   [`engine::FairShare`] ledger the disk queue uses when QoS is on,
//!   and auditing every happens-before edge as it dispatches.

pub mod format;
pub mod generate;
pub mod graph;
pub mod replay;

pub use format::{Trace, TraceError, TraceRecord, FORMAT_VERSION, MAX_CLIENTS};
pub use generate::{build_farm, by_name, mail_server, office, zipf_churn, GenSpec, TRACE_NAMES};
pub use graph::DepGraph;
pub use replay::{
    percentile_ns, replay, snapshot, ReplayConfig, ReplayReport, TenantSummary,
};
