//! Trace generators: the paper's §4.3.5 office workload plus three
//! multi-tenant shapes (mail server, build farm, Zipf hot-file churn).
//!
//! Every generator is deterministic in its spec and emits a *determinate*
//! trace: any two operations that touch the same file are ordered by a
//! happens-before edge, so every dependency-respecting replay — whatever
//! the file system's latencies or the QoS policy's dispatch order —
//! reaches the same final namespace and contents. That property is what
//! the cross-fs replay-equivalence test leans on.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeMap;

use engine::{QosClass, QosSpec};
use workload::trace::TraceOp;

use crate::format::{Trace, TraceRecord};

/// Shared generator parameters.
#[derive(Debug, Clone)]
pub struct GenSpec {
    /// Number of tenants.
    pub clients: usize,
    /// Operations issued per tenant (setup records are extra).
    pub ops_per_client: usize,
    /// Target per-tenant working-set size in files (also the hot-set
    /// size for [`zipf_churn`]).
    pub working_set: usize,
    /// Maximum file size in bytes (paper: office files are < 8 KB).
    pub max_file_size: usize,
    /// RNG seed.
    pub seed: u64,
}

impl GenSpec {
    /// The default §4.3.5-scale shape: 8-KB-capped files over a
    /// moderate working set.
    pub fn new(clients: usize, ops_per_client: usize) -> Self {
        Self {
            clients,
            ops_per_client,
            working_set: 40,
            max_file_size: 8 * 1024,
            seed: 0x7E4CE,
        }
    }

    /// A scaled-down variant for tests and smoke runs.
    pub fn small(clients: usize) -> Self {
        Self {
            clients,
            ops_per_client: 30,
            working_set: 8,
            max_file_size: 2 * 1024,
            seed: 0x7E4CE,
        }
    }
}

/// Record-list builder: allocates ids and keeps the per-file
/// last-writer chain that makes traces determinate.
struct Builder {
    records: Vec<TraceRecord>,
    /// path → record id of its most recent create/write/truncate, the
    /// happens-before anchor for the next operation on that path.
    last_write: BTreeMap<String, u64>,
}

impl Builder {
    fn new() -> Self {
        Builder {
            records: Vec::new(),
            last_write: BTreeMap::new(),
        }
    }

    fn push(&mut self, client: usize, think_ns: u64, mut deps: Vec<u64>, op: TraceOp) -> u64 {
        let id = self.records.len() as u64;
        deps.sort_unstable();
        deps.dedup();
        self.records.push(TraceRecord {
            id,
            client,
            think_ns,
            deps,
            op,
        });
        id
    }

    /// Dependency on the last writer of `path`, if any.
    fn after_write(&self, path: &str) -> Vec<u64> {
        self.last_write.get(path).map(|&id| vec![id]).unwrap_or_default()
    }

    fn note_write(&mut self, path: &str, id: u64) {
        self.last_write.insert(path.to_string(), id);
    }

    fn finish(self, clients: usize) -> Trace {
        Trace {
            clients,
            qos: QosSpec::uniform(clients),
            records: self.records,
        }
    }
}

/// The §4.3.5 office/engineering workload, per tenant: a working set of
/// small short-lived files under the tenant's own directory, driven by a
/// seeded mix of creates, deletes, whole-file overwrites, and
/// whole-file reads. Tenants are disjoint in the namespace; the
/// dependency graph is each tenant's per-file create/overwrite chain.
pub fn office(spec: &GenSpec) -> Trace {
    let mut rng = StdRng::seed_from_u64(spec.seed);
    let mut b = Builder::new();
    for c in 0..spec.clients {
        let dir = b.push(c, 0, vec![], TraceOp::Mkdir(format!("/t{c}")));
        let mut live: Vec<String> = Vec::new();
        let mut serial = 0u64;
        for _ in 0..spec.ops_per_client {
            let think = rng.gen_range(250_000..=750_000u64);
            let roll: f64 = rng.gen();
            let create_bias = if live.len() < spec.working_set { 0.5 } else { 0.15 };
            if roll < create_bias || live.is_empty() {
                let size = rng.gen_range(256..=spec.max_file_size) as u32;
                let path = format!("/t{c}/doc{serial:05}");
                serial += 1;
                let create = b.push(c, think, vec![dir], TraceOp::Create(path.clone()));
                let write = b.push(
                    c,
                    0,
                    vec![create],
                    TraceOp::Write {
                        path: path.clone(),
                        offset: 0,
                        len: size,
                        seed: spec.seed ^ serial,
                    },
                );
                b.note_write(&path, write);
                live.push(path);
            } else if roll < create_bias + 0.15 {
                let victim = rng.gen_range(0..live.len());
                let path = live.swap_remove(victim);
                let deps = b.after_write(&path);
                let id = b.push(c, think, deps, TraceOp::Unlink(path.clone()));
                b.note_write(&path, id);
            } else if roll < create_bias + 0.35 {
                let target = rng.gen_range(0..live.len());
                let path = live[target].clone();
                let size = rng.gen_range(256..=spec.max_file_size) as u32;
                serial += 1;
                let deps = b.after_write(&path);
                let trunc = b.push(c, think, deps, TraceOp::Truncate { path: path.clone(), size: 0 });
                let write = b.push(
                    c,
                    0,
                    vec![trunc],
                    TraceOp::Write {
                        path: path.clone(),
                        offset: 0,
                        len: size,
                        seed: spec.seed ^ serial,
                    },
                );
                b.note_write(&path, write);
            } else {
                let target = rng.gen_range(0..live.len());
                let path = live[target].clone();
                let deps = b.after_write(&path);
                b.push(
                    c,
                    think,
                    deps,
                    TraceOp::Read {
                        path,
                        offset: 0,
                        len: spec.max_file_size as u32,
                    },
                );
            }
        }
        b.push(c, 0, vec![], TraceOp::Sync);
    }
    b.finish(spec.clients)
}

/// A mail server: tenant 0 is the delivery daemon appending messages to
/// per-user mailboxes; every other tenant is one user's reader, which
/// reads and then expunges its own messages. Each read carries a
/// cross-tenant happens-before edge on the delivery that produced the
/// message — the fan-out shape `fs-bench`-style schedulers exploit.
pub fn mail_server(spec: &GenSpec) -> Trace {
    let mut rng = StdRng::seed_from_u64(spec.seed ^ 0xA11);
    let mut b = Builder::new();
    let readers = spec.clients.saturating_sub(1).max(1);
    let root = b.push(0, 0, vec![], TraceOp::Mkdir("/mail".into()));
    let boxes: Vec<u64> = (0..readers)
        .map(|u| b.push(0, 0, vec![root], TraceOp::Mkdir(format!("/mail/user{u}"))))
        .collect();

    // Deliveries by tenant 0, round-robin over users.
    let mut delivered: Vec<Vec<(String, u64)>> = vec![Vec::new(); readers];
    for m in 0..spec.ops_per_client {
        let user = m % readers;
        let size = rng.gen_range(256..=spec.max_file_size) as u32;
        let path = format!("/mail/user{user}/m{m:05}");
        let create = b.push(0, rng.gen_range(100_000..=400_000), vec![boxes[user]], TraceOp::Create(path.clone()));
        let write = b.push(
            0,
            0,
            vec![create],
            TraceOp::Write {
                path: path.clone(),
                offset: 0,
                len: size,
                seed: spec.seed ^ m as u64,
            },
        );
        b.note_write(&path, write);
        delivered[user].push((path, write));
    }

    // Readers (tenants 1..): read their own messages, each with an
    // explicit edge on its delivery, then expunge two of every three —
    // the kept third is the archive the equivalence suite compares.
    if spec.clients > 1 {
        for (user, msgs) in delivered.iter().enumerate() {
            let tenant = user + 1;
            for (m, (path, write_id)) in msgs.iter().enumerate() {
                b.push(
                    tenant,
                    rng.gen_range(200_000..=600_000),
                    vec![*write_id],
                    TraceOp::Read {
                        path: path.clone(),
                        offset: 0,
                        len: spec.max_file_size as u32,
                    },
                );
                if m % 3 != 0 {
                    let unlink = b.push(tenant, 0, vec![*write_id], TraceOp::Unlink(path.clone()));
                    b.note_write(path, unlink);
                }
            }
        }
    }
    b.finish(spec.clients)
}

/// A build farm: tenant 0 seeds shared headers, every tenant compiles
/// its own object files (each compile reads headers — cross-tenant
/// fan-out), and tenant 0 links everything into one binary (fan-in on
/// every object write).
pub fn build_farm(spec: &GenSpec) -> Trace {
    let mut rng = StdRng::seed_from_u64(spec.seed ^ 0xB01D);
    let mut b = Builder::new();
    let src = b.push(0, 0, vec![], TraceOp::Mkdir("/src".into()));
    let obj = b.push(0, 0, vec![], TraceOp::Mkdir("/obj".into()));
    let nheaders = spec.working_set.clamp(2, 16);
    let mut headers = Vec::new();
    for h in 0..nheaders {
        let path = format!("/src/h{h:02}.h");
        let create = b.push(0, 0, vec![src], TraceOp::Create(path.clone()));
        let write = b.push(
            0,
            0,
            vec![create],
            TraceOp::Write {
                path: path.clone(),
                offset: 0,
                len: rng.gen_range(256..=spec.max_file_size) as u32,
                seed: spec.seed ^ h as u64,
            },
        );
        b.note_write(&path, write);
        headers.push(write);
    }

    let mut objects = Vec::new();
    for c in 0..spec.clients {
        for u in 0..spec.ops_per_client {
            // A compile: read a header (depending on its write — the
            // cross-tenant fan-out edge), emit one object.
            let think = rng.gen_range(100_000..=300_000u64);
            let h = rng.gen_range(0..nheaders);
            b.push(
                c,
                think,
                vec![headers[h]],
                TraceOp::Read {
                    path: format!("/src/h{h:02}.h"),
                    offset: 0,
                    len: spec.max_file_size as u32,
                },
            );
            let path = format!("/obj/o{c}_{u:04}.o");
            let create = b.push(c, 0, vec![obj], TraceOp::Create(path.clone()));
            let write = b.push(
                c,
                0,
                vec![create],
                TraceOp::Write {
                    path: path.clone(),
                    offset: 0,
                    len: rng.gen_range(512..=spec.max_file_size) as u32,
                    seed: spec.seed ^ (c as u64) << 16 ^ u as u64,
                },
            );
            b.note_write(&path, write);
            objects.push(write);
        }
    }

    // The link step: one big write depending on every object (fan-in).
    let link_create = b.push(0, 0, vec![obj], TraceOp::Create("/obj/app".into()));
    let mut link_deps = objects;
    link_deps.push(link_create);
    let link = b.push(
        0,
        0,
        link_deps,
        TraceOp::Write {
            path: "/obj/app".into(),
            offset: 0,
            len: (spec.max_file_size * 4) as u32,
            seed: spec.seed ^ 0x11AC,
        },
    );
    b.note_write("/obj/app", link);
    b.push(0, 0, vec![link], TraceOp::Sync);
    b.finish(spec.clients)
}

/// Zipf-skewed hot-file churn: tenant 0 is a latency-class probe doing
/// small paced reads across the whole hot set; every other tenant
/// floods its *own* ranked file set with zero-think whole-file
/// overwrites, skewed toward its hottest files (popularity of rank `r`
/// proportional to `1/(r+1)`).
///
/// Flooder file sets are disjoint, so each flooder's only
/// happens-before chain is its own program order — flooders stay
/// permanently backlogged and never stall on each other, which is what
/// makes the trace a clean proportional-share probe (a cross-tenant
/// write chain would cap a high-weight tenant at chain speed). Probe
/// reads carry an edge on the target file's last write, keeping the
/// trace determinate. Tenant 0 creates every file up front, so
/// [`Trace::filter_client`]`(0)` is a self-contained solo baseline.
pub fn zipf_churn(spec: &GenSpec) -> Trace {
    let mut rng = StdRng::seed_from_u64(spec.seed ^ 0x21FF);
    let mut b = Builder::new();
    let dir = b.push(0, 0, vec![], TraceOp::Mkdir("/hot".into()));
    let flooders = spec.clients.saturating_sub(1).max(1);
    let nfiles = spec.working_set.max(2);
    // Zipf(1) cumulative mass over ranks.
    let mass: Vec<f64> = (0..nfiles).map(|r| 1.0 / (r as f64 + 1.0)).collect();
    let total: f64 = mass.iter().sum();
    let mut paths: Vec<Vec<String>> = Vec::new();
    for f in 0..flooders {
        let mut set = Vec::new();
        for r in 0..nfiles {
            let path = format!("/hot/c{f}_f{r:03}");
            let create = b.push(0, 0, vec![dir], TraceOp::Create(path.clone()));
            let write = b.push(
                0,
                0,
                vec![create],
                TraceOp::Write {
                    path: path.clone(),
                    offset: 0,
                    len: spec.max_file_size as u32,
                    seed: spec.seed ^ (f as u64) << 10 ^ r as u64,
                },
            );
            b.note_write(&path, write);
            set.push(path);
        }
        paths.push(set);
    }
    let pick_zipf = move |rng: &mut StdRng| {
        let mut roll: f64 = rng.gen::<f64>() * total;
        for (r, m) in mass.iter().enumerate() {
            roll -= m;
            if roll <= 0.0 {
                return r;
            }
        }
        nfiles - 1
    };

    for u in 0..spec.ops_per_client {
        // The probe tenant: one small paced read per round, anywhere in
        // the hot set.
        let set = rng.gen_range(0..flooders);
        let path = paths[set][pick_zipf(&mut rng)].clone();
        let deps = b.after_write(&path);
        b.push(
            0,
            200_000,
            deps,
            TraceOp::Read {
                path,
                offset: 0,
                len: 1024.min(spec.max_file_size as u32),
            },
        );
        // The flooders: zero-think whole-file overwrites of their own
        // ranked set.
        for c in 1..spec.clients {
            let path = paths[c - 1][pick_zipf(&mut rng)].clone();
            let deps = b.after_write(&path);
            let write = b.push(
                c,
                0,
                deps,
                TraceOp::Write {
                    path: path.clone(),
                    offset: 0,
                    len: spec.max_file_size as u32,
                    seed: spec.seed ^ (c as u64) << 20 ^ u as u64,
                },
            );
            b.note_write(&path, write);
        }
    }
    let mut trace = b.finish(spec.clients);
    trace.qos = QosSpec::uniform(spec.clients).with_class(0, QosClass::Latency);
    trace
}

/// The generator catalogue, by stable name (bench sweeps iterate this).
pub const TRACE_NAMES: [&str; 4] = ["office", "mail", "build", "zipf"];

/// Generates the named trace, or `None` for an unknown name.
pub fn by_name(name: &str, spec: &GenSpec) -> Option<Trace> {
    match name {
        "office" => Some(office(spec)),
        "mail" => Some(mail_server(spec)),
        "build" => Some(build_farm(spec)),
        "zipf" => Some(zipf_churn(spec)),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::DepGraph;

    #[test]
    fn all_generators_emit_valid_round_tripping_traces() {
        let spec = GenSpec::small(3);
        for name in TRACE_NAMES {
            let trace = by_name(name, &spec).unwrap();
            assert!(!trace.records.is_empty(), "{name}: empty trace");
            assert_eq!(trace.clients, 3, "{name}");
            // Valid graph (build proves acyclicity) and exact text
            // round-trip.
            DepGraph::build(&trace).unwrap_or_else(|e| panic!("{name}: {e}"));
            let reparsed = Trace::parse(&trace.to_text()).unwrap_or_else(|e| panic!("{name}: {e}"));
            assert_eq!(reparsed, trace, "{name}: round-trip changed the trace");
        }
    }

    #[test]
    fn generators_are_deterministic() {
        let spec = GenSpec::small(2);
        for name in TRACE_NAMES {
            assert_eq!(
                by_name(name, &spec).unwrap(),
                by_name(name, &spec).unwrap(),
                "{name}"
            );
        }
    }

    #[test]
    fn mail_and_build_have_cross_tenant_edges() {
        let spec = GenSpec::small(3);
        for name in ["mail", "build"] {
            let trace = by_name(name, &spec).unwrap();
            let client_of: std::collections::BTreeMap<u64, usize> =
                trace.records.iter().map(|r| (r.id, r.client)).collect();
            let cross = trace
                .records
                .iter()
                .flat_map(|r| r.deps.iter().map(|d| (r.client, client_of[d])))
                .filter(|(a, b)| a != b)
                .count();
            assert!(cross > 0, "{name}: no cross-tenant happens-before edges");
        }
    }

    #[test]
    fn zipf_marks_the_probe_tenant_latency_class() {
        let trace = zipf_churn(&GenSpec::small(3));
        assert_eq!(trace.qos.tenant(0).class, QosClass::Latency);
        assert_eq!(trace.qos.tenant(1).class, QosClass::Bulk);
    }
}
