//! The QoS-aware discrete-event replay driver.
//!
//! The driver walks the trace's dependency graph, keeping every tenant's
//! next unblocked record as a candidate, and repeatedly dispatches one
//! record on the shared virtual clock: advance to the record's ready
//! time, pump the engine, attribute the operation to its tenant, apply
//! it to the file system, and unblock its successors. A record's ready
//! time is the latest finish among its happens-before predecessors
//! (explicit edges and program order) plus its think time.
//!
//! With QoS enabled the dispatcher arbitrates the eligible set with the
//! same [`FairShare`] ledger the disk queue uses: an op-level aging
//! bound first (no tenant waits forever), then latency class, then
//! lowest weighted virtual service time — so a 4×-weight tenant is
//! dispatched 4× as often while every tenant is backlogged, and the
//! engine-side ledger keeps a latency tenant's disk requests ahead of a
//! flooder's queued backlog. With QoS disabled the dispatcher is plain
//! earliest-ready-first, the closed-loop benches' discipline.
//!
//! Every dispatch checks its happens-before edges against recorded
//! finish times and counts them (`dep_edges_checked`), so an
//! equivalence test can assert both "no edge violated" and "edges were
//! actually exercised" (the vacuity guard).

use engine::{FairShare, RequestEngine};
use obs::Registry;
use vfs::{FileKind, FileSystem, FsResult};
use workload::trace::TraceOp;

use crate::format::{Trace, TraceError};
use crate::graph::DepGraph;

/// Replay knobs.
#[derive(Debug, Clone)]
pub struct ReplayConfig {
    /// Arbitrate dispatch (and the disk queue) with the trace's QoS
    /// spec; off = earliest-ready-first and a QoS-free queue.
    pub qos_enabled: bool,
    /// Op-level aging bound: an eligible record that has waited this
    /// long is dispatched next regardless of QoS.
    pub max_op_wait_ns: u64,
    /// Per-tenant latency histograms are emitted only when the trace
    /// has at most this many tenants.
    pub per_tenant_hists_max: usize,
}

impl Default for ReplayConfig {
    fn default() -> Self {
        Self {
            qos_enabled: false,
            max_op_wait_ns: 50_000_000,
            per_tenant_hists_max: 32,
        }
    }
}

impl ReplayConfig {
    /// Enables or disables QoS arbitration.
    pub fn with_qos(mut self, qos_enabled: bool) -> Self {
        self.qos_enabled = qos_enabled;
        self
    }
}

/// One tenant's replay outcome.
#[derive(Debug, Clone)]
pub struct TenantSummary {
    /// Tenant id.
    pub client: usize,
    /// Operations dispatched.
    pub ops: u64,
    /// Operations that returned an error (counted, not fatal).
    pub failed: u64,
    /// Bytes written by the tenant's `write` records.
    pub bytes_written: u64,
    /// Bytes requested by the tenant's `read` records.
    pub bytes_read: u64,
    /// Sum of operation service latencies, in nanoseconds.
    pub total_latency_ns: u64,
    /// Worst single operation latency, in nanoseconds.
    pub max_latency_ns: u64,
    /// Every operation latency, sorted ascending (exact percentiles).
    pub latencies_ns: Vec<u64>,
}

impl TenantSummary {
    /// Nearest-rank percentile over the exact latencies (0 when the
    /// tenant ran no operations).
    pub fn percentile_ns(&self, pct: f64) -> u64 {
        percentile_ns(&self.latencies_ns, pct)
    }

    /// The tenant's p99 operation latency.
    pub fn p99_ns(&self) -> u64 {
        self.percentile_ns(99.0)
    }

    /// Bytes moved (written + read) — the throughput-share unit the
    /// proportional-share assertions use.
    pub fn bytes_total(&self) -> u64 {
        self.bytes_written + self.bytes_read
    }
}

/// Outcome of one replay.
#[derive(Debug, Clone)]
pub struct ReplayReport {
    /// Virtual time from replay start to the closing sync.
    pub elapsed_ns: u64,
    /// Records dispatched (equals the trace's record count).
    pub total_ops: u64,
    /// Records whose operation returned an error.
    pub failed_ops: u64,
    /// Happens-before edges verified at dispatch (explicit + program
    /// order) — the vacuity guard for the equivalence suite.
    pub dep_edges_checked: u64,
    /// Edges whose predecessor had not finished by dispatch. Always 0
    /// for a correct scheduler; asserted by tests.
    pub dep_violations: u64,
    /// Per-tenant bytes moved at the *contended horizon* — the instant
    /// the first tenant finished its last record, while every tenant
    /// was still backlogged. A closed trace completes all of every
    /// tenant's work eventually, so proportional-share comparisons must
    /// be made here, not on end-of-run totals.
    pub contended_bytes: Vec<u64>,
    /// Virtual length of the contended window, in nanoseconds.
    pub contended_ns: u64,
    /// Per-tenant outcomes, indexed by tenant id.
    pub per_tenant: Vec<TenantSummary>,
}

impl ReplayReport {
    /// Aggregate operations per second of virtual time.
    pub fn ops_per_sec(&self) -> f64 {
        if self.elapsed_ns == 0 {
            return 0.0;
        }
        self.total_ops as f64 / (self.elapsed_ns as f64 / 1e9)
    }

    /// Tenant `c`'s share of total bytes moved, in [0, 1].
    pub fn bytes_share(&self, c: usize) -> f64 {
        let total: u64 = self.per_tenant.iter().map(TenantSummary::bytes_total).sum();
        if total == 0 {
            return 0.0;
        }
        self.per_tenant[c].bytes_total() as f64 / total as f64
    }

    /// Tenants `a`'s and `b`'s bytes over the contended window, as a
    /// ratio (`a / b`; infinity when `b` moved nothing).
    pub fn contended_ratio(&self, a: usize, b: usize) -> f64 {
        let bb = self.contended_bytes.get(b).copied().unwrap_or(0);
        if bb == 0 {
            return f64::INFINITY;
        }
        self.contended_bytes.get(a).copied().unwrap_or(0) as f64 / bb as f64
    }
}

/// Nearest-rank percentile of an ascending-sorted latency slice.
pub fn percentile_ns(sorted: &[u64], pct: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((pct / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

/// Replays `trace` against `fs` (mounted over `engine`'s queue),
/// recording per-tenant metrics under `trace.tNN.*` in `registry`.
///
/// The trace must already be valid (parse or generator output); a
/// malformed dependency graph is returned as its [`TraceError`].
pub fn replay<F: FileSystem + ?Sized>(
    fs: &mut F,
    engine: &impl RequestEngine,
    registry: &Registry,
    trace: &Trace,
    cfg: &ReplayConfig,
) -> Result<ReplayReport, TraceError> {
    let mut graph = DepGraph::build(trace)?;
    let n = trace.records.len();
    let clock = engine.clock();

    engine.set_client(None);
    engine.register_clients(trace.clients);
    engine.set_qos(cfg.qos_enabled.then(|| trace.qos.clone()));
    let mut fair = cfg.qos_enabled.then(|| FairShare::new(trace.qos.clone()));

    let agg_hist = registry.hist("trace.op_ns");
    let emit_hists = trace.clients <= cfg.per_tenant_hists_max;
    let tenant_hists: Vec<_> = (0..trace.clients)
        .map(|c| emit_hists.then(|| registry.hist(&format!("trace.t{c:02}.op_ns"))))
        .collect();
    let tenant_ops: Vec<_> = (0..trace.clients)
        .map(|c| registry.counter(&format!("trace.t{c:02}.ops")))
        .collect();
    let tenant_written: Vec<_> = (0..trace.clients)
        .map(|c| registry.counter(&format!("trace.t{c:02}.bytes_written")))
        .collect();
    let tenant_read: Vec<_> = (0..trace.clients)
        .map(|c| registry.counter(&format!("trace.t{c:02}.bytes_read")))
        .collect();

    let mut report = ReplayReport {
        elapsed_ns: 0,
        total_ops: 0,
        failed_ops: 0,
        dep_edges_checked: 0,
        dep_violations: 0,
        contended_bytes: vec![0; trace.clients],
        contended_ns: 0,
        per_tenant: (0..trace.clients)
            .map(|client| TenantSummary {
                client,
                ops: 0,
                failed: 0,
                bytes_written: 0,
                bytes_read: 0,
                total_latency_ns: 0,
                max_latency_ns: 0,
                latencies_ns: Vec::new(),
            })
            .collect(),
    };

    let start_ns = clock.now_ns();
    let mut finish_ns: Vec<Option<u64>> = vec![None; n];
    // Records left per tenant — the contended window closes when the
    // first (non-empty) tenant drains.
    let mut left: Vec<usize> = vec![0; trace.clients];
    for r in &trace.records {
        left[r.client] += 1;
    }
    let mut contended_open = true;
    while graph.remaining() > 0 {
        let available = graph.available_set();
        debug_assert!(!available.is_empty(), "valid graph with nothing available");
        // A record's ready time: latest predecessor finish plus think.
        let ready = |i: usize| -> u64 {
            let dep_horizon = graph.preds[i]
                .iter()
                .map(|&p| finish_ns[p].expect("available record with unfinished pred"))
                .max()
                .unwrap_or(start_ns);
            dep_horizon + trace.records[i].think_ns
        };
        let now = clock.now_ns();
        let horizon = available.iter().map(|&i| ready(i)).min().expect("non-empty");
        let now = now.max(horizon);
        let eligible: Vec<usize> = available
            .iter()
            .copied()
            .filter(|&i| ready(i) <= now)
            .collect();

        let picked = match fair.as_mut() {
            Some(fair) => {
                // Op-level aging first: QoS never starves a tenant.
                let oldest = eligible
                    .iter()
                    .copied()
                    .min_by_key(|&i| (ready(i), i))
                    .expect("non-empty eligible set");
                if now - ready(oldest) >= cfg.max_op_wait_ns {
                    oldest
                } else {
                    let tenant = fair
                        .pick(eligible.iter().map(|&i| trace.records[i].client))
                        .expect("non-empty eligible set");
                    eligible
                        .iter()
                        .copied()
                        .filter(|&i| trace.records[i].client == tenant)
                        .min_by_key(|&i| (ready(i), i))
                        .expect("picked tenant has an eligible record")
                }
            }
            None => eligible
                .into_iter()
                .min_by_key(|&i| (ready(i), i))
                .expect("non-empty eligible set"),
        };

        let record = &trace.records[picked];
        let dispatch_ns = now.max(ready(picked));
        clock.advance_to_ns(dispatch_ns);
        let _ = engine.pump();
        engine.set_client(Some(record.client));

        let begin_ns = clock.now_ns();
        // The happens-before audit: every predecessor must have finished
        // by the time this record starts.
        for &p in &graph.preds[picked] {
            report.dep_edges_checked += 1;
            if finish_ns[p].expect("checked pred unfinished") > begin_ns {
                report.dep_violations += 1;
            }
        }
        let ok = record.op.apply(fs).is_ok();
        let end_ns = clock.now_ns();
        let latency_ns = end_ns - begin_ns;

        let t = &mut report.per_tenant[record.client];
        t.ops += 1;
        if !ok {
            t.failed += 1;
            report.failed_ops += 1;
        }
        match &record.op {
            TraceOp::Write { len, .. } => t.bytes_written += *len as u64,
            TraceOp::Read { len, .. } => t.bytes_read += *len as u64,
            _ => {}
        }
        t.total_latency_ns += latency_ns;
        t.max_latency_ns = t.max_latency_ns.max(latency_ns);
        t.latencies_ns.push(latency_ns);
        report.total_ops += 1;

        agg_hist.record(latency_ns);
        if let Some(h) = &tenant_hists[record.client] {
            h.record(latency_ns);
        }
        tenant_ops[record.client].inc();
        match &record.op {
            TraceOp::Write { len, .. } => tenant_written[record.client].add(*len as u64),
            TraceOp::Read { len, .. } => tenant_read[record.client].add(*len as u64),
            _ => {}
        }

        if let Some(fair) = fair.as_mut() {
            // Charge the tenant its service time (floored so zero-cost
            // cached operations still consume fair share).
            fair.charge(record.client, latency_ns.max(1_000));
        }
        left[record.client] -= 1;
        if contended_open && left[record.client] == 0 {
            contended_open = false;
            report.contended_ns = end_ns - start_ns;
            for (c, t) in report.per_tenant.iter().enumerate() {
                report.contended_bytes[c] = t.bytes_total();
            }
        }
        finish_ns[picked] = Some(end_ns);
        graph.complete(picked);
    }

    // Close the measurement: everything queued reaches the platter.
    engine.set_client(None);
    let _ = fs.sync();
    engine.set_qos(None);
    report.elapsed_ns = clock.now_ns() - start_ns;
    for t in &mut report.per_tenant {
        t.latencies_ns.sort_unstable();
    }
    registry
        .gauge("trace.clients")
        .set(trace.clients as u64);
    registry
        .gauge("trace.dep_edges_checked")
        .set(report.dep_edges_checked);
    registry
        .gauge("trace.dep_violations")
        .set(report.dep_violations);
    Ok(report)
}

/// A deterministic digest of the file-system tree under `/`: every
/// path with its kind, size, and an FNV-1a hash of its contents,
/// sorted by path. Two file systems that replayed the same trace must
/// produce identical snapshots — the cross-fs equivalence check.
pub fn snapshot<F: FileSystem + ?Sized>(fs: &mut F) -> FsResult<Vec<(String, FileKind, u64, u64)>> {
    let mut out = Vec::new();
    let mut stack = vec!["/".to_string()];
    while let Some(dir) = stack.pop() {
        let mut entries = fs.readdir(&dir)?;
        entries.sort_by(|a, b| a.name.cmp(&b.name));
        for e in entries {
            let path = if dir == "/" {
                format!("/{}", e.name)
            } else {
                format!("{dir}/{}", e.name)
            };
            match e.kind {
                FileKind::Directory => {
                    out.push((path.clone(), FileKind::Directory, 0, 0));
                    stack.push(path);
                }
                FileKind::Regular => {
                    let data = fs.read_file(&path)?;
                    out.push((path, FileKind::Regular, data.len() as u64, fnv1a(&data)));
                }
            }
        }
    }
    out.sort();
    Ok(out)
}

fn fnv1a(data: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in data {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::{office, zipf_churn, GenSpec};
    use engine::{EngineConfig, EngineCore};
    use sim_disk::{Clock, DiskGeometry, SimDisk};
    use std::sync::Arc;
    use vfs::model::ModelFs;

    #[test]
    fn percentile_is_nearest_rank() {
        let sorted = vec![10, 20, 30, 40];
        assert_eq!(percentile_ns(&sorted, 50.0), 20);
        assert_eq!(percentile_ns(&sorted, 99.0), 40);
        assert_eq!(percentile_ns(&[], 99.0), 0);
    }

    /// Replay drives the model FS through a null engine wrapper: the
    /// model does no disk I/O, so the engine queue stays empty, but the
    /// dispatcher's graph walk and accounting are exercised end to end.
    fn rig() -> (ModelFs, std::rc::Rc<std::cell::RefCell<EngineCore>>, Registry) {
        let clock = Clock::new();
        let disk = SimDisk::new(DiskGeometry::tiny_test(16_384), Arc::clone(&clock));
        let core = EngineCore::new(disk, EngineConfig::default());
        let registry = core.disk().obs().clone();
        (ModelFs::new(), core.into_shared(), registry)
    }

    #[test]
    fn office_replay_visits_every_record_and_respects_edges() {
        let trace = office(&GenSpec::small(3));
        let (mut fs, core, registry) = rig();
        let report = replay(&mut fs, &core, &registry, &trace, &ReplayConfig::default()).unwrap();
        assert_eq!(report.total_ops, trace.records.len() as u64);
        assert_eq!(report.dep_violations, 0);
        assert!(report.dep_edges_checked > 0, "vacuous dependency audit");
        assert_eq!(report.failed_ops, 0);
    }

    #[test]
    fn qos_replay_is_deterministic() {
        let trace = zipf_churn(&GenSpec::small(3));
        let run = || {
            let (mut fs, core, registry) = rig();
            let cfg = ReplayConfig::default().with_qos(true);
            let report = replay(&mut fs, &core, &registry, &trace, &cfg).unwrap();
            (format!("{report:?}"), snapshot(&mut fs).unwrap())
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn snapshots_of_equal_trees_match() {
        let trace = office(&GenSpec::small(2));
        let (mut a, core_a, reg_a) = rig();
        let (mut b, core_b, reg_b) = rig();
        replay(&mut a, &core_a, &reg_a, &trace, &ReplayConfig::default()).unwrap();
        let cfg = ReplayConfig::default().with_qos(true);
        replay(&mut b, &core_b, &reg_b, &trace, &cfg).unwrap();
        // Same trace, different dispatch policies: determinate traces
        // end in the same place.
        assert_eq!(snapshot(&mut a).unwrap(), snapshot(&mut b).unwrap());
    }
}
