//! The happens-before dependency graph of a trace.
//!
//! Nodes are record positions; edges are the explicit `after` lists
//! plus one implicit program-order edge from each client's previous
//! record. A Kahn traversal yields the *maximal parallel process sets*
//! (following `fs-bench`'s trace scheduler): every record in one set is
//! mutually independent, so a replay may dispatch a whole set in any
//! order — which is exactly the freedom a QoS policy arbitrates.

use std::collections::BTreeMap;

use crate::format::{Trace, TraceError};

/// The dependency graph over one trace, in record positions.
#[derive(Debug, Clone)]
pub struct DepGraph {
    /// Record id → position, for edge lookups.
    pub index_of: BTreeMap<u64, usize>,
    /// Predecessors of each record (explicit deps + program order).
    pub preds: Vec<Vec<usize>>,
    /// Successors of each record.
    pub succs: Vec<Vec<usize>>,
    /// Unfinished-predecessor count, consumed by the replay scheduler.
    indegree: Vec<usize>,
    /// Records not yet marked complete.
    remaining: usize,
}

impl DepGraph {
    /// Builds the graph and proves it acyclic; a cycle — whether through
    /// explicit edges alone or through their interaction with program
    /// order — is a [`TraceError::CyclicDependency`].
    pub fn build(trace: &Trace) -> Result<DepGraph, TraceError> {
        let n = trace.records.len();
        let index_of: BTreeMap<u64, usize> = trace
            .records
            .iter()
            .enumerate()
            .map(|(i, r)| (r.id, i))
            .collect();
        let mut preds: Vec<Vec<usize>> = vec![Vec::new(); n];
        let mut last_of_client: BTreeMap<usize, usize> = BTreeMap::new();
        for (i, r) in trace.records.iter().enumerate() {
            for dep in &r.deps {
                preds[i].push(index_of[dep]);
            }
            if let Some(&prev) = last_of_client.get(&r.client) {
                if !preds[i].contains(&prev) {
                    preds[i].push(prev);
                }
            }
            last_of_client.insert(r.client, i);
        }
        let mut succs: Vec<Vec<usize>> = vec![Vec::new(); n];
        for (i, ps) in preds.iter().enumerate() {
            for &p in ps {
                succs[p].push(i);
            }
        }
        let indegree: Vec<usize> = preds.iter().map(Vec::len).collect();

        // Kahn's algorithm: if the peel does not consume every record,
        // what is left lies on a cycle.
        let mut degree = indegree.clone();
        let mut frontier: Vec<usize> = (0..n).filter(|&i| degree[i] == 0).collect();
        let mut peeled = 0usize;
        while let Some(i) = frontier.pop() {
            peeled += 1;
            for &s in &succs[i] {
                degree[s] -= 1;
                if degree[s] == 0 {
                    frontier.push(s);
                }
            }
        }
        if peeled < n {
            let stuck = (0..n).find(|&i| degree[i] > 0).expect("a stuck record");
            return Err(TraceError::CyclicDependency {
                id: trace.records[stuck].id,
            });
        }

        Ok(DepGraph {
            index_of,
            preds,
            succs,
            indegree,
            remaining: n,
        })
    }

    /// Records whose predecessors have all completed and that have not
    /// themselves completed: the current maximal parallel process set.
    pub fn available_set(&self) -> Vec<usize> {
        (0..self.indegree.len())
            .filter(|&i| self.indegree[i] == 0)
            .collect()
    }

    /// Marks record `i` complete, unblocking its successors.
    pub fn complete(&mut self, i: usize) {
        debug_assert_eq!(self.indegree[i], 0, "completing a blocked record");
        // A completed record never reappears in the available set.
        self.indegree[i] = usize::MAX;
        self.remaining -= 1;
        for s in self.succs[i].clone() {
            if self.indegree[s] != usize::MAX {
                self.indegree[s] -= 1;
            }
        }
    }

    /// Records not yet completed.
    pub fn remaining(&self) -> usize {
        self.remaining
    }

    /// The Kahn levels of the graph: level `k` holds every record whose
    /// longest dependency chain has `k` predecessors. Each level is one
    /// maximal parallel process set of a fresh replay.
    pub fn levels(trace: &Trace) -> Result<Vec<Vec<usize>>, TraceError> {
        let mut graph = DepGraph::build(trace)?;
        let mut levels = Vec::new();
        while graph.remaining() > 0 {
            let level = graph.available_set();
            debug_assert!(!level.is_empty(), "acyclic graph with empty level");
            for &i in &level {
                graph.complete(i);
            }
            levels.push(level);
        }
        Ok(levels)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> Trace {
        // Four clients so program order adds no extra edges: a diamond
        // 0 -> {1, 2} -> 3.
        Trace::parse(
            "lfs-trace v1\nclients 4\n\
             op 0 c0 t0 after - sync\n\
             op 1 c1 t0 after 0 sync\n\
             op 2 c2 t0 after 0 sync\n\
             op 3 c3 t0 after 1,2 sync\n",
        )
        .unwrap()
    }

    #[test]
    fn levels_are_maximal_parallel_sets() {
        let levels = DepGraph::levels(&diamond()).unwrap();
        assert_eq!(levels, vec![vec![0], vec![1, 2], vec![3]]);
    }

    #[test]
    fn available_set_tracks_completions() {
        let trace = diamond();
        let mut graph = DepGraph::build(&trace).unwrap();
        assert_eq!(graph.available_set(), vec![0]);
        graph.complete(0);
        assert_eq!(graph.available_set(), vec![1, 2]);
        graph.complete(2);
        assert_eq!(graph.available_set(), vec![1]);
        graph.complete(1);
        assert_eq!(graph.available_set(), vec![3]);
        graph.complete(3);
        assert_eq!(graph.remaining(), 0);
    }

    #[test]
    fn program_order_serializes_a_client() {
        // Two records of one client with no explicit edges still form
        // two levels.
        let trace = Trace::parse(
            "lfs-trace v1\nclients 1\nop 0 c0 t0 after - sync\nop 1 c0 t0 after - sync\n",
        )
        .unwrap();
        let levels = DepGraph::levels(&trace).unwrap();
        assert_eq!(levels, vec![vec![0], vec![1]]);
    }
}
