//! The `lfs-trace` format: a versioned, multi-tenant operation trace.
//!
//! A trace file is plain text. The first significant line is the header
//! `lfs-trace v1`; after it come directives, one per line, with `#`
//! comments and blank lines ignored:
//!
//! ```text
//! lfs-trace v1
//! clients 2
//! qos 0 weight 4 class bulk        # optional; default weight 1, bulk
//! qos 1 weight 1 class latency
//! op 0 c0 t0 after - mkdir /t0
//! op 1 c0 t500000 after 0 create /t0/doc
//! op 2 c1 t500000 after 1 read /t0/doc 0 4096
//! ```
//!
//! Each `op` record carries a unique id, the issuing client, a think
//! time (client-side delay before the operation becomes runnable), an
//! explicit happens-before dependency list (`-` for none), and the
//! operation itself in the [`workload::trace::TraceOp`] line grammar —
//! so the single-stream format stays a strict subset of this one.
//!
//! Besides the explicit edges, every record has an implicit
//! happens-before edge from the issuing client's previous record
//! (program order). [`Trace::parse`] validates the whole graph —
//! explicit and implicit edges together must be acyclic — and rejects
//! malformed input with a typed [`TraceError`], never a panic.

use std::fmt;

use engine::{QosClass, QosSpec};
use workload::trace::TraceOp;

use crate::graph::DepGraph;

/// Current format version (the `v1` of the header line).
pub const FORMAT_VERSION: u32 = 1;

/// Largest client count a trace may declare. Per-tenant QoS and replay
/// state is sized by this number at parse time, so it is a hard format
/// limit rather than a soft suggestion.
pub const MAX_CLIENTS: usize = 1 << 16;

/// Everything that can be wrong with a trace file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceError {
    /// The input does not start with an `lfs-trace` header line.
    BadHeader,
    /// The header names a version this parser does not speak.
    BadVersion(String),
    /// A directive line is missing a required field.
    MissingField {
        /// 1-based line number.
        line: usize,
        /// Which field was expected.
        what: &'static str,
    },
    /// A numeric field failed to parse.
    BadNumber {
        /// 1-based line number.
        line: usize,
    },
    /// A line starts with an unknown directive.
    UnknownDirective {
        /// 1-based line number.
        line: usize,
    },
    /// The embedded operation spec failed to parse.
    BadOp {
        /// 1-based line number.
        line: usize,
    },
    /// A `qos` line names an unknown class.
    BadQosClass {
        /// 1-based line number.
        line: usize,
    },
    /// A record's client id is outside `0..clients`.
    BadClient {
        /// 1-based line number.
        line: usize,
        /// The offending client id.
        client: usize,
    },
    /// The `clients` directive exceeds [`MAX_CLIENTS`] — per-tenant
    /// state is allocated eagerly, so an absurd count is rejected, not
    /// honoured.
    TooManyClients {
        /// 1-based line number.
        line: usize,
        /// The declared client count.
        clients: usize,
    },
    /// Two records share an id.
    DuplicateId {
        /// The repeated record id.
        id: u64,
    },
    /// A record depends on an id that is not in the trace.
    DanglingDependency {
        /// The depending record.
        id: u64,
        /// The missing dependency id.
        dep: u64,
    },
    /// A record depends on itself.
    SelfDependency {
        /// The offending record id.
        id: u64,
    },
    /// The dependency graph (explicit edges plus per-client program
    /// order) contains a cycle through this record.
    CyclicDependency {
        /// A record id on the cycle.
        id: u64,
    },
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceError::BadHeader => write!(f, "missing 'lfs-trace' header"),
            TraceError::BadVersion(v) => write!(f, "unsupported trace version '{v}'"),
            TraceError::MissingField { line, what } => {
                write!(f, "line {line}: missing {what}")
            }
            TraceError::BadNumber { line } => write!(f, "line {line}: bad number"),
            TraceError::UnknownDirective { line } => {
                write!(f, "line {line}: unknown directive")
            }
            TraceError::BadOp { line } => write!(f, "line {line}: bad operation spec"),
            TraceError::BadQosClass { line } => write!(f, "line {line}: bad qos class"),
            TraceError::BadClient { line, client } => {
                write!(f, "line {line}: client {client} out of range")
            }
            TraceError::TooManyClients { line, clients } => {
                write!(
                    f,
                    "line {line}: client count {clients} exceeds the limit {MAX_CLIENTS}"
                )
            }
            TraceError::DuplicateId { id } => write!(f, "duplicate record id {id}"),
            TraceError::DanglingDependency { id, dep } => {
                write!(f, "record {id} depends on unknown record {dep}")
            }
            TraceError::SelfDependency { id } => write!(f, "record {id} depends on itself"),
            TraceError::CyclicDependency { id } => {
                write!(f, "dependency cycle through record {id}")
            }
        }
    }
}

impl std::error::Error for TraceError {}

/// One trace record: an operation plus its scheduling envelope.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceRecord {
    /// Unique record id (referenced by dependency edges).
    pub id: u64,
    /// Issuing client (tenant), `0..trace.clients`.
    pub client: usize,
    /// Client-side think time before the operation becomes runnable,
    /// in virtual nanoseconds.
    pub think_ns: u64,
    /// Explicit happens-before dependencies: this record may not start
    /// until every listed record has finished.
    pub deps: Vec<u64>,
    /// The operation itself.
    pub op: TraceOp,
}

/// A parsed, validated trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Trace {
    /// Number of clients (tenants) the trace was recorded for.
    pub clients: usize,
    /// Per-tenant QoS parameters (weight 1, bulk unless a `qos` line
    /// says otherwise).
    pub qos: QosSpec,
    /// The records, in file order.
    pub records: Vec<TraceRecord>,
}

impl Trace {
    /// Parses and validates a trace. Rejects malformed input, unknown
    /// ids, and dependency cycles with a typed [`TraceError`].
    pub fn parse(text: &str) -> Result<Trace, TraceError> {
        let mut lines = text
            .lines()
            .enumerate()
            .map(|(i, l)| (i + 1, l.split('#').next().unwrap_or("").trim()))
            .filter(|(_, l)| !l.is_empty());

        let (_, header) = lines.next().ok_or(TraceError::BadHeader)?;
        let mut head = header.split_whitespace();
        if head.next() != Some("lfs-trace") {
            return Err(TraceError::BadHeader);
        }
        let version = head.next().unwrap_or("");
        if version != "v1" {
            return Err(TraceError::BadVersion(version.to_string()));
        }

        let mut clients = 0usize;
        let mut qos = QosSpec::default();
        let mut records = Vec::new();
        for (line, text) in lines {
            let mut fields = text.split_whitespace();
            match fields.next().unwrap() {
                "clients" => {
                    clients = parse_num(
                        fields.next().ok_or(TraceError::MissingField {
                            line,
                            what: "client count",
                        })?,
                        line,
                    )? as usize;
                    if clients > MAX_CLIENTS {
                        return Err(TraceError::TooManyClients { line, clients });
                    }
                    qos = QosSpec::uniform(clients);
                }
                "qos" => {
                    let c = parse_num(
                        fields.next().ok_or(TraceError::MissingField {
                            line,
                            what: "qos client",
                        })?,
                        line,
                    )? as usize;
                    if c >= clients {
                        return Err(TraceError::BadClient { line, client: c });
                    }
                    // `weight <w> class <name>` in either order, both
                    // optional.
                    while let Some(key) = fields.next() {
                        let value = fields.next().ok_or(TraceError::MissingField {
                            line,
                            what: "qos value",
                        })?;
                        match key {
                            "weight" => qos = qos.with_weight(c, parse_num(value, line)?),
                            "class" => {
                                let class = QosClass::parse(value)
                                    .ok_or(TraceError::BadQosClass { line })?;
                                qos = qos.with_class(c, class);
                            }
                            _ => return Err(TraceError::UnknownDirective { line }),
                        }
                    }
                }
                "op" => {
                    let id = parse_num(
                        fields.next().ok_or(TraceError::MissingField {
                            line,
                            what: "record id",
                        })?,
                        line,
                    )?;
                    let client_field = fields.next().ok_or(TraceError::MissingField {
                        line,
                        what: "client (cN)",
                    })?;
                    let client = parse_num(
                        client_field
                            .strip_prefix('c')
                            .ok_or(TraceError::MissingField {
                                line,
                                what: "client (cN)",
                            })?,
                        line,
                    )? as usize;
                    if client >= clients {
                        return Err(TraceError::BadClient { line, client });
                    }
                    let think_field = fields.next().ok_or(TraceError::MissingField {
                        line,
                        what: "think time (tN)",
                    })?;
                    let think_ns = parse_num(
                        think_field
                            .strip_prefix('t')
                            .ok_or(TraceError::MissingField {
                                line,
                                what: "think time (tN)",
                            })?,
                        line,
                    )?;
                    if fields.next() != Some("after") {
                        return Err(TraceError::MissingField {
                            line,
                            what: "'after' keyword",
                        });
                    }
                    let deps_field = fields.next().ok_or(TraceError::MissingField {
                        line,
                        what: "dependency list",
                    })?;
                    let deps = if deps_field == "-" {
                        Vec::new()
                    } else {
                        deps_field
                            .split(',')
                            .map(|d| parse_num(d, line))
                            .collect::<Result<Vec<_>, _>>()?
                    };
                    let op_text = fields.collect::<Vec<_>>().join(" ");
                    let op = TraceOp::parse_line(&op_text)
                        .ok()
                        .flatten()
                        .ok_or(TraceError::BadOp { line })?;
                    records.push(TraceRecord {
                        id,
                        client,
                        think_ns,
                        deps,
                        op,
                    });
                }
                _ => return Err(TraceError::UnknownDirective { line }),
            }
        }

        let trace = Trace {
            clients,
            qos,
            records,
        };
        trace.validate()?;
        Ok(trace)
    }

    /// [`Trace::parse`] over raw bytes: invalid UTF-8 is decoded lossily
    /// (replacement characters fail field parsing, never the process).
    pub fn parse_bytes(bytes: &[u8]) -> Result<Trace, TraceError> {
        Trace::parse(&String::from_utf8_lossy(bytes))
    }

    /// Validates record ids, dependency targets, and graph acyclicity
    /// (explicit edges plus per-client program order). `parse` runs
    /// this; call it directly on programmatically built traces.
    pub fn validate(&self) -> Result<(), TraceError> {
        let mut seen = std::collections::BTreeSet::new();
        for r in &self.records {
            if !seen.insert(r.id) {
                return Err(TraceError::DuplicateId { id: r.id });
            }
            if r.deps.contains(&r.id) {
                return Err(TraceError::SelfDependency { id: r.id });
            }
        }
        for r in &self.records {
            for &dep in &r.deps {
                if !seen.contains(&dep) {
                    return Err(TraceError::DanglingDependency { id: r.id, dep });
                }
            }
        }
        DepGraph::build(self).map(|_| ())
    }

    /// Serialises the trace in the `lfs-trace v1` grammar;
    /// [`Trace::parse`] round-trips the result exactly.
    pub fn to_text(&self) -> String {
        let mut out = format!("lfs-trace v{FORMAT_VERSION}\nclients {}\n", self.clients);
        for (c, t) in self.qos.tenants.iter().enumerate() {
            out.push_str(&format!(
                "qos {c} weight {} class {}\n",
                t.weight,
                t.class.name()
            ));
        }
        for r in &self.records {
            let deps = if r.deps.is_empty() {
                "-".to_string()
            } else {
                r.deps
                    .iter()
                    .map(u64::to_string)
                    .collect::<Vec<_>>()
                    .join(",")
            };
            out.push_str(&format!(
                "op {} c{} t{} after {deps} {}\n",
                r.id,
                r.client,
                r.think_ns,
                r.op.to_line()
            ));
        }
        out
    }

    /// The subset of the trace issued by `client`, renumbered as a
    /// single-tenant trace. Cross-client dependency edges are dropped
    /// (same-client edges are kept), giving the workload this tenant
    /// would run *alone* — the solo baseline for interference studies.
    pub fn filter_client(&self, client: usize) -> Trace {
        let keep: std::collections::BTreeSet<u64> = self
            .records
            .iter()
            .filter(|r| r.client == client)
            .map(|r| r.id)
            .collect();
        let records = self
            .records
            .iter()
            .filter(|r| r.client == client)
            .map(|r| TraceRecord {
                id: r.id,
                client: 0,
                think_ns: r.think_ns,
                deps: r.deps.iter().copied().filter(|d| keep.contains(d)).collect(),
                op: r.op.clone(),
            })
            .collect();
        Trace {
            clients: 1,
            qos: QosSpec::uniform(1),
            records,
        }
    }
}

fn parse_num(s: &str, line: usize) -> Result<u64, TraceError> {
    s.parse().map_err(|_| TraceError::BadNumber { line })
}

#[cfg(test)]
mod tests {
    use super::*;

    const SMALL: &str = "\
lfs-trace v1
clients 2
qos 0 weight 4 class bulk
qos 1 weight 1 class latency
op 0 c0 t0 after - mkdir /t0
op 1 c0 t1000 after 0 create /t0/f
op 2 c1 t1000 after 1 read /t0/f 0 0
";

    #[test]
    fn parses_and_round_trips() {
        let trace = Trace::parse(SMALL).unwrap();
        assert_eq!(trace.clients, 2);
        assert_eq!(trace.qos.tenant(0).weight, 4);
        assert_eq!(trace.qos.tenant(1).class, QosClass::Latency);
        assert_eq!(trace.records.len(), 3);
        assert_eq!(trace.records[2].deps, vec![1]);
        assert_eq!(Trace::parse(&trace.to_text()).unwrap(), trace);
    }

    #[test]
    fn rejects_bad_headers_and_versions() {
        assert_eq!(Trace::parse(""), Err(TraceError::BadHeader));
        assert_eq!(Trace::parse("hello\n"), Err(TraceError::BadHeader));
        assert_eq!(
            Trace::parse("lfs-trace v9\n"),
            Err(TraceError::BadVersion("v9".into()))
        );
    }

    #[test]
    fn rejects_graph_violations_with_typed_errors() {
        let dup = "lfs-trace v1\nclients 1\nop 0 c0 t0 after - sync\nop 0 c0 t0 after - sync\n";
        assert_eq!(Trace::parse(dup), Err(TraceError::DuplicateId { id: 0 }));
        let dangling = "lfs-trace v1\nclients 1\nop 0 c0 t0 after 7 sync\n";
        assert_eq!(
            Trace::parse(dangling),
            Err(TraceError::DanglingDependency { id: 0, dep: 7 })
        );
        let selfdep = "lfs-trace v1\nclients 1\nop 0 c0 t0 after 0 sync\n";
        assert_eq!(Trace::parse(selfdep), Err(TraceError::SelfDependency { id: 0 }));
        // Explicit cycle: 0 -> 1 -> 0 (two clients, so program order
        // does not already serialize them).
        let cycle =
            "lfs-trace v1\nclients 2\nop 0 c0 t0 after 1 sync\nop 1 c1 t0 after 0 sync\n";
        assert!(matches!(
            Trace::parse(cycle),
            Err(TraceError::CyclicDependency { .. })
        ));
        // Program-order cycle: record 0 of client 0 explicitly after
        // record 1 of client 0, but program order puts 0 first.
        let po_cycle =
            "lfs-trace v1\nclients 1\nop 0 c0 t0 after 1 sync\nop 1 c0 t0 after - sync\n";
        assert!(matches!(
            Trace::parse(po_cycle),
            Err(TraceError::CyclicDependency { .. })
        ));
    }

    #[test]
    fn rejects_out_of_range_clients_and_bad_ops() {
        let bad_client = "lfs-trace v1\nclients 1\nop 0 c3 t0 after - sync\n";
        assert_eq!(
            Trace::parse(bad_client),
            Err(TraceError::BadClient { line: 3, client: 3 })
        );
        let bad_op = "lfs-trace v1\nclients 1\nop 0 c0 t0 after - explode /x\n";
        assert_eq!(Trace::parse(bad_op), Err(TraceError::BadOp { line: 3 }));
    }

    #[test]
    fn filter_client_drops_cross_client_edges() {
        let trace = Trace::parse(SMALL).unwrap();
        let solo = trace.filter_client(1);
        assert_eq!(solo.clients, 1);
        assert_eq!(solo.records.len(), 1);
        assert!(solo.records[0].deps.is_empty(), "cross-client edge kept");
        solo.validate().unwrap();
    }
}
