//! Write-back policy: when should the file system start a segment write?

/// Why a write-back should start now (§4.3.5 of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WritebackTrigger {
    /// The cache has run short of clean blocks.
    CacheFull,
    /// Some dirty block has exceeded the age threshold.
    AgeThreshold,
}

/// Parameters governing when dirty data must leave the cache.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WritebackPolicy {
    /// Dirty blocks older than this (ns) trigger a write-back. The paper's
    /// implementation uses 30 seconds, "much like the delayed write-back
    /// policy of UNIX".
    pub age_threshold_ns: u64,
    /// Fraction of cache capacity that may be dirty before a write-back is
    /// forced (the "shortage of clean blocks" condition).
    pub dirty_high_water: f64,
}

impl WritebackPolicy {
    /// The paper's configuration: 30-second age threshold, write-back when
    /// three quarters of the cache is dirty.
    pub fn paper() -> Self {
        Self {
            age_threshold_ns: 30 * 1_000_000_000,
            dirty_high_water: 0.75,
        }
    }

    /// Returns a copy with a different age threshold, in seconds.
    pub fn with_age_secs(mut self, secs: f64) -> Self {
        self.age_threshold_ns = (secs * 1e9) as u64;
        self
    }
}

impl Default for WritebackPolicy {
    fn default() -> Self {
        Self::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_policy_is_thirty_seconds() {
        let policy = WritebackPolicy::paper();
        assert_eq!(policy.age_threshold_ns, 30_000_000_000);
        assert!(policy.dirty_high_water > 0.0 && policy.dirty_high_water < 1.0);
    }

    #[test]
    fn with_age_secs_converts() {
        let policy = WritebackPolicy::paper().with_age_secs(1.5);
        assert_eq!(policy.age_threshold_ns, 1_500_000_000);
    }
}
