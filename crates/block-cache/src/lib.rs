#![warn(missing_docs)]

//! The file cache both storage managers are built on.
//!
//! §4.1 of the paper: "Because all writes are asynchronous, LFS uses the
//! file cache as a write buffer that accumulates changes to the file system
//! and performs speed matching between the CPU and disk subsystem." The
//! same cache fronts the FFS baseline (SunOS had an equivalent), so the two
//! file systems differ only in *what they do at write-back time*.
//!
//! The cache is an LRU map from [`BlockKey`] to a block-sized buffer with a
//! dirty bit. Write-back is *initiated by the owning file system* when one
//! of the §4.3.5 triggers fires:
//!
//! * **Cache full** — too many dirty blocks relative to capacity.
//! * **Cache write-back** — some dirty block is older than the age
//!   threshold (30 seconds in the paper's implementation).
//! * **Sync request** — an explicit `sync`/`fsync` (driven by the FS, not
//!   by this crate).
//!
//! # Examples
//!
//! ```
//! use block_cache::{BlockCache, BlockKey, WritebackPolicy, WritebackTrigger};
//! use vfs::Ino;
//!
//! let mut cache = BlockCache::new(4096, 64, WritebackPolicy::paper());
//! let key = BlockKey::file(Ino(5), 0);
//! cache.insert_dirty(key, vec![0u8; 4096].into_boxed_slice(), 0);
//! assert_eq!(cache.dirty_count(), 1);
//!
//! // Thirty-one virtual seconds later, the age trigger fires.
//! assert_eq!(
//!     cache.writeback_trigger(31_000_000_000),
//!     Some(WritebackTrigger::AgeThreshold)
//! );
//! // The file system writes the block out and marks it clean.
//! cache.mark_clean(key);
//! assert_eq!(cache.writeback_trigger(31_000_000_000), None);
//! ```

pub mod cache;
pub mod key;
pub mod policy;

pub use cache::{BlockCache, CacheStats};
pub use key::{BlockKey, Owner};
pub use policy::{WritebackPolicy, WritebackTrigger};
