//! Cache block addressing.

use vfs::Ino;

/// Who a cached block belongs to.
///
/// File systems are free to define their own meaning for the `index` of a
/// [`BlockKey`]; e.g. LFS uses high index bits to distinguish a file's data
/// blocks from its indirect blocks, and uses [`Owner::Meta`] namespaces for
/// the inode map and segment usage table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Owner {
    /// A block of a regular file or directory.
    File(Ino),
    /// A file-system metadata namespace (meaning defined by the FS).
    Meta(u32),
}

/// Identifies one cached block: an owner plus an owner-defined index.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BlockKey {
    /// The owning object.
    pub owner: Owner,
    /// Owner-defined block index.
    pub index: u64,
}

impl BlockKey {
    /// Convenience constructor for a file data block.
    pub fn file(ino: Ino, index: u64) -> Self {
        Self {
            owner: Owner::File(ino),
            index,
        }
    }

    /// Convenience constructor for a metadata block.
    pub fn meta(namespace: u32, index: u64) -> Self {
        Self {
            owner: Owner::Meta(namespace),
            index,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keys_compare_by_owner_then_index() {
        let a = BlockKey::file(Ino(1), 0);
        let b = BlockKey::file(Ino(1), 1);
        let c = BlockKey::file(Ino(2), 0);
        assert!(a < b && b < c);
        assert_ne!(BlockKey::meta(0, 0), BlockKey::file(Ino(1), 0));
    }
}
