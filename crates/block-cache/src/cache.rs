//! The LRU block cache.

use std::collections::HashMap;

use crate::key::{BlockKey, Owner};
use crate::policy::{WritebackPolicy, WritebackTrigger};

#[derive(Debug)]
struct Slot {
    data: Box<[u8]>,
    dirty: bool,
    /// Virtual time at which the block first became dirty (ns).
    dirty_since_ns: u64,
    /// LRU stamp; larger is more recently used.
    used_tick: u64,
}

/// Aggregate cache counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups that found the block cached.
    pub hits: u64,
    /// Lookups that missed.
    pub misses: u64,
    /// Clean blocks evicted to make room.
    pub evictions: u64,
}

/// An LRU block cache with dirty tracking.
///
/// The cache never does I/O itself: the owning file system reads misses
/// from disk and decides when (and in what layout) dirty blocks are written
/// back. Dirty blocks are never evicted — the capacity bound is enforced
/// against *clean* blocks, and [`BlockCache::writeback_trigger`] tells the
/// file system when dirtiness itself demands action.
#[derive(Debug)]
pub struct BlockCache {
    slots: HashMap<BlockKey, Slot>,
    block_size: usize,
    capacity_blocks: usize,
    policy: WritebackPolicy,
    tick: u64,
    stats: CacheStats,
    /// Minimum `dirty_since_ns` over all dirty blocks (u64::MAX when none).
    oldest_dirty_ns: u64,
    dirty_count: usize,
    obs: CacheObs,
}

/// Registry-backed mirrors of [`CacheStats`], so cache behaviour shows up
/// in the stack-wide metrics report.
#[derive(Debug, Clone, Default)]
struct CacheObs {
    hits: obs::Counter,
    misses: obs::Counter,
    evictions: obs::Counter,
}

impl CacheObs {
    fn rehome(&mut self, registry: &obs::Registry) {
        self.hits = registry.adopt_counter("cache.hits", &self.hits);
        self.misses = registry.adopt_counter("cache.misses", &self.misses);
        self.evictions = registry.adopt_counter("cache.evictions", &self.evictions);
    }
}

impl BlockCache {
    /// Creates a cache holding up to `capacity_blocks` blocks of
    /// `block_size` bytes.
    ///
    /// # Panics
    ///
    /// Panics if either parameter is zero.
    pub fn new(block_size: usize, capacity_blocks: usize, policy: WritebackPolicy) -> Self {
        assert!(block_size > 0, "block size must be positive");
        assert!(capacity_blocks > 0, "capacity must be positive");
        Self {
            slots: HashMap::new(),
            block_size,
            capacity_blocks,
            policy,
            tick: 0,
            stats: CacheStats::default(),
            oldest_dirty_ns: u64::MAX,
            dirty_count: 0,
            obs: CacheObs::default(),
        }
    }

    /// Re-homes the cache's counters into a shared [`obs::Registry`];
    /// counts accumulated so far are carried over.
    pub fn attach_obs(&mut self, registry: &obs::Registry) {
        self.obs.rehome(registry);
    }

    /// Block size in bytes.
    pub fn block_size(&self) -> usize {
        self.block_size
    }

    /// Capacity in blocks.
    pub fn capacity_blocks(&self) -> usize {
        self.capacity_blocks
    }

    /// Number of cached blocks (clean + dirty).
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Returns true if nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Number of dirty blocks.
    pub fn dirty_count(&self) -> usize {
        self.dirty_count
    }

    /// Hit/miss/eviction counters.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// The active write-back policy.
    pub fn policy(&self) -> WritebackPolicy {
        self.policy
    }

    fn bump(&mut self) -> u64 {
        if self.tick == u64::MAX {
            self.rescale_ticks();
        }
        self.tick += 1;
        self.tick
    }

    /// Compacts LRU stamps to their rank order. Stamps grow by one per
    /// touch and never shrink, so after 2^64 touches the counter would
    /// wrap and corrupt recency order; on saturation remap the stamps to
    /// `1..=len`, preserving relative order, and continue from there.
    fn rescale_ticks(&mut self) {
        let mut order: Vec<(u64, BlockKey)> = self
            .slots
            .iter()
            .map(|(&key, slot)| (slot.used_tick, key))
            .collect();
        order.sort_unstable();
        for (rank, &(_, key)) in order.iter().enumerate() {
            self.slots.get_mut(&key).expect("key just listed").used_tick = rank as u64 + 1;
        }
        self.tick = self.slots.len() as u64;
    }

    /// Looks up a block, counting a hit or miss.
    pub fn get(&mut self, key: BlockKey) -> Option<&[u8]> {
        let tick = self.bump();
        match self.slots.get_mut(&key) {
            Some(slot) => {
                slot.used_tick = tick;
                self.stats.hits += 1;
                self.obs.hits.inc();
                Some(&slot.data)
            }
            None => {
                self.stats.misses += 1;
                self.obs.misses.inc();
                None
            }
        }
    }

    /// Returns true if the block is cached, without touching LRU or stats.
    pub fn contains(&self, key: BlockKey) -> bool {
        self.slots.contains_key(&key)
    }

    /// Returns true if the block is cached and dirty.
    pub fn is_dirty(&self, key: BlockKey) -> bool {
        self.slots.get(&key).is_some_and(|s| s.dirty)
    }

    /// Looks up a block for modification, marking it dirty.
    pub fn get_mut(&mut self, key: BlockKey, now_ns: u64) -> Option<&mut [u8]> {
        let tick = self.bump();
        match self.slots.get_mut(&key) {
            Some(slot) => {
                slot.used_tick = tick;
                if !slot.dirty {
                    slot.dirty = true;
                    slot.dirty_since_ns = now_ns;
                    self.dirty_count += 1;
                    self.oldest_dirty_ns = self.oldest_dirty_ns.min(now_ns);
                }
                self.stats.hits += 1;
                self.obs.hits.inc();
                Some(&mut slot.data)
            }
            None => {
                self.stats.misses += 1;
                self.obs.misses.inc();
                None
            }
        }
    }

    fn insert_slot(&mut self, key: BlockKey, data: Box<[u8]>, dirty: bool, now_ns: u64) {
        assert_eq!(data.len(), self.block_size, "cached block has wrong size");
        self.evict_for_insert();
        let tick = self.bump();
        let old = self.slots.insert(
            key,
            Slot {
                data,
                dirty,
                dirty_since_ns: if dirty { now_ns } else { u64::MAX },
                used_tick: tick,
            },
        );
        if let Some(old) = old {
            if old.dirty {
                self.dirty_count -= 1;
                if self.dirty_count == 0 {
                    self.oldest_dirty_ns = u64::MAX;
                }
            }
        }
        if dirty {
            self.dirty_count += 1;
            self.oldest_dirty_ns = self.oldest_dirty_ns.min(now_ns);
        }
    }

    /// Inserts a block read from disk (clean).
    pub fn insert_clean(&mut self, key: BlockKey, data: Box<[u8]>) {
        self.insert_slot(key, data, false, 0);
    }

    /// Inserts a freshly written block (dirty as of `now_ns`).
    pub fn insert_dirty(&mut self, key: BlockKey, data: Box<[u8]>, now_ns: u64) {
        self.insert_slot(key, data, true, now_ns);
    }

    /// Evicts least-recently-used *clean* blocks until below capacity.
    fn evict_for_insert(&mut self) {
        while self.slots.len() >= self.capacity_blocks {
            let victim = self
                .slots
                .iter()
                .filter(|(_, slot)| !slot.dirty)
                .min_by_key(|(_, slot)| slot.used_tick)
                .map(|(&key, _)| key);
            match victim {
                Some(key) => {
                    self.slots.remove(&key);
                    self.stats.evictions += 1;
                    self.obs.evictions.inc();
                }
                // Everything is dirty: allow the cache to overflow. The
                // CacheFull trigger tells the FS to write back.
                None => break,
            }
        }
    }

    /// Marks a block clean after it has been written to disk.
    ///
    /// No-op if the block is absent or already clean.
    pub fn mark_clean(&mut self, key: BlockKey) {
        if let Some(slot) = self.slots.get_mut(&key) {
            if slot.dirty {
                slot.dirty = false;
                slot.dirty_since_ns = u64::MAX;
                self.dirty_count -= 1;
                if self.dirty_count == 0 {
                    self.oldest_dirty_ns = u64::MAX;
                }
            }
        }
    }

    /// Removes a block entirely (e.g. the file was deleted). Returns true
    /// if it was present.
    pub fn remove(&mut self, key: BlockKey) -> bool {
        match self.slots.remove(&key) {
            Some(slot) => {
                if slot.dirty {
                    self.dirty_count -= 1;
                    if self.dirty_count == 0 {
                        self.oldest_dirty_ns = u64::MAX;
                    }
                }
                true
            }
            None => false,
        }
    }

    /// Removes every block belonging to `owner` (deleted file). Dirty
    /// blocks are discarded too — their data is dead.
    pub fn remove_owner(&mut self, owner: Owner) {
        let keys: Vec<BlockKey> = self
            .slots
            .keys()
            .filter(|k| k.owner == owner)
            .copied()
            .collect();
        for key in keys {
            self.remove(key);
        }
    }

    /// Removes keys of `owner` with `index >= first_index` (truncation).
    pub fn remove_owner_from(&mut self, owner: Owner, first_index: u64) {
        let keys: Vec<BlockKey> = self
            .slots
            .keys()
            .filter(|k| k.owner == owner && k.index >= first_index)
            .copied()
            .collect();
        for key in keys {
            self.remove(key);
        }
    }

    /// Removes keys of `owner` with `lo <= index < hi` (e.g. purging
    /// address-keyed metadata blocks when a disk region is reused).
    pub fn remove_owner_index_range(&mut self, owner: Owner, lo: u64, hi: u64) {
        let keys: Vec<BlockKey> = self
            .slots
            .keys()
            .filter(|k| k.owner == owner && k.index >= lo && k.index < hi)
            .copied()
            .collect();
        for key in keys {
            self.remove(key);
        }
    }

    /// Drops all clean blocks (the benchmark "flush the file cache" step).
    pub fn drop_clean(&mut self) {
        self.slots.retain(|_, slot| slot.dirty);
    }

    /// Returns the keys of all dirty blocks, sorted for deterministic
    /// write-back order (by owner, then index).
    pub fn dirty_keys(&self) -> Vec<BlockKey> {
        let mut keys: Vec<BlockKey> = self
            .slots
            .iter()
            .filter(|(_, slot)| slot.dirty)
            .map(|(&key, _)| key)
            .collect();
        keys.sort();
        keys
    }

    /// Returns dirty keys of a single owner, sorted by index.
    pub fn dirty_keys_of(&self, owner: Owner) -> Vec<BlockKey> {
        let mut keys: Vec<BlockKey> = self
            .slots
            .iter()
            .filter(|(key, slot)| slot.dirty && key.owner == owner)
            .map(|(&key, _)| key)
            .collect();
        keys.sort();
        keys
    }

    /// Returns dirty keys whose dirty age exceeds the policy threshold.
    pub fn dirty_keys_older_than(&self, now_ns: u64) -> Vec<BlockKey> {
        let cutoff = now_ns.saturating_sub(self.policy.age_threshold_ns);
        let mut keys: Vec<BlockKey> = self
            .slots
            .iter()
            .filter(|(_, slot)| slot.dirty && slot.dirty_since_ns <= cutoff)
            .map(|(&key, _)| key)
            .collect();
        keys.sort();
        keys
    }

    /// Checks whether the file system should start a write-back now.
    pub fn writeback_trigger(&self, now_ns: u64) -> Option<WritebackTrigger> {
        let high_water = (self.capacity_blocks as f64 * self.policy.dirty_high_water) as usize;
        if self.dirty_count >= high_water.max(1) {
            return Some(WritebackTrigger::CacheFull);
        }
        if self.oldest_dirty_ns != u64::MAX
            && now_ns.saturating_sub(self.oldest_dirty_ns) >= self.policy.age_threshold_ns
        {
            return Some(WritebackTrigger::AgeThreshold);
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vfs::Ino;

    const BS: usize = 64;

    fn cache(capacity: usize) -> BlockCache {
        BlockCache::new(BS, capacity, WritebackPolicy::paper())
    }

    fn block(fill: u8) -> Box<[u8]> {
        vec![fill; BS].into_boxed_slice()
    }

    #[test]
    fn insert_and_get() {
        let mut c = cache(4);
        let key = BlockKey::file(Ino(1), 0);
        c.insert_clean(key, block(7));
        assert_eq!(c.get(key).unwrap()[0], 7);
        assert_eq!(c.stats().hits, 1);
        assert!(c.get(BlockKey::file(Ino(1), 1)).is_none());
        assert_eq!(c.stats().misses, 1);
    }

    #[test]
    #[should_panic(expected = "wrong size")]
    fn rejects_misssized_blocks() {
        let mut c = cache(4);
        c.insert_clean(
            BlockKey::file(Ino(1), 0),
            vec![0; BS + 1].into_boxed_slice(),
        );
    }

    #[test]
    fn lru_evicts_least_recent_clean() {
        let mut c = cache(2);
        let a = BlockKey::file(Ino(1), 0);
        let b = BlockKey::file(Ino(1), 1);
        let d = BlockKey::file(Ino(1), 2);
        c.insert_clean(a, block(1));
        c.insert_clean(b, block(2));
        // Touch `a` so `b` is least recently used.
        c.get(a);
        c.insert_clean(d, block(3));
        assert!(c.contains(a));
        assert!(!c.contains(b));
        assert!(c.contains(d));
        assert_eq!(c.stats().evictions, 1);
    }

    #[test]
    fn dirty_blocks_are_never_evicted() {
        let mut c = cache(2);
        let a = BlockKey::file(Ino(1), 0);
        let b = BlockKey::file(Ino(1), 1);
        c.insert_dirty(a, block(1), 100);
        c.insert_dirty(b, block(2), 200);
        // Cache is at capacity with only dirty blocks; inserting overflows
        // rather than dropping dirty data.
        c.insert_clean(BlockKey::file(Ino(1), 2), block(3));
        assert!(c.contains(a) && c.contains(b));
        assert_eq!(c.len(), 3);
    }

    #[test]
    fn get_mut_marks_dirty_once() {
        let mut c = cache(4);
        let key = BlockKey::file(Ino(1), 0);
        c.insert_clean(key, block(0));
        assert_eq!(c.dirty_count(), 0);
        c.get_mut(key, 500).unwrap()[0] = 9;
        assert_eq!(c.dirty_count(), 1);
        // A second modification does not double-count.
        c.get_mut(key, 900).unwrap()[1] = 9;
        assert_eq!(c.dirty_count(), 1);
        assert!(c.is_dirty(key));
    }

    #[test]
    fn mark_clean_clears_dirty_state() {
        let mut c = cache(4);
        let key = BlockKey::file(Ino(1), 0);
        c.insert_dirty(key, block(1), 100);
        c.mark_clean(key);
        assert_eq!(c.dirty_count(), 0);
        assert!(!c.is_dirty(key));
        assert_eq!(c.writeback_trigger(u64::MAX), None);
    }

    #[test]
    fn writeback_triggers_on_age() {
        let mut c = BlockCache::new(BS, 100, WritebackPolicy::paper().with_age_secs(30.0));
        let key = BlockKey::file(Ino(1), 0);
        c.insert_dirty(key, block(1), 1_000);
        assert_eq!(c.writeback_trigger(1_000), None);
        assert_eq!(
            c.writeback_trigger(1_000 + 30_000_000_000),
            Some(WritebackTrigger::AgeThreshold)
        );
    }

    #[test]
    fn writeback_triggers_on_pressure() {
        let mut c = cache(4); // High water at 3 dirty blocks.
        for i in 0..3 {
            c.insert_dirty(BlockKey::file(Ino(1), i), block(i as u8), 0);
        }
        assert_eq!(c.writeback_trigger(0), Some(WritebackTrigger::CacheFull));
    }

    #[test]
    fn dirty_keys_are_sorted_and_filtered() {
        let mut c = cache(10);
        c.insert_dirty(BlockKey::file(Ino(2), 1), block(0), 0);
        c.insert_dirty(BlockKey::file(Ino(1), 5), block(0), 0);
        c.insert_dirty(BlockKey::file(Ino(1), 2), block(0), 0);
        c.insert_clean(BlockKey::file(Ino(3), 0), block(0));
        let keys = c.dirty_keys();
        assert_eq!(
            keys,
            vec![
                BlockKey::file(Ino(1), 2),
                BlockKey::file(Ino(1), 5),
                BlockKey::file(Ino(2), 1),
            ]
        );
        assert_eq!(c.dirty_keys_of(Owner::File(Ino(1))).len(), 2);
    }

    #[test]
    fn dirty_keys_older_than_uses_threshold() {
        let mut c = BlockCache::new(BS, 100, WritebackPolicy::paper().with_age_secs(1.0));
        c.insert_dirty(BlockKey::file(Ino(1), 0), block(0), 0);
        c.insert_dirty(BlockKey::file(Ino(1), 1), block(0), 2_000_000_000);
        let old = c.dirty_keys_older_than(2_500_000_000);
        assert_eq!(old, vec![BlockKey::file(Ino(1), 0)]);
    }

    #[test]
    fn remove_owner_discards_all_blocks() {
        let mut c = cache(10);
        c.insert_dirty(BlockKey::file(Ino(1), 0), block(0), 0);
        c.insert_dirty(BlockKey::file(Ino(1), 7), block(0), 0);
        c.insert_clean(BlockKey::file(Ino(2), 0), block(0));
        c.remove_owner(Owner::File(Ino(1)));
        assert_eq!(c.len(), 1);
        assert_eq!(c.dirty_count(), 0);
    }

    #[test]
    fn remove_owner_from_truncates() {
        let mut c = cache(10);
        for i in 0..5 {
            c.insert_clean(BlockKey::file(Ino(1), i), block(0));
        }
        c.remove_owner_from(Owner::File(Ino(1)), 2);
        assert!(c.contains(BlockKey::file(Ino(1), 1)));
        assert!(!c.contains(BlockKey::file(Ino(1), 2)));
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn drop_clean_keeps_dirty() {
        let mut c = cache(10);
        c.insert_clean(BlockKey::file(Ino(1), 0), block(0));
        c.insert_dirty(BlockKey::file(Ino(1), 1), block(0), 0);
        c.drop_clean();
        assert_eq!(c.len(), 1);
        assert!(c.is_dirty(BlockKey::file(Ino(1), 1)));
    }

    #[test]
    fn lru_stamps_rescale_at_overflow() {
        let mut c = cache(2);
        let a = BlockKey::file(Ino(1), 0);
        let b = BlockKey::file(Ino(1), 1);
        let d = BlockKey::file(Ino(1), 2);
        c.insert_clean(a, block(1));
        c.insert_clean(b, block(2));
        // Simulate ~2^64 touches having happened.
        c.tick = u64::MAX - 1;
        c.get(a); // stamps `a` with u64::MAX
        c.get(b); // must rescale instead of wrapping to 0
        assert!(c.tick < 100, "stamps were not compacted");
        // Recency order survived the rescale: `a` is older than `b`.
        c.insert_clean(d, block(3));
        assert!(!c.contains(a), "LRU order corrupted by rescale");
        assert!(c.contains(b) && c.contains(d));
    }

    #[test]
    fn replacing_the_only_dirty_block_resets_age_trigger() {
        let mut c = cache(4);
        let key = BlockKey::file(Ino(1), 0);
        c.insert_dirty(key, block(1), 100);
        // Overwrite the dirty block with clean contents: no dirty blocks
        // remain, so the age trigger must not fire even at huge times.
        c.insert_clean(key, block(2));
        assert_eq!(c.dirty_count(), 0);
        assert_eq!(c.writeback_trigger(u64::MAX), None);
    }

    #[test]
    fn oldest_dirty_resets_when_all_clean() {
        let mut c = cache(10);
        let key = BlockKey::file(Ino(1), 0);
        c.insert_dirty(key, block(0), 100);
        c.remove(key);
        // No dirty blocks: age trigger must not fire even at huge times.
        assert_eq!(c.writeback_trigger(u64::MAX), None);
    }
}
