//! Property tests for the block cache: agreement with a naive reference
//! model, and the invariants write-back correctness depends on.

use std::collections::HashMap;

use proptest::prelude::*;

use block_cache::{BlockCache, BlockKey, Owner, WritebackPolicy};
use vfs::Ino;

#[derive(Debug, Clone)]
enum Op {
    InsertClean {
        ino: u8,
        index: u8,
        fill: u8,
    },
    InsertDirty {
        ino: u8,
        index: u8,
        fill: u8,
        at: u32,
    },
    GetMut {
        ino: u8,
        index: u8,
        at: u32,
    },
    MarkClean {
        ino: u8,
        index: u8,
    },
    Remove {
        ino: u8,
        index: u8,
    },
    RemoveOwner {
        ino: u8,
    },
    DropClean,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (1u8..5, 0u8..12, any::<u8>()).prop_map(|(ino, index, fill)| Op::InsertClean {
            ino,
            index,
            fill
        }),
        (1u8..5, 0u8..12, any::<u8>(), any::<u32>()).prop_map(|(ino, index, fill, at)| {
            Op::InsertDirty {
                ino,
                index,
                fill,
                at,
            }
        }),
        (1u8..5, 0u8..12, any::<u32>()).prop_map(|(ino, index, at)| Op::GetMut { ino, index, at }),
        (1u8..5, 0u8..12).prop_map(|(ino, index)| Op::MarkClean { ino, index }),
        (1u8..5, 0u8..12).prop_map(|(ino, index)| Op::Remove { ino, index }),
        (1u8..5).prop_map(|ino| Op::RemoveOwner { ino }),
        Just(Op::DropClean),
    ]
}

const BS: usize = 32;

fn key(ino: u8, index: u8) -> BlockKey {
    BlockKey::file(Ino(ino as u32), index as u64)
}

proptest! {
    /// The cache must agree with a reference map on membership, dirtiness
    /// and contents of every *dirty* block (clean blocks may be evicted).
    #[test]
    fn agrees_with_reference_model(ops in proptest::collection::vec(op_strategy(), 1..120)) {
        let mut cache = BlockCache::new(BS, 16, WritebackPolicy::paper());
        // Reference: key -> (data, dirty).
        let mut reference: HashMap<BlockKey, (Vec<u8>, bool)> = HashMap::new();

        for op in &ops {
            match *op {
                Op::InsertClean { ino, index, fill } => {
                    cache.insert_clean(key(ino, index), vec![fill; BS].into_boxed_slice());
                    reference.insert(key(ino, index), (vec![fill; BS], false));
                }
                Op::InsertDirty { ino, index, fill, at } => {
                    cache.insert_dirty(key(ino, index), vec![fill; BS].into_boxed_slice(), at as u64);
                    reference.insert(key(ino, index), (vec![fill; BS], true));
                }
                Op::GetMut { ino, index, at } => {
                    let in_cache = cache.get_mut(key(ino, index), at as u64).is_some();
                    if let Some((_, dirty)) = reference.get_mut(&key(ino, index)) {
                        // A reference entry may have been evicted if clean.
                        if in_cache {
                            *dirty = true;
                        } else {
                            reference.remove(&key(ino, index));
                        }
                    }
                }
                Op::MarkClean { ino, index } => {
                    cache.mark_clean(key(ino, index));
                    if let Some((_, dirty)) = reference.get_mut(&key(ino, index)) {
                        *dirty = false;
                    }
                }
                Op::Remove { ino, index } => {
                    cache.remove(key(ino, index));
                    reference.remove(&key(ino, index));
                }
                Op::RemoveOwner { ino } => {
                    cache.remove_owner(Owner::File(Ino(ino as u32)));
                    reference.retain(|k, _| k.owner != Owner::File(Ino(ino as u32)));
                }
                Op::DropClean => {
                    cache.drop_clean();
                    reference.retain(|_, (_, dirty)| *dirty);
                }
            }

            // Invariant: every dirty reference block is present with the
            // right contents (dirty blocks are never evicted).
            for (k, (data, dirty)) in &reference {
                if *dirty {
                    prop_assert!(cache.is_dirty(*k), "dirty {k:?} missing");
                    prop_assert_eq!(
                        cache.get(*k).unwrap(), &data[..],
                        "dirty {:?} has wrong contents", k
                    );
                }
            }
            // Invariant: the cache never claims dirtiness the model lost.
            let model_dirty = reference.values().filter(|(_, d)| *d).count();
            prop_assert_eq!(cache.dirty_count(), model_dirty);
            // Invariant: dirty_keys is sorted and matches the model.
            let keys = cache.dirty_keys();
            let mut sorted = keys.clone();
            sorted.sort();
            prop_assert_eq!(&keys, &sorted);
            prop_assert_eq!(keys.len(), model_dirty);
        }
    }

    /// Capacity is respected whenever enough clean blocks exist to evict.
    #[test]
    fn capacity_bounds_clean_blocks(inserts in 1usize..200) {
        let mut cache = BlockCache::new(BS, 16, WritebackPolicy::paper());
        for i in 0..inserts {
            cache.insert_clean(
                BlockKey::file(Ino(1), i as u64),
                vec![0u8; BS].into_boxed_slice(),
            );
        }
        prop_assert!(cache.len() <= 16);
    }

    /// An all-dirty cache overflows rather than dropping data.
    #[test]
    fn dirty_overflow_preserves_all(inserts in 17usize..64) {
        let mut cache = BlockCache::new(BS, 16, WritebackPolicy::paper());
        for i in 0..inserts {
            cache.insert_dirty(
                BlockKey::file(Ino(1), i as u64),
                vec![i as u8; BS].into_boxed_slice(),
                0,
            );
        }
        prop_assert_eq!(cache.len(), inserts);
        for i in 0..inserts {
            prop_assert_eq!(
                cache.get(BlockKey::file(Ino(1), i as u64)).unwrap()[0],
                i as u8
            );
        }
    }
}
