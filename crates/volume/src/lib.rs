//! Multi-spindle striped volumes.
//!
//! The paper's log-structured design turns the file system's write
//! stream into large sequential segment writes — exactly the pattern
//! that scales with the number of spindles, because consecutive
//! segments can land on different disks whose mechanical work overlaps
//! in time. This crate provides that scaling layer: a [`StripedVolume`]
//! owning N independent simulated spindles (each with its own
//! mechanical model and request engine, all on one virtual clock)
//! behind the same [`sim_disk::BlockDevice`] trait the file systems
//! already mount, so LFS, FFS, the multi-client engine, and the
//! crash/fault harnesses run unchanged on 1..N disks.
//!
//! Four striping policies are provided (see [`policy`]):
//! segment-granular round-robin — the natural match for LFS, keeping
//! each spindle purely sequential — classic RAID-0 block interleave
//! with a configurable chunk size, and two parity-keeping variants
//! ([`ParitySegment`], [`ParityRotate`]) that survive the loss of any
//! one spindle: reads reconstruct by XOR across the survivors and a
//! swapped-in replacement is rebuilt online (see [`rebuild`]).

#![warn(missing_docs)]

pub mod health;
pub mod policy;
pub mod rebuild;
pub mod volume;

pub use health::{HealthEvent, HealthMonitor, HealthPolicy, HealthState};
pub use policy::{
    split_request, to_logical, BlockInterleave, ParityRotate, ParitySegment, SegmentRoundRobin,
    StripePolicy, StripePolicyKind, SubRequest,
};
pub use rebuild::{RebuildPolicy, RebuildProgress, RebuildRun, SpindleState};
pub use volume::{StripedVolume, VolumeConfig, VolumeDisk};
