//! Online rebuild of a replaced spindle, mirroring the async cleaner.
//!
//! When a parity volume loses a spindle it keeps serving reads by XOR
//! reconstruction; once a blank replacement is swapped in (see
//! [`crate::StripedVolume::replace_spindle`]) the volume re-derives the
//! dead drive's contents row by row — every physical chunk row is the
//! XOR of the same row on the surviving spindles, whatever mix of data
//! and parity the row holds — and writes them back as maintenance-class
//! I/O through the same per-spindle engine queues the async cleaner
//! uses.
//!
//! Like [`AsyncCleanerPolicy`](engine docs), the work is an incremental
//! state machine the *host event loop* drives: it asks
//! [`crate::StripedVolume::rebuild_wants_step`] whether policy allows a
//! step right now (idle gate, urgency watermark) and then calls
//! [`crate::StripedVolume::rebuild_step`] to copy a bounded number of
//! rows. Foreground requests interleave between steps, so QoS tenants
//! keep their shares during the rebuild.

/// Availability of one spindle in a striped volume.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpindleState {
    /// Healthy: serves reads and writes normally.
    Online,
    /// Media dead ([`sim_disk::SimDisk::kill_media`]): every request is
    /// routed around it — reads reconstruct, writes update parity only.
    Dead,
    /// Blank replacement installed, rebuild in progress: writes go
    /// through (write-through keeps rebuilt rows fresh), reads still
    /// reconstruct until the rebuild completes.
    Rebuilding,
}

/// Governs how aggressively a rebuild competes with foreground I/O —
/// the rebuild-side mirror of the async cleaner's policy knobs.
#[derive(Debug, Clone, Copy)]
pub struct RebuildPolicy {
    /// Most chunk rows reconstructed per [`RebuildProgress`] step (the
    /// step cap bounding how long the spindles are busy per step).
    pub max_step_rows: usize,
    /// Idle gate: step only when the volume-wide queue depth is at or
    /// below this. `None` steps whenever asked (sync-style rebuild).
    pub idle_queue_depth: Option<u64>,
    /// Urgency watermark, in thousandths of the spindle still missing:
    /// while **more** than this fraction remains un-rebuilt the idle
    /// gate is ignored — a mostly-missing spindle is a wide
    /// double-fault window, so exposure outranks foreground latency.
    /// `1000` never overrides the gate; `0` always rebuilds eagerly.
    pub urgent_remaining_millis: u64,
}

impl Default for RebuildPolicy {
    fn default() -> Self {
        Self {
            max_step_rows: 8,
            idle_queue_depth: Some(0),
            urgent_remaining_millis: 1000,
        }
    }
}

impl RebuildPolicy {
    /// Replaces the per-step row cap.
    pub fn with_max_step_rows(mut self, rows: usize) -> Self {
        self.max_step_rows = rows;
        self
    }

    /// Replaces the idle gate (`None` = step whenever asked).
    pub fn with_idle_queue_depth(mut self, depth: Option<u64>) -> Self {
        self.idle_queue_depth = depth;
        self
    }

    /// Replaces the urgency watermark.
    pub fn with_urgent_remaining_millis(mut self, millis: u64) -> Self {
        self.urgent_remaining_millis = millis;
        self
    }
}

/// What one [`crate::StripedVolume::rebuild_step`] call accomplished.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RebuildProgress {
    /// No rebuild is in progress.
    Idle,
    /// Reconstructed and wrote this many chunk rows; more remain.
    Progress {
        /// Rows copied in this step.
        rows: u64,
    },
    /// The final rows landed; the spindle is back online.
    Completed,
}

/// The in-flight rebuild of one replaced spindle: a cursor walking the
/// spindle's chunk rows, plus the policy pacing it.
#[derive(Debug, Clone)]
pub struct RebuildRun {
    spindle: usize,
    cursor_row: u64,
    total_rows: u64,
    policy: RebuildPolicy,
}

impl RebuildRun {
    /// Starts a rebuild of `spindle` covering `total_rows` chunk rows.
    pub(crate) fn new(spindle: usize, total_rows: u64, policy: RebuildPolicy) -> Self {
        Self {
            spindle,
            cursor_row: 0,
            total_rows,
            policy,
        }
    }

    /// The spindle being rebuilt.
    pub fn spindle(&self) -> usize {
        self.spindle
    }

    /// Next chunk row to reconstruct.
    pub fn cursor_row(&self) -> u64 {
        self.cursor_row
    }

    /// Total chunk rows the rebuild covers.
    pub fn total_rows(&self) -> u64 {
        self.total_rows
    }

    /// Rows still missing.
    pub fn remaining_rows(&self) -> u64 {
        self.total_rows - self.cursor_row
    }

    /// The pacing policy.
    pub fn policy(&self) -> &RebuildPolicy {
        &self.policy
    }

    /// Whether policy allows a step at the given volume queue depth:
    /// urgent rebuilds ignore the idle gate, paced ones respect it.
    pub fn wants_step(&self, queue_depth: u64) -> bool {
        if self.remaining_rows() == 0 {
            return false;
        }
        let remaining_millis = (self.remaining_rows() * 1000)
            .checked_div(self.total_rows)
            .unwrap_or(0);
        if remaining_millis > self.policy.urgent_remaining_millis {
            return true;
        }
        match self.policy.idle_queue_depth {
            Some(depth) => queue_depth <= depth,
            None => true,
        }
    }

    /// Rolls the cursor back to `row` so a failed row is retried.
    pub(crate) fn rewind_to(&mut self, row: u64) {
        self.cursor_row = row;
    }

    /// Claims up to `max_step_rows` rows starting at the cursor;
    /// returns `(first_row, rows)` and advances the cursor.
    pub(crate) fn claim_step(&mut self) -> (u64, u64) {
        let rows = (self.policy.max_step_rows as u64).min(self.remaining_rows());
        let first = self.cursor_row;
        self.cursor_row += rows;
        (first, rows)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idle_gate_defers_until_the_queue_drains() {
        let run = RebuildRun::new(1, 100, RebuildPolicy::default());
        assert!(run.wants_step(0));
        assert!(!run.wants_step(3), "default gate wants an empty queue");
        let eager = RebuildRun::new(1, 100, RebuildPolicy::default().with_idle_queue_depth(None));
        assert!(eager.wants_step(3));
    }

    #[test]
    fn urgency_watermark_overrides_the_idle_gate() {
        let policy = RebuildPolicy::default().with_urgent_remaining_millis(500);
        let mut run = RebuildRun::new(0, 10, policy.with_max_step_rows(3));
        // 100% missing > 50% watermark: steps despite a deep queue.
        assert!(run.wants_step(100));
        assert_eq!(run.claim_step(), (0, 3));
        assert_eq!(run.claim_step(), (3, 3));
        // 4/10 remaining = 400‰ ≤ 500‰: the idle gate applies again.
        assert!(!run.wants_step(100));
        assert!(run.wants_step(0));
    }

    #[test]
    fn claim_step_walks_to_completion() {
        let mut run = RebuildRun::new(2, 5, RebuildPolicy::default().with_max_step_rows(2));
        assert_eq!(run.claim_step(), (0, 2));
        assert_eq!(run.claim_step(), (2, 2));
        assert_eq!(run.claim_step(), (4, 1));
        assert_eq!(run.remaining_rows(), 0);
        assert!(!run.wants_step(0), "a finished run never wants a step");
        assert_eq!(run.claim_step(), (5, 0));
    }
}
