//! Striping policies: how logical sectors map onto spindles.
//!
//! The RAID-0 policies are chunked layouts — the logical address space
//! is cut into fixed-size *stripe units* (chunks) dealt round-robin
//! across spindles — and differ only in the chunk size:
//!
//! * [`SegmentRoundRobin`] uses the LFS segment size as the chunk, so a
//!   whole segment write lands on one spindle and each disk sees the
//!   pure-sequential write pattern §3 of the paper depends on, while
//!   consecutive segments rotate across spindles.
//! * [`BlockInterleave`] uses a small configurable chunk (classic
//!   RAID-0), so one large request fans out across every spindle.
//!
//! The parity policies add single-fault redundancy: each *row* (one
//! chunk per spindle at the same physical offset) dedicates one
//! rotating spindle to the XOR of the other chunks, so any one dead
//! spindle's contents can be reconstructed from the survivors:
//!
//! * [`ParitySegment`] is LFS's natural fit — the chunk is sized so one
//!   full segment write covers a whole data row, letting the volume
//!   compute parity straight from the write buffer without ever reading
//!   old data (the log never pays the RAID-5 read-modify-write tax).
//! * [`ParityRotate`] is classic RAID-5: small chunks, rotating parity,
//!   read-modify-write on partial rows.
//!
//! Both keep the **row-XOR invariant**: for every physical sector `p`,
//! the XOR of sector `p` across all spindles is zero. Reconstruction of
//! any physical range on one spindle is then the XOR of the *same*
//! physical range on every other spindle, with no role bookkeeping.
//!
//! [`split_request`] is the request splitter: it cuts a logical request
//! into per-spindle sub-requests whose union is an exact partition of
//! the original — no gap, no overlap — which the property tests verify
//! for arbitrary chunk sizes.

use sim_disk::SECTOR_SIZE;

/// Which striping policy a volume uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StripePolicyKind {
    /// Segment-granular round-robin: chunk = LFS segment size.
    RrSegment,
    /// RAID-0 block interleave with a small configurable chunk.
    Interleave,
    /// Per-segment parity: chunk sized so a segment is one data row;
    /// parity rotates and is computed from the write buffer alone.
    ParitySegment,
    /// RAID-5 rotating parity over small configurable chunks.
    ParityRotate,
}

impl StripePolicyKind {
    /// All policies, for sweeps.
    pub const ALL: [StripePolicyKind; 4] = [
        StripePolicyKind::RrSegment,
        StripePolicyKind::Interleave,
        StripePolicyKind::ParitySegment,
        StripePolicyKind::ParityRotate,
    ];

    /// Stable name used in bench labels and CLI flags.
    pub fn name(&self) -> &'static str {
        match self {
            StripePolicyKind::RrSegment => "rr-segment",
            StripePolicyKind::Interleave => "interleave",
            StripePolicyKind::ParitySegment => "parity-segment",
            StripePolicyKind::ParityRotate => "parity-rotate",
        }
    }

    /// Parses a [`StripePolicyKind::name`] back.
    pub fn parse(s: &str) -> Option<Self> {
        Self::ALL.into_iter().find(|k| k.name() == s)
    }

    /// True for policies that dedicate one chunk per row to parity.
    pub fn is_parity(&self) -> bool {
        matches!(
            self,
            StripePolicyKind::ParitySegment | StripePolicyKind::ParityRotate
        )
    }

    /// Smallest spindle count the policy is defined for (parity needs a
    /// data chunk *and* a parity chunk per row).
    pub fn min_spindles(&self) -> usize {
        if self.is_parity() {
            2
        } else {
            1
        }
    }
}

impl std::fmt::Display for StripePolicyKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// A chunked striping layout.
///
/// Logical chunks are dealt in rows: row `r` of an `n`-spindle volume
/// holds [`StripePolicy::data_per_row`] logical chunks at physical
/// chunk-row `r` on their spindles, skipping the row's parity spindle
/// (if the policy has one). For the RAID-0 policies every spindle
/// carries data (`data_per_row == n`, no parity) and the mapping
/// reduces to the classic `chunk % n` / `chunk / n`.
///
/// The trait carries the chunk size; the mapping itself is shared by
/// every policy (provided methods) so the splitter and its inverse stay
/// consistent by construction.
pub trait StripePolicy {
    /// Which policy this is.
    fn kind(&self) -> StripePolicyKind;

    /// Stripe-unit size in sectors.
    fn chunk_sectors(&self) -> u64;

    /// Logical (data) chunks per row on an `n`-spindle volume.
    fn data_per_row(&self, spindles: usize) -> usize {
        spindles
    }

    /// Spindle holding row `row`'s parity chunk, if the policy keeps
    /// parity. `None` for the RAID-0 policies.
    fn parity_spindle(&self, row: u64, spindles: usize) -> Option<usize> {
        let _ = (row, spindles);
        None
    }

    /// Spindle holding logical chunk `chunk` of an `n`-spindle volume.
    fn spindle_of_chunk(&self, chunk: u64, spindles: usize) -> usize {
        let dpr = self.data_per_row(spindles) as u64;
        let d = (chunk % dpr) as usize;
        match self.parity_spindle(chunk / dpr, spindles) {
            Some(p) if d >= p => d + 1,
            _ => d,
        }
    }

    /// Per-spindle chunk row of logical chunk `chunk`.
    fn row_of_chunk(&self, chunk: u64, spindles: usize) -> u64 {
        chunk / self.data_per_row(spindles) as u64
    }

    /// Inverse of the mapping: the logical chunk at `row` on `spindle`.
    /// For parity policies, `spindle` must hold data in that row — the
    /// parity chunk has no logical address.
    fn chunk_at(&self, row: u64, spindle: usize, spindles: usize) -> u64 {
        let d = match self.parity_spindle(row, spindles) {
            Some(p) => {
                debug_assert_ne!(spindle, p, "parity chunk has no logical address");
                if spindle > p {
                    spindle - 1
                } else {
                    spindle
                }
            }
            None => spindle,
        };
        row * self.data_per_row(spindles) as u64 + d as u64
    }
}

/// The rotation both parity policies share: row `r` parks parity on
/// spindle `(n - 1) - (r mod n)`, so parity load spreads evenly and no
/// spindle is the RAID-4 bottleneck.
pub(crate) fn rotated_parity_spindle(row: u64, spindles: usize) -> usize {
    (spindles - 1) - (row % spindles as u64) as usize
}

/// Whole-segment round-robin: the chunk is the LFS segment, so each
/// spindle's write stream stays purely sequential.
#[derive(Debug, Clone, Copy)]
pub struct SegmentRoundRobin {
    chunk_sectors: u64,
}

impl SegmentRoundRobin {
    /// A policy striping at `segment_bytes` granularity.
    ///
    /// # Panics
    ///
    /// Panics unless `segment_bytes` is a positive multiple of the
    /// sector size.
    pub fn new(segment_bytes: usize) -> Self {
        assert!(
            segment_bytes > 0 && segment_bytes.is_multiple_of(SECTOR_SIZE),
            "segment size must be a positive multiple of {SECTOR_SIZE}"
        );
        Self {
            chunk_sectors: (segment_bytes / SECTOR_SIZE) as u64,
        }
    }
}

impl StripePolicy for SegmentRoundRobin {
    fn kind(&self) -> StripePolicyKind {
        StripePolicyKind::RrSegment
    }

    fn chunk_sectors(&self) -> u64 {
        self.chunk_sectors
    }
}

/// Classic RAID-0: small chunks dealt round-robin, so a single large
/// request spreads across every spindle.
#[derive(Debug, Clone, Copy)]
pub struct BlockInterleave {
    chunk_sectors: u64,
}

impl BlockInterleave {
    /// A policy striping at `chunk_bytes` granularity.
    ///
    /// # Panics
    ///
    /// Panics unless `chunk_bytes` is a positive multiple of the sector
    /// size.
    pub fn new(chunk_bytes: usize) -> Self {
        assert!(
            chunk_bytes > 0 && chunk_bytes.is_multiple_of(SECTOR_SIZE),
            "chunk size must be a positive multiple of {SECTOR_SIZE}"
        );
        Self {
            chunk_sectors: (chunk_bytes / SECTOR_SIZE) as u64,
        }
    }
}

impl StripePolicy for BlockInterleave {
    fn kind(&self) -> StripePolicyKind {
        StripePolicyKind::Interleave
    }

    fn chunk_sectors(&self) -> u64 {
        self.chunk_sectors
    }
}

/// Per-segment parity: the chunk is sized so one LFS segment write
/// covers exactly one full data row (`chunk = segment / (n - 1)`), so
/// parity is computed from the segment buffer alone — the log never
/// reads old data to update parity. One spindle per row, rotating,
/// holds the XOR of the row's data chunks.
#[derive(Debug, Clone, Copy)]
pub struct ParitySegment {
    chunk_sectors: u64,
}

impl ParitySegment {
    /// A per-segment-parity policy with `chunk_bytes` stripe units
    /// (callers size the chunk as `segment_bytes / (spindles - 1)`; see
    /// [`crate::VolumeConfig::parity_segment`]).
    ///
    /// # Panics
    ///
    /// Panics unless `chunk_bytes` is a positive multiple of the sector
    /// size.
    pub fn new(chunk_bytes: usize) -> Self {
        assert!(
            chunk_bytes > 0 && chunk_bytes.is_multiple_of(SECTOR_SIZE),
            "chunk size must be a positive multiple of {SECTOR_SIZE}"
        );
        Self {
            chunk_sectors: (chunk_bytes / SECTOR_SIZE) as u64,
        }
    }
}

impl StripePolicy for ParitySegment {
    fn kind(&self) -> StripePolicyKind {
        StripePolicyKind::ParitySegment
    }

    fn chunk_sectors(&self) -> u64 {
        self.chunk_sectors
    }

    fn data_per_row(&self, spindles: usize) -> usize {
        spindles - 1
    }

    fn parity_spindle(&self, row: u64, spindles: usize) -> Option<usize> {
        Some(rotated_parity_spindle(row, spindles))
    }
}

/// Classic RAID-5: small chunks with rotating parity. Partial-row
/// writes pay read-modify-write; full rows are computed from the
/// buffer like [`ParitySegment`].
#[derive(Debug, Clone, Copy)]
pub struct ParityRotate {
    chunk_sectors: u64,
}

impl ParityRotate {
    /// A rotating-parity policy striping at `chunk_bytes` granularity.
    ///
    /// # Panics
    ///
    /// Panics unless `chunk_bytes` is a positive multiple of the sector
    /// size.
    pub fn new(chunk_bytes: usize) -> Self {
        assert!(
            chunk_bytes > 0 && chunk_bytes.is_multiple_of(SECTOR_SIZE),
            "chunk size must be a positive multiple of {SECTOR_SIZE}"
        );
        Self {
            chunk_sectors: (chunk_bytes / SECTOR_SIZE) as u64,
        }
    }
}

impl StripePolicy for ParityRotate {
    fn kind(&self) -> StripePolicyKind {
        StripePolicyKind::ParityRotate
    }

    fn chunk_sectors(&self) -> u64 {
        self.chunk_sectors
    }

    fn data_per_row(&self, spindles: usize) -> usize {
        spindles - 1
    }

    fn parity_spindle(&self, row: u64, spindles: usize) -> Option<usize> {
        Some(rotated_parity_spindle(row, spindles))
    }
}

/// One per-spindle piece of a logical request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SubRequest {
    /// Spindle the piece lands on.
    pub spindle: usize,
    /// Byte offset of the piece within the logical request's buffer.
    pub offset: usize,
    /// First *physical* (per-spindle) sector of the piece.
    pub sector: u64,
    /// Length of the piece in sectors.
    pub sectors: u64,
}

impl SubRequest {
    /// Length of the piece in bytes.
    pub fn bytes(&self) -> usize {
        self.sectors as usize * SECTOR_SIZE
    }
}

/// Splits the logical request `[sector, sector + count)` into
/// per-spindle sub-requests.
///
/// Pieces are emitted in logical-address order and physically
/// contiguous same-spindle neighbours are merged, so a request that
/// stays inside one chunk — or a whole-volume scan on one spindle —
/// yields a single sub-request. On a 1-spindle volume the mapping is
/// the identity and the result is always one sub-request.
pub fn split_request(
    policy: &dyn StripePolicy,
    spindles: usize,
    sector: u64,
    count: u64,
) -> Vec<SubRequest> {
    let chunk_sectors = policy.chunk_sectors();
    let end = sector + count;
    let mut subs: Vec<SubRequest> = Vec::new();
    let mut at = sector;
    while at < end {
        let chunk = at / chunk_sectors;
        let within = at % chunk_sectors;
        let take = (chunk_sectors - within).min(end - at);
        let spindle = policy.spindle_of_chunk(chunk, spindles);
        let physical = policy.row_of_chunk(chunk, spindles) * chunk_sectors + within;
        match subs.last_mut() {
            Some(last)
                if last.spindle == spindle && last.sector + last.sectors == physical =>
            {
                last.sectors += take;
            }
            _ => subs.push(SubRequest {
                spindle,
                offset: (at - sector) as usize * SECTOR_SIZE,
                sector: physical,
                sectors: take,
            }),
        }
        at += take;
    }
    subs
}

/// Maps a physical (per-spindle) sector back to its logical sector —
/// the inverse of the mapping [`split_request`] applies. Used to report
/// errors (e.g. an unreadable sector) in the volume's address space.
pub fn to_logical(
    policy: &dyn StripePolicy,
    spindles: usize,
    spindle: usize,
    physical: u64,
) -> u64 {
    let chunk_sectors = policy.chunk_sectors();
    let row = physical / chunk_sectors;
    let within = physical % chunk_sectors;
    policy.chunk_at(row, spindle, spindles) * chunk_sectors + within
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_names_round_trip() {
        assert_eq!(StripePolicyKind::ALL.len(), 4);
        for kind in StripePolicyKind::ALL {
            assert_eq!(StripePolicyKind::parse(kind.name()), Some(kind));
        }
        assert_eq!(StripePolicyKind::parse("raid5"), None);
        assert!(StripePolicyKind::ParitySegment.is_parity());
        assert!(StripePolicyKind::ParityRotate.is_parity());
        assert!(!StripePolicyKind::RrSegment.is_parity());
        assert_eq!(StripePolicyKind::ParityRotate.min_spindles(), 2);
        assert_eq!(StripePolicyKind::Interleave.min_spindles(), 1);
    }

    #[test]
    fn parity_rotation_skips_one_spindle_per_row() {
        let policy = ParityRotate::new(2 * SECTOR_SIZE);
        let n = 3;
        // Row r parks parity on spindle (n-1) - (r % n).
        assert_eq!(policy.parity_spindle(0, n), Some(2));
        assert_eq!(policy.parity_spindle(1, n), Some(1));
        assert_eq!(policy.parity_spindle(2, n), Some(0));
        assert_eq!(policy.parity_spindle(3, n), Some(2));
        assert_eq!(policy.data_per_row(n), 2);
        // Row 0 (parity on 2): chunks 0,1 on spindles 0,1.
        assert_eq!(policy.spindle_of_chunk(0, n), 0);
        assert_eq!(policy.spindle_of_chunk(1, n), 1);
        // Row 1 (parity on 1): chunks 2,3 on spindles 0,2.
        assert_eq!(policy.spindle_of_chunk(2, n), 0);
        assert_eq!(policy.spindle_of_chunk(3, n), 2);
        // Row 2 (parity on 0): chunks 4,5 on spindles 1,2.
        assert_eq!(policy.spindle_of_chunk(4, n), 1);
        assert_eq!(policy.spindle_of_chunk(5, n), 2);
    }

    #[test]
    fn parity_chunk_at_inverts_spindle_of_chunk() {
        for policy in [
            &ParityRotate::new(SECTOR_SIZE) as &dyn StripePolicy,
            &ParitySegment::new(4 * SECTOR_SIZE),
        ] {
            for spindles in 2..=5usize {
                for chunk in 0..64u64 {
                    let row = policy.row_of_chunk(chunk, spindles);
                    let spindle = policy.spindle_of_chunk(chunk, spindles);
                    assert_ne!(
                        Some(spindle),
                        policy.parity_spindle(row, spindles),
                        "data never lands on the parity spindle"
                    );
                    assert_eq!(policy.chunk_at(row, spindle, spindles), chunk);
                }
            }
        }
    }

    #[test]
    fn parity_split_partitions_and_inverts() {
        let policy = ParitySegment::new(2 * SECTOR_SIZE);
        for spindles in 2..=4usize {
            for (sector, count) in [(0u64, 1u64), (1, 7), (5, 12), (0, 32)] {
                let subs = split_request(&policy, spindles, sector, count);
                // Exact partition: offsets/lengths tile the buffer.
                let mut at = 0usize;
                let mut total = 0u64;
                for sub in &subs {
                    assert_eq!(sub.offset, at);
                    at += sub.bytes();
                    total += sub.sectors;
                    // And every piece inverts to its logical position.
                    assert_eq!(
                        to_logical(&policy, spindles, sub.spindle, sub.sector),
                        sector + (sub.offset / SECTOR_SIZE) as u64
                    );
                }
                assert_eq!(total, count);
            }
        }
    }

    #[test]
    fn single_spindle_is_the_identity() {
        let policy = BlockInterleave::new(4 * SECTOR_SIZE);
        for (sector, count) in [(0, 1), (3, 9), (100, 64)] {
            let subs = split_request(&policy, 1, sector, count);
            assert_eq!(
                subs,
                vec![SubRequest {
                    spindle: 0,
                    offset: 0,
                    sector,
                    sectors: count
                }]
            );
        }
    }

    #[test]
    fn interleave_deals_chunks_round_robin() {
        // 2-sector chunks over 2 spindles: logical 0,1 → s0; 2,3 → s1;
        // 4,5 → s0 row 1; ...
        let policy = BlockInterleave::new(2 * SECTOR_SIZE);
        let subs = split_request(&policy, 2, 0, 8);
        assert_eq!(
            subs,
            vec![
                SubRequest { spindle: 0, offset: 0, sector: 0, sectors: 2 },
                SubRequest { spindle: 1, offset: 2 * SECTOR_SIZE, sector: 0, sectors: 2 },
                SubRequest { spindle: 0, offset: 4 * SECTOR_SIZE, sector: 2, sectors: 2 },
                SubRequest { spindle: 1, offset: 6 * SECTOR_SIZE, sector: 2, sectors: 2 },
            ]
        );
    }

    #[test]
    fn unaligned_request_takes_partial_chunks() {
        let policy = BlockInterleave::new(4 * SECTOR_SIZE);
        // Sectors 3..9 over 2 spindles: 3 (chunk 0, s0), 4..8 (chunk 1,
        // s1), 8 (chunk 2, s0 row 1).
        let subs = split_request(&policy, 2, 3, 6);
        assert_eq!(
            subs,
            vec![
                SubRequest { spindle: 0, offset: 0, sector: 3, sectors: 1 },
                SubRequest { spindle: 1, offset: SECTOR_SIZE, sector: 0, sectors: 4 },
                SubRequest { spindle: 0, offset: 5 * SECTOR_SIZE, sector: 4, sectors: 1 },
            ]
        );
    }

    #[test]
    fn physically_contiguous_same_spindle_pieces_merge() {
        // 1-sector chunks over 1 spindle degenerate to full merges; over
        // 2 spindles a 4-sector read needs exactly one sub per spindle.
        let policy = BlockInterleave::new(SECTOR_SIZE);
        let subs = split_request(&policy, 2, 0, 4);
        assert_eq!(
            subs,
            vec![
                SubRequest { spindle: 0, offset: 0, sector: 0, sectors: 1 },
                SubRequest { spindle: 1, offset: SECTOR_SIZE, sector: 0, sectors: 1 },
                SubRequest { spindle: 0, offset: 2 * SECTOR_SIZE, sector: 1, sectors: 1 },
                SubRequest { spindle: 1, offset: 3 * SECTOR_SIZE, sector: 1, sectors: 1 },
            ],
            "alternating chunks never merge"
        );

        let wide = split_request(&policy, 1, 10, 4);
        assert_eq!(wide.len(), 1, "same-spindle contiguous runs merge");
    }

    #[test]
    fn to_logical_inverts_the_split() {
        let policy = SegmentRoundRobin::new(16 * 1024);
        let chunk = policy.chunk_sectors();
        for spindles in 1..=4usize {
            for logical in [0, 1, chunk - 1, chunk, 3 * chunk + 7, 11 * chunk] {
                let subs = split_request(&policy, spindles, logical, 1);
                assert_eq!(subs.len(), 1);
                assert_eq!(
                    to_logical(&policy, spindles, subs[0].spindle, subs[0].sector),
                    logical
                );
            }
        }
    }
}
