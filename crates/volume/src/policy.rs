//! Striping policies: how logical sectors map onto spindles.
//!
//! Both policies are chunked RAID-0 layouts — the logical address space
//! is cut into fixed-size *stripe units* (chunks) dealt round-robin
//! across spindles — and differ only in the chunk size:
//!
//! * [`SegmentRoundRobin`] uses the LFS segment size as the chunk, so a
//!   whole segment write lands on one spindle and each disk sees the
//!   pure-sequential write pattern §3 of the paper depends on, while
//!   consecutive segments rotate across spindles.
//! * [`BlockInterleave`] uses a small configurable chunk (classic
//!   RAID-0), so one large request fans out across every spindle.
//!
//! [`split_request`] is the request splitter: it cuts a logical request
//! into per-spindle sub-requests whose union is an exact partition of
//! the original — no gap, no overlap — which the property tests verify
//! for arbitrary chunk sizes.

use sim_disk::SECTOR_SIZE;

/// Which striping policy a volume uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StripePolicyKind {
    /// Segment-granular round-robin: chunk = LFS segment size.
    RrSegment,
    /// RAID-0 block interleave with a small configurable chunk.
    Interleave,
}

impl StripePolicyKind {
    /// All policies, for sweeps.
    pub const ALL: [StripePolicyKind; 2] =
        [StripePolicyKind::RrSegment, StripePolicyKind::Interleave];

    /// Stable name used in bench labels and CLI flags.
    pub fn name(&self) -> &'static str {
        match self {
            StripePolicyKind::RrSegment => "rr-segment",
            StripePolicyKind::Interleave => "interleave",
        }
    }

    /// Parses a [`StripePolicyKind::name`] back.
    pub fn parse(s: &str) -> Option<Self> {
        Self::ALL.into_iter().find(|k| k.name() == s)
    }
}

impl std::fmt::Display for StripePolicyKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// A chunked striping layout: logical chunk `c` lives on spindle
/// `c % n` at per-spindle chunk row `c / n`.
///
/// The trait carries the chunk size; the mapping itself is shared by
/// every policy (provided methods) so the splitter and its inverse stay
/// consistent by construction.
pub trait StripePolicy {
    /// Which policy this is.
    fn kind(&self) -> StripePolicyKind;

    /// Stripe-unit size in sectors.
    fn chunk_sectors(&self) -> u64;

    /// Spindle holding logical chunk `chunk` of an `n`-spindle volume.
    fn spindle_of_chunk(&self, chunk: u64, spindles: usize) -> usize {
        (chunk % spindles as u64) as usize
    }

    /// Per-spindle chunk row of logical chunk `chunk`.
    fn row_of_chunk(&self, chunk: u64, spindles: usize) -> u64 {
        chunk / spindles as u64
    }

    /// Inverse of the mapping: the logical chunk at `row` on `spindle`.
    fn chunk_at(&self, row: u64, spindle: usize, spindles: usize) -> u64 {
        row * spindles as u64 + spindle as u64
    }
}

/// Whole-segment round-robin: the chunk is the LFS segment, so each
/// spindle's write stream stays purely sequential.
#[derive(Debug, Clone, Copy)]
pub struct SegmentRoundRobin {
    chunk_sectors: u64,
}

impl SegmentRoundRobin {
    /// A policy striping at `segment_bytes` granularity.
    ///
    /// # Panics
    ///
    /// Panics unless `segment_bytes` is a positive multiple of the
    /// sector size.
    pub fn new(segment_bytes: usize) -> Self {
        assert!(
            segment_bytes > 0 && segment_bytes.is_multiple_of(SECTOR_SIZE),
            "segment size must be a positive multiple of {SECTOR_SIZE}"
        );
        Self {
            chunk_sectors: (segment_bytes / SECTOR_SIZE) as u64,
        }
    }
}

impl StripePolicy for SegmentRoundRobin {
    fn kind(&self) -> StripePolicyKind {
        StripePolicyKind::RrSegment
    }

    fn chunk_sectors(&self) -> u64 {
        self.chunk_sectors
    }
}

/// Classic RAID-0: small chunks dealt round-robin, so a single large
/// request spreads across every spindle.
#[derive(Debug, Clone, Copy)]
pub struct BlockInterleave {
    chunk_sectors: u64,
}

impl BlockInterleave {
    /// A policy striping at `chunk_bytes` granularity.
    ///
    /// # Panics
    ///
    /// Panics unless `chunk_bytes` is a positive multiple of the sector
    /// size.
    pub fn new(chunk_bytes: usize) -> Self {
        assert!(
            chunk_bytes > 0 && chunk_bytes.is_multiple_of(SECTOR_SIZE),
            "chunk size must be a positive multiple of {SECTOR_SIZE}"
        );
        Self {
            chunk_sectors: (chunk_bytes / SECTOR_SIZE) as u64,
        }
    }
}

impl StripePolicy for BlockInterleave {
    fn kind(&self) -> StripePolicyKind {
        StripePolicyKind::Interleave
    }

    fn chunk_sectors(&self) -> u64 {
        self.chunk_sectors
    }
}

/// One per-spindle piece of a logical request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SubRequest {
    /// Spindle the piece lands on.
    pub spindle: usize,
    /// Byte offset of the piece within the logical request's buffer.
    pub offset: usize,
    /// First *physical* (per-spindle) sector of the piece.
    pub sector: u64,
    /// Length of the piece in sectors.
    pub sectors: u64,
}

impl SubRequest {
    /// Length of the piece in bytes.
    pub fn bytes(&self) -> usize {
        self.sectors as usize * SECTOR_SIZE
    }
}

/// Splits the logical request `[sector, sector + count)` into
/// per-spindle sub-requests.
///
/// Pieces are emitted in logical-address order and physically
/// contiguous same-spindle neighbours are merged, so a request that
/// stays inside one chunk — or a whole-volume scan on one spindle —
/// yields a single sub-request. On a 1-spindle volume the mapping is
/// the identity and the result is always one sub-request.
pub fn split_request(
    policy: &dyn StripePolicy,
    spindles: usize,
    sector: u64,
    count: u64,
) -> Vec<SubRequest> {
    let chunk_sectors = policy.chunk_sectors();
    let end = sector + count;
    let mut subs: Vec<SubRequest> = Vec::new();
    let mut at = sector;
    while at < end {
        let chunk = at / chunk_sectors;
        let within = at % chunk_sectors;
        let take = (chunk_sectors - within).min(end - at);
        let spindle = policy.spindle_of_chunk(chunk, spindles);
        let physical = policy.row_of_chunk(chunk, spindles) * chunk_sectors + within;
        match subs.last_mut() {
            Some(last)
                if last.spindle == spindle && last.sector + last.sectors == physical =>
            {
                last.sectors += take;
            }
            _ => subs.push(SubRequest {
                spindle,
                offset: (at - sector) as usize * SECTOR_SIZE,
                sector: physical,
                sectors: take,
            }),
        }
        at += take;
    }
    subs
}

/// Maps a physical (per-spindle) sector back to its logical sector —
/// the inverse of the mapping [`split_request`] applies. Used to report
/// errors (e.g. an unreadable sector) in the volume's address space.
pub fn to_logical(
    policy: &dyn StripePolicy,
    spindles: usize,
    spindle: usize,
    physical: u64,
) -> u64 {
    let chunk_sectors = policy.chunk_sectors();
    let row = physical / chunk_sectors;
    let within = physical % chunk_sectors;
    policy.chunk_at(row, spindle, spindles) * chunk_sectors + within
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_names_round_trip() {
        for kind in StripePolicyKind::ALL {
            assert_eq!(StripePolicyKind::parse(kind.name()), Some(kind));
        }
        assert_eq!(StripePolicyKind::parse("raid5"), None);
    }

    #[test]
    fn single_spindle_is_the_identity() {
        let policy = BlockInterleave::new(4 * SECTOR_SIZE);
        for (sector, count) in [(0, 1), (3, 9), (100, 64)] {
            let subs = split_request(&policy, 1, sector, count);
            assert_eq!(
                subs,
                vec![SubRequest {
                    spindle: 0,
                    offset: 0,
                    sector,
                    sectors: count
                }]
            );
        }
    }

    #[test]
    fn interleave_deals_chunks_round_robin() {
        // 2-sector chunks over 2 spindles: logical 0,1 → s0; 2,3 → s1;
        // 4,5 → s0 row 1; ...
        let policy = BlockInterleave::new(2 * SECTOR_SIZE);
        let subs = split_request(&policy, 2, 0, 8);
        assert_eq!(
            subs,
            vec![
                SubRequest { spindle: 0, offset: 0, sector: 0, sectors: 2 },
                SubRequest { spindle: 1, offset: 2 * SECTOR_SIZE, sector: 0, sectors: 2 },
                SubRequest { spindle: 0, offset: 4 * SECTOR_SIZE, sector: 2, sectors: 2 },
                SubRequest { spindle: 1, offset: 6 * SECTOR_SIZE, sector: 2, sectors: 2 },
            ]
        );
    }

    #[test]
    fn unaligned_request_takes_partial_chunks() {
        let policy = BlockInterleave::new(4 * SECTOR_SIZE);
        // Sectors 3..9 over 2 spindles: 3 (chunk 0, s0), 4..8 (chunk 1,
        // s1), 8 (chunk 2, s0 row 1).
        let subs = split_request(&policy, 2, 3, 6);
        assert_eq!(
            subs,
            vec![
                SubRequest { spindle: 0, offset: 0, sector: 3, sectors: 1 },
                SubRequest { spindle: 1, offset: SECTOR_SIZE, sector: 0, sectors: 4 },
                SubRequest { spindle: 0, offset: 5 * SECTOR_SIZE, sector: 4, sectors: 1 },
            ]
        );
    }

    #[test]
    fn physically_contiguous_same_spindle_pieces_merge() {
        // 1-sector chunks over 1 spindle degenerate to full merges; over
        // 2 spindles a 4-sector read needs exactly one sub per spindle.
        let policy = BlockInterleave::new(SECTOR_SIZE);
        let subs = split_request(&policy, 2, 0, 4);
        assert_eq!(
            subs,
            vec![
                SubRequest { spindle: 0, offset: 0, sector: 0, sectors: 1 },
                SubRequest { spindle: 1, offset: SECTOR_SIZE, sector: 0, sectors: 1 },
                SubRequest { spindle: 0, offset: 2 * SECTOR_SIZE, sector: 1, sectors: 1 },
                SubRequest { spindle: 1, offset: 3 * SECTOR_SIZE, sector: 1, sectors: 1 },
            ],
            "alternating chunks never merge"
        );

        let wide = split_request(&policy, 1, 10, 4);
        assert_eq!(wide.len(), 1, "same-spindle contiguous runs merge");
    }

    #[test]
    fn to_logical_inverts_the_split() {
        let policy = SegmentRoundRobin::new(16 * 1024);
        let chunk = policy.chunk_sectors();
        for spindles in 1..=4usize {
            for logical in [0, 1, chunk - 1, chunk, 3 * chunk + 7, 11 * chunk] {
                let subs = split_request(&policy, spindles, logical, 1);
                assert_eq!(subs.len(), 1);
                assert_eq!(
                    to_logical(&policy, spindles, subs[0].spindle, subs[0].sector),
                    logical
                );
            }
        }
    }
}
