//! Fail-slow spindle health monitoring.
//!
//! A disk rarely announces that it is dying: it gets *slow* first —
//! remapped sectors, recalibration storms, vibration — while still
//! returning correct data. A parity volume that waits for a hard
//! failure lets one limping spindle set the latency of every stripe it
//! touches.
//!
//! Absolute latency cannot diagnose this: a sequential read on a sick
//! drive can be cheaper than a long random read on a healthy one, so
//! any fixed latency SLO either misses the former or slanders the
//! latter. The discriminating signal is **service-time inflation** —
//! the ratio of a request's observed service time to what the drive's
//! own mechanical model (seek + rotation + transfer for *that* request)
//! says it should cost. A healthy drive holds inflation at 1.0x
//! whatever the access pattern; a fail-slow drive inflates every
//! request by its degradation factor.
//!
//! The [`HealthMonitor`] tracks each spindle's inflation (per-mille
//! EWMA against [`HealthPolicy::slo_inflation_millis`]) and a sliding
//! window of media errors, and walks a healthy → suspect → evicted
//! state machine with hysteresis on both edges:
//!
//! * A spindle becomes **suspect** after [`HealthPolicy::suspect_after`]
//!   consecutive breaches (inflation EWMA over the SLO, or too many
//!   errors in the window).
//! * A suspect spindle **recovers** after
//!   [`HealthPolicy::recover_after`] consecutive clean observations —
//!   a transient stall is forgiven.
//! * A suspect spindle that keeps breaching for
//!   [`HealthPolicy::evict_after`] more observations is **evicted**:
//!   [`crate::StripedVolume`] kills it and, when a hot spare is
//!   configured, swaps the spare in and starts the online rebuild with
//!   zero operator actions.
//!
//! All arithmetic is integer (per-mille ratios and EWMA weights), so
//! verdicts are bit-for-bit deterministic.

use std::collections::VecDeque;

/// The health verdict on one spindle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HealthState {
    /// Inflation and error rate within the SLO.
    Healthy,
    /// Breaching, but not long enough to act on — still serving.
    Suspect,
    /// Breached past the hysteresis: the volume has routed around it.
    Evicted,
}

/// A state-machine transition reported by [`HealthMonitor::observe`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HealthEvent {
    /// The spindle crossed into [`HealthState::Suspect`].
    Suspected(usize),
    /// A suspect spindle cleared the SLO long enough to be forgiven.
    Recovered(usize),
    /// The spindle crossed into [`HealthState::Evicted`]; the volume
    /// should kill it and fail over to a hot spare.
    Evicted(usize),
}

/// Thresholds and hysteresis for the health state machine.
#[derive(Debug, Clone, Copy)]
pub struct HealthPolicy {
    /// EWMA weight of the newest inflation sample, in per-mille
    /// (`200` = the newest sample contributes 20%).
    pub ewma_alpha_millis: u64,
    /// Inflation SLO, in per-mille of the model-expected service time:
    /// the EWMA breaching this is a strike. `2000` = sustained 2x the
    /// mechanical model.
    pub slo_inflation_millis: u64,
    /// Length of the sliding per-spindle error window (observations).
    pub error_window: usize,
    /// More than this many errors inside the window is a strike even
    /// when inflation looks fine.
    pub max_window_errors: u32,
    /// Consecutive strikes to go healthy → suspect.
    pub suspect_after: u32,
    /// Consecutive strikes *while suspect* to go suspect → evicted.
    pub evict_after: u32,
    /// Consecutive clean observations to go suspect → healthy.
    pub recover_after: u32,
    /// Observations before any verdict — the EWMA needs a baseline.
    pub min_observations: u64,
}

impl Default for HealthPolicy {
    fn default() -> Self {
        Self {
            ewma_alpha_millis: 200,
            slo_inflation_millis: 2000,
            error_window: 16,
            max_window_errors: 2,
            suspect_after: 3,
            evict_after: 5,
            recover_after: 8,
            min_observations: 8,
        }
    }
}

impl HealthPolicy {
    /// Replaces the EWMA weight of the newest sample (per-mille).
    pub fn with_ewma_alpha_millis(mut self, millis: u64) -> Self {
        self.ewma_alpha_millis = millis.min(1000);
        self
    }

    /// Replaces the inflation SLO (per-mille of the model-expected
    /// service time).
    pub fn with_slo_inflation_millis(mut self, millis: u64) -> Self {
        self.slo_inflation_millis = millis;
        self
    }

    /// Replaces the error window length and its strike threshold.
    pub fn with_error_window(mut self, window: usize, max_errors: u32) -> Self {
        self.error_window = window.max(1);
        self.max_window_errors = max_errors;
        self
    }

    /// Replaces the healthy → suspect hysteresis.
    pub fn with_suspect_after(mut self, strikes: u32) -> Self {
        self.suspect_after = strikes.max(1);
        self
    }

    /// Replaces the suspect → evicted hysteresis.
    pub fn with_evict_after(mut self, strikes: u32) -> Self {
        self.evict_after = strikes.max(1);
        self
    }

    /// Replaces the suspect → healthy hysteresis.
    pub fn with_recover_after(mut self, clears: u32) -> Self {
        self.recover_after = clears.max(1);
        self
    }

    /// Replaces the warmup observation count.
    pub fn with_min_observations(mut self, n: u64) -> Self {
        self.min_observations = n;
        self
    }
}

/// Per-spindle tracker state.
#[derive(Debug, Clone)]
struct Tracker {
    state: HealthState,
    /// EWMA of observed service-time inflation, in per-mille of the
    /// model expectation; `None` until the first sample.
    ewma_millis: Option<u64>,
    observations: u64,
    errors: VecDeque<bool>,
    window_errors: u32,
    breach_streak: u32,
    clear_streak: u32,
}

impl Tracker {
    fn fresh() -> Self {
        Self {
            state: HealthState::Healthy,
            ewma_millis: None,
            observations: 0,
            errors: VecDeque::new(),
            window_errors: 0,
            breach_streak: 0,
            clear_streak: 0,
        }
    }
}

/// Watches every spindle of a striped volume and issues
/// [`HealthEvent`]s as spindles cross the state machine's edges.
#[derive(Debug, Clone)]
pub struct HealthMonitor {
    policy: HealthPolicy,
    trackers: Vec<Tracker>,
}

impl HealthMonitor {
    /// A monitor over `spindles` drives, all starting healthy.
    pub fn new(spindles: usize, policy: HealthPolicy) -> Self {
        Self {
            policy,
            trackers: vec![Tracker::fresh(); spindles],
        }
    }

    /// The policy in force.
    pub fn policy(&self) -> &HealthPolicy {
        &self.policy
    }

    /// Current verdict on spindle `i`.
    pub fn state(&self, i: usize) -> HealthState {
        self.trackers[i].state
    }

    /// Smoothed service-time inflation of spindle `i`, in per-mille of
    /// the model expectation (0 before any sample; 1000 = on-model).
    pub fn ewma_inflation_millis(&self, i: usize) -> u64 {
        self.trackers[i].ewma_millis.unwrap_or(0)
    }

    /// Forgets everything about spindle `i` — called when a replacement
    /// finishes rebuilding and comes online, so the new drive is not
    /// judged on its predecessor's record.
    pub fn reset(&mut self, i: usize) {
        self.trackers[i] = Tracker::fresh();
    }

    /// Feeds one serviced request on spindle `i`: its observed service
    /// time against what the drive's mechanical model says that request
    /// should cost. Returns the transition this observation caused, if
    /// any. Evicted spindles are no longer judged (the volume already
    /// routed around them); [`HealthMonitor::reset`] rearms them after
    /// a rebuild.
    pub fn observe(
        &mut self,
        i: usize,
        observed_ns: u64,
        expected_ns: u64,
    ) -> Option<HealthEvent> {
        let inflation =
            ((observed_ns as u128 * 1000) / (expected_ns.max(1) as u128)).min(u64::MAX as u128);
        self.ingest(i, inflation as u64, false)
    }

    /// Feeds one media-error completion on spindle `i`. The error is
    /// inflation-neutral — it is scored against the error window at the
    /// spindle's current inflation EWMA, so a burst of errors cannot
    /// mask (or fake) a latency breach.
    pub fn observe_error(&mut self, i: usize) -> Option<HealthEvent> {
        let at = self.trackers[i].ewma_millis.unwrap_or(1000);
        self.ingest(i, at, true)
    }

    fn ingest(&mut self, i: usize, inflation_millis: u64, error: bool) -> Option<HealthEvent> {
        let policy = self.policy;
        let t = &mut self.trackers[i];
        if t.state == HealthState::Evicted {
            return None;
        }
        t.observations += 1;
        t.ewma_millis = Some(match t.ewma_millis {
            None => inflation_millis,
            Some(prev) => {
                let a = policy.ewma_alpha_millis as u128;
                (((inflation_millis as u128) * a + (prev as u128) * (1000 - a)) / 1000) as u64
            }
        });
        t.errors.push_back(error);
        if error {
            t.window_errors += 1;
        }
        while t.errors.len() > policy.error_window {
            if t.errors.pop_front() == Some(true) {
                t.window_errors -= 1;
            }
        }
        let warmed = t.observations >= policy.min_observations;
        let breach = warmed
            && (t.ewma_millis.unwrap_or(0) > policy.slo_inflation_millis
                || t.window_errors > policy.max_window_errors);
        if breach {
            t.breach_streak += 1;
            t.clear_streak = 0;
        } else {
            t.clear_streak += 1;
            t.breach_streak = 0;
        }
        match t.state {
            HealthState::Healthy if t.breach_streak >= policy.suspect_after => {
                t.state = HealthState::Suspect;
                // Eviction counts strikes accumulated *as a suspect*.
                t.breach_streak = 0;
                Some(HealthEvent::Suspected(i))
            }
            HealthState::Suspect if t.breach_streak >= policy.evict_after => {
                t.state = HealthState::Evicted;
                Some(HealthEvent::Evicted(i))
            }
            HealthState::Suspect if t.clear_streak >= policy.recover_after => {
                t.state = HealthState::Healthy;
                Some(HealthEvent::Recovered(i))
            }
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// One model-expected unit, for readable observed/expected pairs.
    const EXPECTED: u64 = 1_000_000;

    fn quick_policy() -> HealthPolicy {
        HealthPolicy::default()
            .with_ewma_alpha_millis(1000) // newest sample only: no smoothing lag
            .with_slo_inflation_millis(2000)
            .with_suspect_after(2)
            .with_evict_after(3)
            .with_recover_after(2)
            .with_min_observations(1)
    }

    #[test]
    fn healthy_spindle_never_transitions() {
        let mut mon = HealthMonitor::new(2, quick_policy());
        for _ in 0..100 {
            assert_eq!(mon.observe(0, EXPECTED, EXPECTED), None);
        }
        assert_eq!(mon.ewma_inflation_millis(0), 1000, "on-model is 1.0x");
        assert_eq!(mon.state(0), HealthState::Healthy);
        assert_eq!(mon.state(1), HealthState::Healthy, "unobserved stays healthy");
    }

    #[test]
    fn inflation_breaches_walk_suspect_then_evicted_with_hysteresis() {
        let mut mon = HealthMonitor::new(1, quick_policy());
        let slow = 5 * EXPECTED;
        assert_eq!(mon.observe(0, slow, EXPECTED), None, "one strike is not enough");
        assert_eq!(mon.observe(0, slow, EXPECTED), Some(HealthEvent::Suspected(0)));
        assert_eq!(mon.state(0), HealthState::Suspect);
        // Eviction needs evict_after = 3 more strikes from the suspect edge.
        assert_eq!(mon.observe(0, slow, EXPECTED), None);
        assert_eq!(mon.observe(0, slow, EXPECTED), None);
        assert_eq!(mon.observe(0, slow, EXPECTED), Some(HealthEvent::Evicted(0)));
        assert_eq!(mon.state(0), HealthState::Evicted);
        // Evicted spindles are no longer judged.
        assert_eq!(mon.observe(0, 1, EXPECTED), None);
        assert_eq!(mon.state(0), HealthState::Evicted);
    }

    #[test]
    fn inflation_is_judged_relative_to_the_request_shape() {
        // A long request on a healthy drive (expensive but on-model)
        // must not look sicker than a short request served at 5x.
        let mut mon = HealthMonitor::new(2, quick_policy());
        for _ in 0..10 {
            // 100x the absolute latency, but exactly what the model
            // predicts for that request: inflation 1.0x.
            assert_eq!(mon.observe(0, 100 * EXPECTED, 100 * EXPECTED), None);
        }
        assert_eq!(mon.state(0), HealthState::Healthy);
        // Cheap requests at 5x the model: absolute latency is tiny,
        // inflation is flagrant.
        mon.observe(1, EXPECTED / 20, EXPECTED / 100);
        assert_eq!(
            mon.observe(1, EXPECTED / 20, EXPECTED / 100),
            Some(HealthEvent::Suspected(1))
        );
    }

    #[test]
    fn a_transient_stall_is_forgiven() {
        let mut mon = HealthMonitor::new(1, quick_policy());
        let slow = 5 * EXPECTED;
        mon.observe(0, slow, EXPECTED);
        assert_eq!(mon.observe(0, slow, EXPECTED), Some(HealthEvent::Suspected(0)));
        assert_eq!(mon.observe(0, EXPECTED, EXPECTED), None);
        assert_eq!(
            mon.observe(0, EXPECTED, EXPECTED),
            Some(HealthEvent::Recovered(0))
        );
        assert_eq!(mon.state(0), HealthState::Healthy);
        // The recovery cleared the strike count: suspicion starts over.
        assert_eq!(mon.observe(0, slow, EXPECTED), None);
        assert_eq!(mon.observe(0, slow, EXPECTED), Some(HealthEvent::Suspected(0)));
    }

    #[test]
    fn error_rate_breaches_without_inflation() {
        let policy = quick_policy().with_error_window(4, 1);
        let mut mon = HealthMonitor::new(1, policy);
        assert_eq!(mon.observe_error(0), None, "1 error in window: allowed");
        assert_eq!(mon.observe_error(0), None, "2 errors: first strike");
        assert_eq!(mon.observe_error(0), Some(HealthEvent::Suspected(0)));
        assert_eq!(
            mon.ewma_inflation_millis(0),
            1000,
            "errors are inflation-neutral"
        );
        // The window slides: old errors age out and the streak clears.
        for _ in 0..4 {
            mon.observe(0, EXPECTED, EXPECTED);
        }
        assert_eq!(mon.state(0), HealthState::Healthy);
    }

    #[test]
    fn warmup_defers_judgement_and_reset_rearms_it() {
        let policy = quick_policy().with_min_observations(10);
        let mut mon = HealthMonitor::new(1, policy);
        let slow = 5 * EXPECTED;
        for _ in 0..9 {
            assert_eq!(mon.observe(0, slow, EXPECTED), None, "still warming up");
        }
        assert_eq!(mon.state(0), HealthState::Healthy);
        mon.observe(0, slow, EXPECTED);
        assert_eq!(mon.observe(0, slow, EXPECTED), Some(HealthEvent::Suspected(0)));
        mon.reset(0);
        assert_eq!(mon.state(0), HealthState::Healthy);
        assert_eq!(mon.ewma_inflation_millis(0), 0);
        for _ in 0..9 {
            assert_eq!(mon.observe(0, slow, EXPECTED), None, "warmup restarted");
        }
    }

    #[test]
    fn ewma_smooths_with_integer_per_mille_weights() {
        let policy = HealthPolicy::default().with_ewma_alpha_millis(500);
        let mut mon = HealthMonitor::new(1, policy);
        mon.observe(0, EXPECTED, EXPECTED);
        assert_eq!(mon.ewma_inflation_millis(0), 1000, "first sample seeds the EWMA");
        mon.observe(0, 2 * EXPECTED, EXPECTED);
        assert_eq!(mon.ewma_inflation_millis(0), 1500);
        mon.observe(0, 3 * EXPECTED, 2 * EXPECTED);
        assert_eq!(mon.ewma_inflation_millis(0), 1500);
    }
}
