//! The striped volume: N spindles behind one [`BlockDevice`].
//!
//! A [`StripedVolume`] owns one [`EngineCore`] per spindle — each an
//! independent [`SimDisk`] with its own mechanical model, request
//! queue, and scheduler instance, all sharing one virtual [`Clock`] —
//! and fans every logical request out to per-spindle sub-requests
//! according to a [`StripePolicy`]. A logical request completes only
//! when all of its pieces have landed; a partial failure surfaces the
//! first piece's [`DiskError`], translated back into the volume's
//! logical address space.
//!
//! The overlap that makes striping pay comes from two places:
//!
//! * **Asynchronous writes** only push out each spindle's busy horizon,
//!   so horizons grow in parallel and the final flush waits for the
//!   *maximum* horizon, not the sum.
//! * **Synchronous requests** use the engine's split start/finish API:
//!   every piece is submitted before any is waited on, so the spindles
//!   service their pieces in overlapped virtual time.
//!
//! Crash plans arm across all spindles with a shared write index (see
//! [`SimDisk::share_write_index`]): power fails at the globally N-th
//! write, wherever it lands, and every spindle stops together.

use std::cell::RefCell;
use std::rc::Rc;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use engine::{EngineConfig, EngineCore, RequestEngine};
use obs::{Counter, Gauge, Registry};
use sim_disk::{
    check_request, BlockDevice, Clock, CrashPlan, DiskError, DiskGeometry, DiskResult, SimDisk,
};

use crate::policy::{
    split_request, to_logical, BlockInterleave, SegmentRoundRobin, StripePolicy, StripePolicyKind,
    SubRequest,
};

/// Parameters of a striped volume.
#[derive(Debug, Clone)]
pub struct VolumeConfig {
    /// Number of spindles (independent disks). One is allowed: the
    /// volume then behaves exactly like a single engine-fronted disk.
    pub spindles: usize,
    /// Striping policy.
    pub policy: StripePolicyKind,
    /// Stripe-unit size in bytes: the LFS segment size for
    /// [`StripePolicyKind::RrSegment`], a small power of two for
    /// [`StripePolicyKind::Interleave`].
    pub chunk_bytes: usize,
    /// Per-spindle engine configuration (scheduler, queue depth, ...).
    pub engine: EngineConfig,
}

impl VolumeConfig {
    /// Segment-granular round-robin over `spindles` disks.
    pub fn rr_segment(spindles: usize, segment_bytes: usize) -> Self {
        Self {
            spindles,
            policy: StripePolicyKind::RrSegment,
            chunk_bytes: segment_bytes,
            engine: EngineConfig::default(),
        }
    }

    /// RAID-0 block interleave over `spindles` disks.
    pub fn interleave(spindles: usize, chunk_bytes: usize) -> Self {
        Self {
            spindles,
            policy: StripePolicyKind::Interleave,
            chunk_bytes,
            engine: EngineConfig::default(),
        }
    }

    /// Replaces the per-spindle engine configuration.
    pub fn with_engine(mut self, engine: EngineConfig) -> Self {
        self.engine = engine;
        self
    }

    fn build_policy(&self) -> Box<dyn StripePolicy> {
        match self.policy {
            StripePolicyKind::RrSegment => Box::new(SegmentRoundRobin::new(self.chunk_bytes)),
            StripePolicyKind::Interleave => Box::new(BlockInterleave::new(self.chunk_bytes)),
        }
    }
}

/// The volume's aggregate instruments (per-spindle instruments live
/// under `volume.spindle.<i>.*` via each engine's metric prefix).
#[derive(Debug, Clone)]
struct VolumeObs {
    registry: Registry,
    reads: Counter,
    writes: Counter,
    bytes_read: Counter,
    bytes_written: Counter,
    subrequests: Counter,
    spindles: Gauge,
    balance: Gauge,
}

impl VolumeObs {
    fn from_registry(registry: &Registry) -> Self {
        VolumeObs {
            registry: registry.clone(),
            reads: registry.counter("volume.reads"),
            writes: registry.counter("volume.writes"),
            bytes_read: registry.counter("volume.bytes_read"),
            bytes_written: registry.counter("volume.bytes_written"),
            subrequests: registry.counter("volume.subrequests"),
            spindles: registry.gauge("volume.spindles"),
            balance: registry.gauge("volume.stripe_balance_millis"),
        }
    }

    fn rehome(&mut self, registry: &Registry) {
        self.registry = registry.clone();
        self.reads = registry.adopt_counter("volume.reads", &self.reads);
        self.writes = registry.adopt_counter("volume.writes", &self.writes);
        self.bytes_read = registry.adopt_counter("volume.bytes_read", &self.bytes_read);
        self.bytes_written = registry.adopt_counter("volume.bytes_written", &self.bytes_written);
        self.subrequests = registry.adopt_counter("volume.subrequests", &self.subrequests);
        self.spindles = registry.adopt_gauge("volume.spindles", &self.spindles);
        self.balance = registry.adopt_gauge("volume.stripe_balance_millis", &self.balance);
    }
}

/// N independent spindles striped into one logical block device.
pub struct StripedVolume {
    spindles: Vec<EngineCore>,
    policy: Box<dyn StripePolicy>,
    cfg: VolumeConfig,
    clock: Arc<Clock>,
    /// Logical capacity: with several spindles, each disk contributes
    /// only whole stripe units.
    num_sectors: u64,
    /// Global write index shared by every spindle's crash plan.
    global_writes: Arc<AtomicU64>,
    /// Set once any spindle reports [`DiskError::Crashed`]; all
    /// subsequent volume operations fail fast — one power supply.
    crashed: bool,
    /// Volume token → (spindle, spindle token) for tracked async reads.
    tracked_reads: std::collections::BTreeMap<u64, (usize, u64)>,
    next_read_token: u64,
    obs: VolumeObs,
}

impl StripedVolume {
    /// Creates a volume of `cfg.spindles` zero-filled disks, each with
    /// `geometry`, sharing `clock`.
    ///
    /// # Panics
    ///
    /// Panics if `cfg.spindles` is zero or `cfg.chunk_bytes` is not a
    /// positive multiple of the sector size.
    pub fn new(geometry: DiskGeometry, clock: Arc<Clock>, cfg: VolumeConfig) -> Self {
        Self::build(geometry, clock, cfg, None)
    }

    /// Revives a volume from per-spindle images (e.g. after a crash).
    ///
    /// # Panics
    ///
    /// Panics if the image count does not match `cfg.spindles` or any
    /// image does not match `geometry`.
    pub fn from_images(
        geometry: DiskGeometry,
        clock: Arc<Clock>,
        cfg: VolumeConfig,
        images: Vec<Vec<u8>>,
    ) -> Self {
        assert_eq!(images.len(), cfg.spindles, "one image per spindle");
        Self::build(geometry, clock, cfg, Some(images))
    }

    fn build(
        geometry: DiskGeometry,
        clock: Arc<Clock>,
        cfg: VolumeConfig,
        images: Option<Vec<Vec<u8>>>,
    ) -> Self {
        assert!(cfg.spindles >= 1, "a volume needs at least one spindle");
        let policy = cfg.build_policy();
        let chunk_sectors = policy.chunk_sectors();
        // A single spindle is the identity mapping over the whole disk;
        // with several, each contributes only whole stripe units.
        let num_sectors = if cfg.spindles == 1 {
            geometry.num_sectors
        } else {
            (geometry.num_sectors / chunk_sectors) * chunk_sectors * cfg.spindles as u64
        };
        // Per-spindle engines never coalesce across a stripe boundary
        // (two physically adjacent chunks belong to different stripe
        // units). A 1-spindle volume keeps the engine config untouched
        // so it behaves exactly like a plain EngineDisk.
        let mut engine_cfg = cfg.engine.clone();
        if cfg.spindles > 1 {
            engine_cfg = engine_cfg.with_stripe_boundary_sectors(chunk_sectors);
        }

        let registry = Registry::new();
        let obs = VolumeObs::from_registry(&registry);
        let global_writes = Arc::new(AtomicU64::new(0));
        let mut images = images.map(|v| v.into_iter());
        let spindles: Vec<EngineCore> = (0..cfg.spindles)
            .map(|i| {
                let mut disk = match images.as_mut().and_then(|it| it.next()) {
                    Some(image) => {
                        SimDisk::from_image(geometry.clone(), Arc::clone(&clock), image)
                    }
                    None => SimDisk::new(geometry.clone(), Arc::clone(&clock)),
                };
                disk.share_write_index(Arc::clone(&global_writes));
                let mut core = EngineCore::new(disk, engine_cfg.clone());
                core.set_metric_prefix(&format!("volume.spindle.{i}."));
                core.attach_obs(&registry);
                core
            })
            .collect();
        obs.spindles.set(cfg.spindles as u64);
        obs.balance.set(1000);
        Self {
            spindles,
            policy,
            cfg,
            clock,
            num_sectors,
            global_writes,
            crashed: false,
            tracked_reads: std::collections::BTreeMap::new(),
            next_read_token: 1,
            obs,
        }
    }

    /// Wraps the volume for sharing between a [`VolumeDisk`] (owned by
    /// the file system) and a driving event loop.
    pub fn into_shared(self) -> Rc<RefCell<StripedVolume>> {
        Rc::new(RefCell::new(self))
    }

    /// The volume configuration.
    pub fn config(&self) -> &VolumeConfig {
        &self.cfg
    }

    /// The shared virtual clock.
    pub fn clock(&self) -> &Arc<Clock> {
        &self.clock
    }

    /// Number of spindles.
    pub fn spindle_count(&self) -> usize {
        self.spindles.len()
    }

    /// Logical capacity in sectors.
    pub fn num_sectors(&self) -> u64 {
        self.num_sectors
    }

    /// The registry this volume currently reports into.
    pub fn obs(&self) -> &Registry {
        &self.obs.registry
    }

    /// Spindle `i`'s engine (e.g. to inspect per-spindle stats).
    pub fn spindle(&self, i: usize) -> &EngineCore {
        &self.spindles[i]
    }

    /// Spindle `i`'s engine, mutably (e.g. to inject media faults into
    /// one disk for degraded-read tests).
    pub fn spindle_mut(&mut self, i: usize) -> &mut EngineCore {
        &mut self.spindles[i]
    }

    /// Writes persisted so far across all spindles, in global persist
    /// order — the index space crash plans trigger on.
    pub fn global_writes(&self) -> u64 {
        self.global_writes.load(Ordering::Relaxed)
    }

    /// Arms the same crash plan on every spindle. All spindles share
    /// one write index, so the plan fires on whichever spindle services
    /// the globally N-th write; the volume then fails every subsequent
    /// request, like drives behind one failed power supply.
    pub fn arm_crash_all(&mut self, plan: CrashPlan) {
        for core in &mut self.spindles {
            core.disk_mut().arm_crash(plan);
        }
    }

    /// True once any spindle's crash plan has fired (or the volume
    /// observed a crashed spindle).
    pub fn has_crashed(&self) -> bool {
        self.crashed || self.spindles.iter().any(|c| c.disk().has_crashed())
    }

    /// Consumes the volume and returns each spindle's surviving image.
    /// Still-queued submissions are lost, exactly as after a power
    /// failure.
    pub fn into_images(self) -> Vec<Vec<u8>> {
        self.spindles
            .into_iter()
            .map(|core| core.into_disk().into_image())
            .collect()
    }

    /// Translates a per-spindle error into the volume's address space
    /// and latches the crashed state.
    fn translate(&mut self, spindle: usize, e: DiskError) -> DiskError {
        match e {
            DiskError::Crashed => {
                self.crashed = true;
                DiskError::Crashed
            }
            DiskError::Unreadable { sector } => DiskError::Unreadable {
                sector: to_logical(&*self.policy, self.spindles.len(), spindle, sector),
            },
            other => other,
        }
    }

    /// Recomputes the stripe-balance gauge: Jain's fairness index over
    /// per-spindle bytes written, scaled by 1000 (1000 = perfectly
    /// balanced, 1000/n = one spindle takes everything).
    fn update_balance(&mut self) {
        let written: Vec<f64> = self
            .spindles
            .iter()
            .map(|c| c.disk().stats().bytes_written as f64)
            .collect();
        let sum: f64 = written.iter().sum();
        let sum_sq: f64 = written.iter().map(|b| b * b).sum();
        let jain = if sum_sq == 0.0 {
            1000
        } else {
            ((sum * sum) / (written.len() as f64 * sum_sq) * 1000.0) as u64
        };
        self.obs.balance.set(jain);
    }

    fn split(&self, sector: u64, count: u64) -> Vec<SubRequest> {
        split_request(&*self.policy, self.spindles.len(), sector, count)
    }

    /// Reads `buf.len()` bytes at logical `sector`, fanning the request
    /// out and joining all pieces. Every piece is started before any is
    /// waited on, so spindles overlap; the first failing piece (in
    /// logical order) decides the error, but every started piece is
    /// still finished so no queue is left holding a read.
    pub fn read(&mut self, sector: u64, buf: &mut [u8]) -> DiskResult<()> {
        if self.crashed {
            return Err(DiskError::Crashed);
        }
        let count = check_request(sector, buf.len(), self.num_sectors)?;
        let subs = self.split(sector, count);
        self.obs.reads.inc();
        self.obs.bytes_read.add(buf.len() as u64);
        self.obs.subrequests.add(subs.len() as u64);
        if let [sub] = subs.as_slice() {
            // One piece: take the engine's combined path, which is
            // exactly the single-spindle EngineDisk request sequence.
            return match self.spindles[sub.spindle].do_read(sub.sector, buf) {
                Ok(()) => Ok(()),
                Err(e) => Err(self.translate(sub.spindle, e)),
            };
        }
        let mut handles = Vec::with_capacity(subs.len());
        for sub in &subs {
            match self.spindles[sub.spindle].start_read(sub.sector, sub.bytes()) {
                Ok(h) => handles.push(h),
                Err(e) => return Err(self.translate(sub.spindle, e)),
            }
        }
        let mut first_err: Option<DiskError> = None;
        for (sub, handle) in subs.iter().zip(handles) {
            let piece = &mut buf[sub.offset..sub.offset + sub.bytes()];
            match self.spindles[sub.spindle].finish_read(handle, sub.sector, piece) {
                Ok(()) => {}
                Err(e) => {
                    let e = self.translate(sub.spindle, e);
                    if e == DiskError::Crashed {
                        return Err(e);
                    }
                    first_err.get_or_insert(e);
                }
            }
        }
        match first_err {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }

    /// Writes `buf` at logical `sector`. Synchronous writes submit
    /// every piece before waiting on any; asynchronous writes go into
    /// each spindle's queue, pushing out per-spindle busy horizons in
    /// parallel.
    pub fn write(&mut self, sector: u64, buf: &[u8], sync: bool) -> DiskResult<()> {
        if self.crashed {
            return Err(DiskError::Crashed);
        }
        let count = check_request(sector, buf.len(), self.num_sectors)?;
        let subs = self.split(sector, count);
        self.obs.writes.inc();
        self.obs.bytes_written.add(buf.len() as u64);
        self.obs.subrequests.add(subs.len() as u64);
        let result = self.write_subs(&subs, buf, sync);
        self.update_balance();
        result
    }

    fn write_subs(&mut self, subs: &[SubRequest], buf: &[u8], sync: bool) -> DiskResult<()> {
        if !sync {
            for sub in subs {
                let piece = &buf[sub.offset..sub.offset + sub.bytes()];
                if let Err(e) = self.spindles[sub.spindle].submit_async_write(sub.sector, piece) {
                    return Err(self.translate(sub.spindle, e));
                }
            }
            return Ok(());
        }
        if let [sub] = subs {
            let piece = &buf[sub.offset..sub.offset + sub.bytes()];
            return match self.spindles[sub.spindle].do_sync_write(sub.sector, piece) {
                Ok(()) => Ok(()),
                Err(e) => Err(self.translate(sub.spindle, e)),
            };
        }
        let mut ids = Vec::with_capacity(subs.len());
        for sub in subs {
            let piece = &buf[sub.offset..sub.offset + sub.bytes()];
            match self.spindles[sub.spindle].start_sync_write(sub.sector, piece) {
                Ok(id) => ids.push(id),
                Err(e) => return Err(self.translate(sub.spindle, e)),
            }
        }
        for (sub, id) in subs.iter().zip(ids) {
            if let Err(e) = self.spindles[sub.spindle].finish_write(id) {
                return Err(self.translate(sub.spindle, e));
            }
        }
        Ok(())
    }

    /// Drains every spindle's queue and waits for all of them to go
    /// idle — the durability barrier. The clock lands on the *maximum*
    /// busy horizon: spindles drained their overlapped work in
    /// parallel.
    pub fn flush(&mut self) -> DiskResult<()> {
        if self.crashed {
            return Err(DiskError::Crashed);
        }
        for i in 0..self.spindles.len() {
            if let Err(e) = self.spindles[i].flush_all() {
                return Err(self.translate(i, e));
            }
        }
        self.update_balance();
        Ok(())
    }

    /// Marks subsequent submissions on every spindle as maintenance
    /// I/O (see [`EngineCore::set_maintenance`]).
    pub fn set_maintenance(&mut self, on: bool) {
        for core in &mut self.spindles {
            core.set_maintenance(on);
        }
    }

    /// Total requests pending across every spindle's queue.
    pub fn queue_depth(&self) -> u64 {
        self.spindles.iter().map(|c| c.queue_len()).sum()
    }

    /// Starts a tracked non-blocking read if the logical range maps to a
    /// single spindle (always true for ranges inside one segment under
    /// segment round-robin). Multi-spindle ranges return `None` and the
    /// caller falls back to the synchronous fan-out read.
    pub fn start_read_async(&mut self, sector: u64, len: usize) -> Option<u64> {
        if self.crashed {
            return None;
        }
        let count = check_request(sector, len, self.num_sectors).ok()?;
        let subs = self.split(sector, count);
        let [sub] = subs.as_slice() else { return None };
        self.obs.reads.inc();
        self.obs.bytes_read.add(len as u64);
        self.obs.subrequests.inc();
        let inner = self.spindles[sub.spindle]
            .start_tracked_read(sub.sector, sub.bytes())
            .ok()?;
        let token = self.next_read_token;
        self.next_read_token += 1;
        self.tracked_reads.insert(token, (sub.spindle, inner));
        Some(token)
    }

    /// Completes a read started by [`StripedVolume::start_read_async`].
    pub fn finish_read_async(&mut self, token: u64) -> DiskResult<Vec<u8>> {
        let (spindle, inner) = self
            .tracked_reads
            .remove(&token)
            .expect("finish_read_async: unknown token");
        self.spindles[spindle]
            .finish_tracked_read(inner)
            .map_err(|e| self.translate(spindle, e))
    }

    /// Lazily progresses every spindle to the current virtual time.
    pub fn pump(&mut self) -> DiskResult<()> {
        if self.crashed {
            return Err(DiskError::Crashed);
        }
        for i in 0..self.spindles.len() {
            if let Err(e) = self.spindles[i].pump() {
                return Err(self.translate(i, e));
            }
        }
        Ok(())
    }

    /// Labels the next traced access on every spindle.
    pub fn annotate(&mut self, label: &'static str) {
        for core in &mut self.spindles {
            core.disk_mut().annotate(label);
        }
    }

    /// Re-homes the volume's aggregate instruments and every spindle's
    /// prefixed instruments into `registry`.
    pub fn attach_obs(&mut self, registry: &Registry) {
        self.obs.rehome(registry);
        for core in &mut self.spindles {
            core.attach_obs(registry);
        }
    }
}

/// A cheap [`BlockDevice`] handle onto a shared [`StripedVolume`].
///
/// The file system owns one handle; a driving event loop may hold
/// another (via the `Rc`) and use the [`RequestEngine`] impl to pump
/// the spindles and attribute submissions to clients.
#[derive(Clone)]
pub struct VolumeDisk(Rc<RefCell<StripedVolume>>);

impl VolumeDisk {
    /// Creates a handle onto `volume`.
    pub fn new(volume: Rc<RefCell<StripedVolume>>) -> Self {
        Self(volume)
    }

    /// The shared volume.
    pub fn volume(&self) -> &Rc<RefCell<StripedVolume>> {
        &self.0
    }

    /// Writes persisted so far across all spindles (global persist
    /// order).
    pub fn global_writes(&self) -> u64 {
        self.0.borrow().global_writes()
    }

    /// True once the volume has crashed.
    pub fn has_crashed(&self) -> bool {
        self.0.borrow().has_crashed()
    }

    /// Arms the same crash plan on every spindle (shared write index).
    pub fn arm_crash_all(&self, plan: CrashPlan) {
        self.0.borrow_mut().arm_crash_all(plan);
    }

    /// Consumes the last handle and returns each spindle's surviving
    /// image.
    ///
    /// # Panics
    ///
    /// Panics if other handles onto the volume are still alive.
    pub fn into_images(self) -> Vec<Vec<u8>> {
        Rc::try_unwrap(self.0)
            .ok()
            .expect("into_images: other volume handles still alive")
            .into_inner()
            .into_images()
    }
}

impl BlockDevice for VolumeDisk {
    fn num_sectors(&self) -> u64 {
        self.0.borrow().num_sectors()
    }

    fn read(&mut self, sector: u64, buf: &mut [u8]) -> DiskResult<()> {
        self.0.borrow_mut().read(sector, buf)
    }

    fn write(&mut self, sector: u64, buf: &[u8], sync: bool) -> DiskResult<()> {
        self.0.borrow_mut().write(sector, buf, sync)
    }

    fn flush(&mut self) -> DiskResult<()> {
        self.0.borrow_mut().flush()
    }

    fn annotate(&mut self, label: &'static str) {
        self.0.borrow_mut().annotate(label);
    }

    fn attach_obs(&mut self, registry: &Registry) {
        self.0.borrow_mut().attach_obs(registry);
    }

    fn set_maintenance(&mut self, on: bool) {
        self.0.borrow_mut().set_maintenance(on);
    }

    fn start_read_async(&mut self, sector: u64, len: usize) -> Option<u64> {
        self.0.borrow_mut().start_read_async(sector, len)
    }

    fn finish_read_async(&mut self, token: u64) -> DiskResult<Vec<u8>> {
        self.0.borrow_mut().finish_read_async(token)
    }
}

impl RequestEngine for VolumeDisk {
    fn clock(&self) -> Arc<Clock> {
        Arc::clone(self.0.borrow().clock())
    }

    fn pump(&self) -> DiskResult<()> {
        self.0.borrow_mut().pump()
    }

    fn set_client(&self, client: Option<usize>) {
        let mut volume = self.0.borrow_mut();
        for core in &mut volume.spindles {
            core.set_client(client);
        }
    }

    fn register_clients(&self, n: usize) {
        let mut volume = self.0.borrow_mut();
        for core in &mut volume.spindles {
            core.register_clients(n);
        }
    }

    fn queue_depth(&self) -> u64 {
        self.0.borrow().queue_depth()
    }

    fn set_qos(&self, spec: Option<engine::QosSpec>) {
        let mut volume = self.0.borrow_mut();
        for core in &mut volume.spindles {
            core.set_qos(spec.clone());
        }
    }
}
