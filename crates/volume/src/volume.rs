//! The striped volume: N spindles behind one [`BlockDevice`].
//!
//! A [`StripedVolume`] owns one [`EngineCore`] per spindle — each an
//! independent [`SimDisk`] with its own mechanical model, request
//! queue, and scheduler instance, all sharing one virtual [`Clock`] —
//! and fans every logical request out to per-spindle sub-requests
//! according to a [`StripePolicy`]. A logical request completes only
//! when all of its pieces have landed; a partial failure surfaces the
//! first piece's [`DiskError`], translated back into the volume's
//! logical address space.
//!
//! The overlap that makes striping pay comes from two places:
//!
//! * **Asynchronous writes** only push out each spindle's busy horizon,
//!   so horizons grow in parallel and the final flush waits for the
//!   *maximum* horizon, not the sum.
//! * **Synchronous requests** use the engine's split start/finish API:
//!   every piece is submitted before any is waited on, so the spindles
//!   service their pieces in overlapped virtual time.
//!
//! Crash plans arm across all spindles with a shared write index (see
//! [`SimDisk::share_write_index`]): power fails at the globally N-th
//! write, wherever it lands, and every spindle stops together.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::rc::Rc;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use engine::{EngineConfig, EngineCore, RequestEngine};
use obs::{Counter, Gauge, Registry};
use sim_disk::{
    check_request, BlockDevice, Clock, CrashPlan, DiskError, DiskGeometry, DiskResult, SimDisk,
    SECTOR_SIZE,
};

use crate::health::{HealthEvent, HealthMonitor, HealthPolicy, HealthState};
use crate::policy::{
    split_request, to_logical, BlockInterleave, ParityRotate, ParitySegment, SegmentRoundRobin,
    StripePolicy, StripePolicyKind, SubRequest,
};
use crate::rebuild::{RebuildPolicy, RebuildProgress, RebuildRun, SpindleState};

/// Parameters of a striped volume.
#[derive(Debug, Clone)]
pub struct VolumeConfig {
    /// Number of spindles (independent disks). One is allowed: the
    /// volume then behaves exactly like a single engine-fronted disk.
    pub spindles: usize,
    /// Striping policy.
    pub policy: StripePolicyKind,
    /// Stripe-unit size in bytes: the LFS segment size for
    /// [`StripePolicyKind::RrSegment`], a small power of two for
    /// [`StripePolicyKind::Interleave`].
    pub chunk_bytes: usize,
    /// Per-spindle engine configuration (scheduler, queue depth, ...).
    pub engine: EngineConfig,
}

impl VolumeConfig {
    /// Segment-granular round-robin over `spindles` disks.
    pub fn rr_segment(spindles: usize, segment_bytes: usize) -> Self {
        Self {
            spindles,
            policy: StripePolicyKind::RrSegment,
            chunk_bytes: segment_bytes,
            engine: EngineConfig::default(),
        }
    }

    /// RAID-0 block interleave over `spindles` disks.
    pub fn interleave(spindles: usize, chunk_bytes: usize) -> Self {
        Self {
            spindles,
            policy: StripePolicyKind::Interleave,
            chunk_bytes,
            engine: EngineConfig::default(),
        }
    }

    /// Per-segment parity over `spindles` disks: one LFS segment of
    /// `segment_bytes` covers exactly one data row (`spindles - 1`
    /// chunks), so full-segment writes compute parity from the write
    /// buffer alone and never read old data.
    ///
    /// # Panics
    ///
    /// Panics unless `spindles >= 2` and `segment_bytes` splits evenly
    /// into `spindles - 1` sector-aligned chunks.
    pub fn parity_segment(spindles: usize, segment_bytes: usize) -> Self {
        assert!(spindles >= 2, "parity needs at least 2 spindles");
        let data = spindles - 1;
        assert!(
            segment_bytes > 0 && segment_bytes.is_multiple_of(data * SECTOR_SIZE),
            "segment of {segment_bytes} bytes must split into {data} sector-aligned chunks"
        );
        Self {
            spindles,
            policy: StripePolicyKind::ParitySegment,
            chunk_bytes: segment_bytes / data,
            engine: EngineConfig::default(),
        }
    }

    /// RAID-5 rotating parity over `spindles` disks with `chunk_bytes`
    /// stripe units.
    ///
    /// # Panics
    ///
    /// Panics unless `spindles >= 2`.
    pub fn parity_rotate(spindles: usize, chunk_bytes: usize) -> Self {
        assert!(spindles >= 2, "parity needs at least 2 spindles");
        Self {
            spindles,
            policy: StripePolicyKind::ParityRotate,
            chunk_bytes,
            engine: EngineConfig::default(),
        }
    }

    /// Replaces the per-spindle engine configuration.
    pub fn with_engine(mut self, engine: EngineConfig) -> Self {
        self.engine = engine;
        self
    }

    fn build_policy(&self) -> Box<dyn StripePolicy> {
        match self.policy {
            StripePolicyKind::RrSegment => Box::new(SegmentRoundRobin::new(self.chunk_bytes)),
            StripePolicyKind::Interleave => Box::new(BlockInterleave::new(self.chunk_bytes)),
            StripePolicyKind::ParitySegment => Box::new(ParitySegment::new(self.chunk_bytes)),
            StripePolicyKind::ParityRotate => Box::new(ParityRotate::new(self.chunk_bytes)),
        }
    }
}

/// The volume's aggregate instruments (per-spindle instruments live
/// under `volume.spindle.<i>.*` via each engine's metric prefix).
#[derive(Debug, Clone)]
struct VolumeObs {
    registry: Registry,
    reads: Counter,
    writes: Counter,
    bytes_read: Counter,
    bytes_written: Counter,
    subrequests: Counter,
    /// Logical reads that needed at least one XOR reconstruction.
    degraded_reads: Counter,
    /// Per-piece XOR reconstructions (a degraded read may need several).
    reconstructions: Counter,
    rebuild_steps: Counter,
    rebuild_rows: Counter,
    rebuild_bytes: Counter,
    rebuild_completed: Counter,
    /// Rows whose parity a [`StripedVolume::resync_parity`] scan rewrote.
    resync_rows_fixed: Counter,
    /// Hedged races run: a deadline-blown direct read raced against
    /// XOR reconstruction from the survivors.
    hedged_reads: Counter,
    /// Spindles the health monitor marked suspect.
    health_suspects: Counter,
    /// Suspect spindles that cleared the SLO and were forgiven.
    health_recoveries: Counter,
    /// Spindles the health monitor auto-evicted (fail-slow).
    health_evictions: Counter,
    /// Hot spares consumed by automatic failover.
    health_spares_used: Counter,
    rebuild_remaining: Gauge,
    spindles: Gauge,
    spindles_online: Gauge,
    balance: Gauge,
}

impl VolumeObs {
    fn from_registry(registry: &Registry) -> Self {
        VolumeObs {
            registry: registry.clone(),
            reads: registry.counter("volume.reads"),
            writes: registry.counter("volume.writes"),
            bytes_read: registry.counter("volume.bytes_read"),
            bytes_written: registry.counter("volume.bytes_written"),
            subrequests: registry.counter("volume.subrequests"),
            degraded_reads: registry.counter("volume.degraded_reads"),
            reconstructions: registry.counter("volume.reconstructions"),
            rebuild_steps: registry.counter("volume.rebuild.steps"),
            rebuild_rows: registry.counter("volume.rebuild.rows"),
            rebuild_bytes: registry.counter("volume.rebuild.bytes_written"),
            rebuild_completed: registry.counter("volume.rebuild.runs_completed"),
            resync_rows_fixed: registry.counter("volume.resync_rows_fixed"),
            hedged_reads: registry.counter("volume.hedged_reads"),
            health_suspects: registry.counter("volume.health.suspects"),
            health_recoveries: registry.counter("volume.health.recoveries"),
            health_evictions: registry.counter("volume.health.evictions"),
            health_spares_used: registry.counter("volume.health.spares_used"),
            rebuild_remaining: registry.gauge("volume.rebuild.remaining_rows"),
            spindles: registry.gauge("volume.spindles"),
            spindles_online: registry.gauge("volume.spindles_online"),
            balance: registry.gauge("volume.stripe_balance_millis"),
        }
    }

    fn rehome(&mut self, registry: &Registry) {
        self.registry = registry.clone();
        self.reads = registry.adopt_counter("volume.reads", &self.reads);
        self.writes = registry.adopt_counter("volume.writes", &self.writes);
        self.bytes_read = registry.adopt_counter("volume.bytes_read", &self.bytes_read);
        self.bytes_written = registry.adopt_counter("volume.bytes_written", &self.bytes_written);
        self.subrequests = registry.adopt_counter("volume.subrequests", &self.subrequests);
        self.degraded_reads = registry.adopt_counter("volume.degraded_reads", &self.degraded_reads);
        self.reconstructions =
            registry.adopt_counter("volume.reconstructions", &self.reconstructions);
        self.rebuild_steps = registry.adopt_counter("volume.rebuild.steps", &self.rebuild_steps);
        self.rebuild_rows = registry.adopt_counter("volume.rebuild.rows", &self.rebuild_rows);
        self.rebuild_bytes =
            registry.adopt_counter("volume.rebuild.bytes_written", &self.rebuild_bytes);
        self.rebuild_completed =
            registry.adopt_counter("volume.rebuild.runs_completed", &self.rebuild_completed);
        self.resync_rows_fixed =
            registry.adopt_counter("volume.resync_rows_fixed", &self.resync_rows_fixed);
        self.hedged_reads = registry.adopt_counter("volume.hedged_reads", &self.hedged_reads);
        self.health_suspects =
            registry.adopt_counter("volume.health.suspects", &self.health_suspects);
        self.health_recoveries =
            registry.adopt_counter("volume.health.recoveries", &self.health_recoveries);
        self.health_evictions =
            registry.adopt_counter("volume.health.evictions", &self.health_evictions);
        self.health_spares_used =
            registry.adopt_counter("volume.health.spares_used", &self.health_spares_used);
        self.rebuild_remaining =
            registry.adopt_gauge("volume.rebuild.remaining_rows", &self.rebuild_remaining);
        self.spindles = registry.adopt_gauge("volume.spindles", &self.spindles);
        self.spindles_online =
            registry.adopt_gauge("volume.spindles_online", &self.spindles_online);
        self.balance = registry.adopt_gauge("volume.stripe_balance_millis", &self.balance);
    }
}

/// XORs `src` into `dst` byte by byte (`dst.len()` must equal
/// `src.len()`); the whole parity subsystem reduces to this.
fn xor_into(dst: &mut [u8], src: &[u8]) {
    debug_assert_eq!(dst.len(), src.len());
    for (d, s) in dst.iter_mut().zip(src) {
        *d ^= *s;
    }
}

/// One tracked async read in flight against a single spindle. The
/// physical and logical addresses are kept so the claim can fall back
/// to XOR reconstruction if the spindle is killed (operator command or
/// health eviction) while the read is still queued.
#[derive(Debug, Clone, Copy)]
struct TrackedVolumeRead {
    spindle: usize,
    inner: u64,
    sector: u64,
    logical: u64,
    len: usize,
}

/// N independent spindles striped into one logical block device.
pub struct StripedVolume {
    spindles: Vec<EngineCore>,
    policy: Box<dyn StripePolicy>,
    cfg: VolumeConfig,
    clock: Arc<Clock>,
    /// Logical capacity: with several spindles, each disk contributes
    /// only whole stripe units.
    num_sectors: u64,
    /// Global write index shared by every spindle's crash plan.
    global_writes: Arc<AtomicU64>,
    /// Set once any spindle reports [`DiskError::Crashed`]; all
    /// subsequent volume operations fail fast — one power supply.
    crashed: bool,
    /// Volume token → in-flight tracked async read.
    tracked_reads: std::collections::BTreeMap<u64, TrackedVolumeRead>,
    next_read_token: u64,
    /// Per-spindle availability (all [`SpindleState::Online`] until
    /// [`StripedVolume::kill_spindle`]).
    states: Vec<SpindleState>,
    /// The in-flight rebuild, if a replaced spindle is being refilled.
    rebuild: Option<RebuildRun>,
    /// Fail-slow watcher over the spindles, when armed (see
    /// [`StripedVolume::set_health_policy`]).
    health: Option<HealthMonitor>,
    /// Blank drives on the shelf for automatic failover.
    hot_spares: usize,
    /// Pacing for a rebuild the health monitor starts on its own.
    spare_rebuild_policy: RebuildPolicy,
    obs: VolumeObs,
}

impl StripedVolume {
    /// Creates a volume of `cfg.spindles` zero-filled disks, each with
    /// `geometry`, sharing `clock`.
    ///
    /// # Panics
    ///
    /// Panics if `cfg.spindles` is zero or `cfg.chunk_bytes` is not a
    /// positive multiple of the sector size.
    pub fn new(geometry: DiskGeometry, clock: Arc<Clock>, cfg: VolumeConfig) -> Self {
        Self::build(geometry, clock, cfg, None)
    }

    /// Revives a volume from per-spindle images (e.g. after a crash).
    ///
    /// # Panics
    ///
    /// Panics if the image count does not match `cfg.spindles` or any
    /// image does not match `geometry`.
    pub fn from_images(
        geometry: DiskGeometry,
        clock: Arc<Clock>,
        cfg: VolumeConfig,
        images: Vec<Vec<u8>>,
    ) -> Self {
        assert_eq!(images.len(), cfg.spindles, "one image per spindle");
        Self::build(geometry, clock, cfg, Some(images))
    }

    fn build(
        geometry: DiskGeometry,
        clock: Arc<Clock>,
        cfg: VolumeConfig,
        images: Option<Vec<Vec<u8>>>,
    ) -> Self {
        assert!(cfg.spindles >= 1, "a volume needs at least one spindle");
        assert!(
            cfg.spindles >= cfg.policy.min_spindles(),
            "{} needs at least {} spindles",
            cfg.policy.name(),
            cfg.policy.min_spindles()
        );
        let policy = cfg.build_policy();
        let chunk_sectors = policy.chunk_sectors();
        // A single spindle is the identity mapping over the whole disk;
        // with several, each contributes only whole stripe units — and
        // under a parity policy one chunk per row is redundancy, not
        // address space.
        let num_sectors = if cfg.spindles == 1 {
            geometry.num_sectors
        } else {
            (geometry.num_sectors / chunk_sectors)
                * chunk_sectors
                * policy.data_per_row(cfg.spindles) as u64
        };
        // Per-spindle engines never coalesce across a stripe boundary
        // (two physically adjacent chunks belong to different stripe
        // units). A 1-spindle volume keeps the engine config untouched
        // so it behaves exactly like a plain EngineDisk.
        let mut engine_cfg = cfg.engine.clone();
        if cfg.spindles > 1 {
            engine_cfg = engine_cfg.with_stripe_boundary_sectors(chunk_sectors);
        }

        let registry = Registry::new();
        let obs = VolumeObs::from_registry(&registry);
        let global_writes = Arc::new(AtomicU64::new(0));
        let mut images = images.map(|v| v.into_iter());
        let spindles: Vec<EngineCore> = (0..cfg.spindles)
            .map(|i| {
                let mut disk = match images.as_mut().and_then(|it| it.next()) {
                    Some(image) => {
                        SimDisk::from_image(geometry.clone(), Arc::clone(&clock), image)
                    }
                    None => SimDisk::new(geometry.clone(), Arc::clone(&clock)),
                };
                disk.share_write_index(Arc::clone(&global_writes));
                let mut core = EngineCore::new(disk, engine_cfg.clone());
                core.set_metric_prefix(&format!("volume.spindle.{i}."));
                core.attach_obs(&registry);
                core
            })
            .collect();
        obs.spindles.set(cfg.spindles as u64);
        obs.spindles_online.set(cfg.spindles as u64);
        obs.balance.set(1000);
        let states = vec![SpindleState::Online; cfg.spindles];
        Self {
            spindles,
            policy,
            cfg,
            clock,
            num_sectors,
            global_writes,
            crashed: false,
            tracked_reads: std::collections::BTreeMap::new(),
            next_read_token: 1,
            states,
            rebuild: None,
            health: None,
            hot_spares: 0,
            spare_rebuild_policy: RebuildPolicy::default(),
            obs,
        }
    }

    /// Wraps the volume for sharing between a [`VolumeDisk`] (owned by
    /// the file system) and a driving event loop.
    pub fn into_shared(self) -> Rc<RefCell<StripedVolume>> {
        Rc::new(RefCell::new(self))
    }

    /// The volume configuration.
    pub fn config(&self) -> &VolumeConfig {
        &self.cfg
    }

    /// The shared virtual clock.
    pub fn clock(&self) -> &Arc<Clock> {
        &self.clock
    }

    /// Number of spindles.
    pub fn spindle_count(&self) -> usize {
        self.spindles.len()
    }

    /// Logical capacity in sectors.
    pub fn num_sectors(&self) -> u64 {
        self.num_sectors
    }

    /// The registry this volume currently reports into.
    pub fn obs(&self) -> &Registry {
        &self.obs.registry
    }

    /// Spindle `i`'s engine (e.g. to inspect per-spindle stats).
    pub fn spindle(&self, i: usize) -> &EngineCore {
        &self.spindles[i]
    }

    /// Spindle `i`'s engine, mutably (e.g. to inject media faults into
    /// one disk for degraded-read tests).
    pub fn spindle_mut(&mut self, i: usize) -> &mut EngineCore {
        &mut self.spindles[i]
    }

    /// Writes persisted so far across all spindles, in global persist
    /// order — the index space crash plans trigger on.
    pub fn global_writes(&self) -> u64 {
        self.global_writes.load(Ordering::Relaxed)
    }

    /// Arms the same crash plan on every spindle. All spindles share
    /// one write index, so the plan fires on whichever spindle services
    /// the globally N-th write; the volume then fails every subsequent
    /// request, like drives behind one failed power supply.
    pub fn arm_crash_all(&mut self, plan: CrashPlan) {
        for core in &mut self.spindles {
            core.disk_mut().arm_crash(plan);
        }
    }

    /// True once any spindle's crash plan has fired (or the volume
    /// observed a crashed spindle).
    pub fn has_crashed(&self) -> bool {
        self.crashed || self.spindles.iter().any(|c| c.disk().has_crashed())
    }

    /// Consumes the volume and returns each spindle's surviving image.
    /// Still-queued submissions are lost, exactly as after a power
    /// failure.
    pub fn into_images(self) -> Vec<Vec<u8>> {
        self.spindles
            .into_iter()
            .map(|core| core.into_disk().into_image())
            .collect()
    }

    /// Translates a per-spindle error into the volume's address space
    /// and latches the crashed state.
    fn translate(&mut self, spindle: usize, e: DiskError) -> DiskError {
        match e {
            DiskError::Crashed => {
                self.crashed = true;
                DiskError::Crashed
            }
            DiskError::Unreadable { sector } => DiskError::Unreadable {
                sector: to_logical(&*self.policy, self.spindles.len(), spindle, sector),
            },
            other => other,
        }
    }

    /// Recomputes the stripe-balance gauge: Jain's fairness index over
    /// per-spindle bytes written, scaled by 1000 (1000 = perfectly
    /// balanced, 1000/n = one spindle takes everything). Offline and
    /// rebuilding spindles are excluded — a dead drive takes no writes
    /// by design, and a mid-rebuild replacement is catching up, so
    /// counting either would report phantom imbalance during degraded
    /// operation.
    fn update_balance(&mut self) {
        let written: Vec<f64> = self
            .spindles
            .iter()
            .zip(&self.states)
            .filter(|(_, state)| **state == SpindleState::Online)
            .map(|(c, _)| c.disk().stats().bytes_written as f64)
            .collect();
        let sum: f64 = written.iter().sum();
        let sum_sq: f64 = written.iter().map(|b| b * b).sum();
        let jain = if sum_sq == 0.0 {
            1000
        } else {
            ((sum * sum) / (written.len() as f64 * sum_sq) * 1000.0) as u64
        };
        self.obs.balance.set(jain);
    }

    fn split(&self, sector: u64, count: u64) -> Vec<SubRequest> {
        split_request(&*self.policy, self.spindles.len(), sector, count)
    }

    /// True when the volume keeps parity (reads can reconstruct).
    fn is_parity(&self) -> bool {
        self.cfg.policy.is_parity()
    }

    fn online_count(&self) -> u64 {
        self.states
            .iter()
            .filter(|s| **s == SpindleState::Online)
            .count() as u64
    }

    /// Availability of spindle `i`.
    pub fn spindle_state(&self, i: usize) -> SpindleState {
        self.states[i]
    }

    /// The in-flight rebuild, if a replaced spindle is being refilled.
    pub fn rebuild(&self) -> Option<&RebuildRun> {
        self.rebuild.as_ref()
    }

    /// Arms fail-slow health monitoring: every parity read feeds each
    /// touched spindle's predicted service latency (and media errors)
    /// into a [`HealthMonitor`], and a spindle that breaches `policy`
    /// past its hysteresis is auto-evicted — killed and, when a hot
    /// spare is stocked ([`StripedVolume::set_hot_spares`]), replaced
    /// and rebuilt online with zero operator actions.
    pub fn set_health_policy(&mut self, policy: HealthPolicy) {
        self.health = Some(HealthMonitor::new(self.spindles.len(), policy));
        for i in 0..self.spindles.len() {
            self.health_state_gauge(i, HealthState::Healthy);
        }
    }

    /// Stocks `n` blank hot spares for the health monitor's automatic
    /// failover; each eviction consumes one.
    pub fn set_hot_spares(&mut self, n: usize) {
        self.hot_spares = n;
    }

    /// Hot spares still on the shelf.
    pub fn hot_spares(&self) -> usize {
        self.hot_spares
    }

    /// Replaces the pacing policy for rebuilds the health monitor
    /// starts when it fails over to a hot spare.
    pub fn set_spare_rebuild_policy(&mut self, policy: RebuildPolicy) {
        self.spare_rebuild_policy = policy;
    }

    /// The health monitor's verdict on spindle `i` (`None` when
    /// monitoring is not armed).
    pub fn health_state(&self, i: usize) -> Option<HealthState> {
        self.health.as_ref().map(|h| h.state(i))
    }

    /// The health monitor's smoothed service-time inflation for
    /// spindle `i`, in per-mille of the mechanical model's cost
    /// (1000 = on-model; `None` when monitoring is not armed).
    pub fn health_inflation_millis(&self, i: usize) -> Option<u64> {
        self.health.as_ref().map(|h| h.ewma_inflation_millis(i))
    }

    /// Publishes spindle `i`'s health verdict as a gauge
    /// (`volume.health.state.<i>`: 0 healthy, 1 suspect, 2 evicted).
    fn health_state_gauge(&self, i: usize, state: HealthState) {
        let value = match state {
            HealthState::Healthy => 0,
            HealthState::Suspect => 1,
            HealthState::Evicted => 2,
        };
        self.obs
            .registry
            .gauge(&format!("volume.health.state.{i}"))
            .set(value);
    }

    /// Feeds one serviced-request observation (observed vs model-
    /// expected service time) into the health monitor and applies any
    /// suspect/recover transition immediately. Evictions are *returned*
    /// instead of applied, so a read loop can finish its in-flight
    /// pieces before the volume kills the spindle under them.
    fn observe_health(&mut self, spindle: usize, observed_ns: u64, expected_ns: u64) -> bool {
        let Some(monitor) = self.health.as_mut() else {
            return false;
        };
        let event = monitor.observe(spindle, observed_ns, expected_ns);
        self.apply_health_event(spindle, event)
    }

    /// Applies a health transition, publishing counters, gauges, and
    /// registry events. Returns true when the verdict is eviction.
    fn apply_health_event(&mut self, spindle: usize, event: Option<HealthEvent>) -> bool {
        match event {
            None => false,
            Some(HealthEvent::Suspected(i)) => {
                self.obs.health_suspects.inc();
                self.health_state_gauge(i, HealthState::Suspect);
                self.obs.registry.event(
                    self.clock.now_ns(),
                    "health",
                    format!("spindle {i} suspect (fail-slow)"),
                );
                false
            }
            Some(HealthEvent::Recovered(i)) => {
                self.obs.health_recoveries.inc();
                self.health_state_gauge(i, HealthState::Healthy);
                self.obs.registry.event(
                    self.clock.now_ns(),
                    "health",
                    format!("spindle {i} recovered"),
                );
                false
            }
            Some(HealthEvent::Evicted(i)) => {
                debug_assert_eq!(i, spindle);
                true
            }
        }
    }

    /// Feeds one piece's predicted service-time inflation (observed
    /// over the mechanical model's cost for the same piece — a pure
    /// media signal, independent of queue depth and request shape) into
    /// the health monitor, queueing the spindle on `evict` when the
    /// verdict is eviction. Reads and writes carry the same signal, so
    /// both paths feed it; callers apply `evict` only once no in-flight
    /// handle could dangle on the killed queue.
    fn feed_health(&mut self, spindle: usize, sector: u64, bytes: u64, evict: &mut Vec<usize>) {
        if self.health.is_none() || self.states[spindle] != SpindleState::Online {
            return;
        }
        let disk = self.spindles[spindle].disk();
        let start = disk.busy_until_ns().max(self.clock.now_ns());
        let svc = disk.estimate_service_ns(start, sector, bytes);
        let model = disk.estimate_base_service_ns(sector, bytes);
        if self.observe_health(spindle, svc, model) && !evict.contains(&spindle) {
            evict.push(spindle);
        }
    }

    /// Applies a health eviction: the spindle is killed (reads
    /// reconstruct, writes keep parity current) and, if a hot spare is
    /// stocked, the spare is swapped in and the online rebuild starts.
    fn auto_evict(&mut self, i: usize) {
        if !self.is_parity() || self.states[i] != SpindleState::Online {
            return;
        }
        self.obs.health_evictions.inc();
        self.health_state_gauge(i, HealthState::Evicted);
        self.obs.registry.event(
            self.clock.now_ns(),
            "health",
            format!("spindle {i} evicted (fail-slow)"),
        );
        self.kill_spindle(i);
        if self.hot_spares > 0 {
            self.hot_spares -= 1;
            self.obs.health_spares_used.inc();
            self.replace_spindle(i, self.spare_rebuild_policy)
                .expect("hot-spare failover: spindle was just killed on a parity volume");
        }
    }

    /// Kills spindle `i`: the media dies ([`SimDisk::kill_media`]), its
    /// queue is discarded (queued I/O dies with the drive), and the
    /// volume routes around it — on a parity volume reads reconstruct
    /// and writes keep parity current, so no data is lost; on a RAID-0
    /// volume requests touching the spindle simply fail.
    pub fn kill_spindle(&mut self, i: usize) {
        self.states[i] = SpindleState::Dead;
        self.spindles[i].disk_mut().kill_media();
        self.spindles[i].discard_queue();
        if self.rebuild.as_ref().is_some_and(|r| r.spindle() == i) {
            // The replacement died mid-rebuild; wait for the next one.
            self.rebuild = None;
        }
        self.obs.spindles_online.set(self.online_count());
        self.obs.registry.event(
            self.clock.now_ns(),
            "volume",
            format!("spindle {i} dead"),
        );
        self.update_balance();
    }

    /// Swaps a blank replacement into bay `i` and starts an online
    /// rebuild governed by `policy`. The replacement is written through
    /// immediately (so rebuilt rows stay fresh under foreground writes)
    /// but serves no reads until [`StripedVolume::rebuild_step`] walks
    /// every chunk row; the host event loop paces the steps via
    /// [`StripedVolume::rebuild_wants_step`].
    ///
    /// # Errors
    ///
    /// Returns [`DiskError::Unsupported`] — without touching any media
    /// — when `i` is not a bay of this volume, the volume keeps no
    /// parity (RAID-0 has nothing to rebuild from), or spindle `i` is
    /// not [`SpindleState::Dead`] (replacing a live or already
    /// rebuilding drive would discard data a rebuild cannot recover).
    pub fn replace_spindle(&mut self, i: usize, policy: RebuildPolicy) -> DiskResult<()> {
        if i >= self.spindles.len() {
            return Err(DiskError::Unsupported("replace_spindle: no such bay"));
        }
        if !self.is_parity() {
            return Err(DiskError::Unsupported(
                "replace_spindle: only parity volumes can rebuild a replacement",
            ));
        }
        if self.states[i] != SpindleState::Dead {
            return Err(DiskError::Unsupported(
                "replace_spindle: spindle is not dead",
            ));
        }
        self.spindles[i].disk_mut().replace_media();
        self.states[i] = SpindleState::Rebuilding;
        let chunk = self.policy.chunk_sectors();
        let rows = self.spindles[i].disk().num_sectors() / chunk;
        self.rebuild = Some(RebuildRun::new(i, rows, policy));
        self.obs.rebuild_remaining.set(rows);
        self.obs.registry.event(
            self.clock.now_ns(),
            "volume",
            format!("spindle {i} replaced, rebuilding {rows} rows"),
        );
        self.update_balance();
        Ok(())
    }

    /// Whether the rebuild policy allows a step at the current queue
    /// depth (idle gate / urgency watermark; see [`RebuildPolicy`]).
    pub fn rebuild_wants_step(&self) -> bool {
        self.rebuild
            .as_ref()
            .is_some_and(|r| r.wants_step(self.queue_depth()))
    }

    /// Reconstructs and writes up to [`RebuildPolicy::max_step_rows`]
    /// chunk rows to the replacement, as maintenance-class I/O through
    /// the same engine queues foreground requests use. Every physical
    /// row — data or parity — is the XOR of the same row on the
    /// surviving spindles, so the rebuild needs no role bookkeeping.
    pub fn rebuild_step(&mut self) -> DiskResult<RebuildProgress> {
        if self.crashed {
            return Err(DiskError::Crashed);
        }
        let Some(run) = self.rebuild.as_mut() else {
            return Ok(RebuildProgress::Idle);
        };
        let target = run.spindle();
        let (first, rows) = run.claim_step();
        if rows == 0 {
            return Ok(RebuildProgress::Idle);
        }
        let chunk = self.policy.chunk_sectors();
        self.set_maintenance(true);
        let mut row_buf = vec![0u8; chunk as usize * SECTOR_SIZE];
        for row in first..first + rows {
            let sector = row * chunk;
            let step = self
                .reconstruct_range(target, sector, &mut row_buf)
                .and_then(|()| self.spindles[target].do_sync_write(sector, &row_buf));
            if let Err(e) = step {
                self.set_maintenance(false);
                if let Some(run) = self.rebuild.as_mut() {
                    run.rewind_to(row);
                }
                if e == DiskError::Crashed {
                    self.crashed = true;
                }
                return Err(e);
            }
            self.obs.rebuild_rows.inc();
            self.obs.rebuild_bytes.add(row_buf.len() as u64);
        }
        self.set_maintenance(false);
        self.obs.rebuild_steps.inc();
        let remaining = self.rebuild.as_ref().expect("run in progress").remaining_rows();
        self.obs.rebuild_remaining.set(remaining);
        if remaining == 0 {
            self.states[target] = SpindleState::Online;
            self.rebuild = None;
            // The rebuilt drive is new hardware: judge it on its own
            // record, not its predecessor's.
            if let Some(monitor) = self.health.as_mut() {
                monitor.reset(target);
                self.health_state_gauge(target, HealthState::Healthy);
            }
            self.obs.rebuild_completed.inc();
            self.obs.spindles_online.set(self.online_count());
            self.obs.registry.event(
                self.clock.now_ns(),
                "volume",
                format!("spindle {target} rebuilt, back online"),
            );
            self.update_balance();
            return Ok(RebuildProgress::Completed);
        }
        Ok(RebuildProgress::Progress { rows })
    }

    /// Recomputes parity from the data chunks on every row, closing the
    /// RAID-5 write hole after an unclean shutdown: a crash between a
    /// row's data write and its parity update leaves the row's XOR
    /// stale, and a later reconstruction through that row would corrupt
    /// *committed* bytes at the same within-row offsets on whichever
    /// spindle is being reconstructed. Data chunks are authoritative;
    /// parity is rewritten wherever the row XOR is nonzero. Run this
    /// before trusting the volume to tolerate a spindle loss again —
    /// exactly the resync a conventional array performs when assembled
    /// dirty. Returns the number of rows fixed.
    ///
    /// Only sound when every spindle's *media is current*. If any
    /// spindle stopped persisting before the shutdown (a dead drive
    /// re-presenting stale media), its latest logical contents exist
    /// only in the parity encoding, and "resyncing" parity from the
    /// stale media destroys exactly the bytes a rebuild must
    /// reproduce. Kill such a spindle first and rebuild it instead;
    /// never resync a dirty *degraded* assembly.
    ///
    /// # Errors
    ///
    /// Returns [`DiskError::Unsupported`] — without touching any media
    /// — on a non-parity volume, or on a degraded assembly (any spindle
    /// dead or rebuilding): a write hole plus a missing spindle is a
    /// genuine double fault with nothing authoritative to resync from,
    /// and overwriting parity there destroys the only copy of the
    /// missing spindle's bytes.
    pub fn resync_parity(&mut self) -> DiskResult<u64> {
        if !self.is_parity() {
            return Err(DiskError::Unsupported("resync_parity: not a parity volume"));
        }
        if self.states.iter().any(|s| *s != SpindleState::Online) {
            return Err(DiskError::Unsupported(
                "resync_parity: degraded assembly — kill and rebuild the stale spindle \
                 instead of resyncing parity over it",
            ));
        }
        let n = self.spindles.len();
        let chunk = self.policy.chunk_sectors();
        let rows = self.spindles[0].disk().num_sectors() / chunk;
        let bytes = chunk as usize * SECTOR_SIZE;
        let mut xor = vec![0u8; bytes];
        let mut tmp = vec![0u8; bytes];
        let mut fixed = 0u64;
        self.set_maintenance(true);
        for row in 0..rows {
            let sector = row * chunk;
            let p = self.policy.parity_spindle(row, n).expect("parity volume");
            xor.fill(0);
            let scan = (|| -> DiskResult<()> {
                for s in (0..n).filter(|&s| s != p) {
                    self.spindles[s].do_read(sector, &mut tmp)?;
                    xor_into(&mut xor, &tmp);
                }
                self.spindles[p].do_read(sector, &mut tmp)?;
                if xor != tmp {
                    self.spindles[p].do_sync_write(sector, &xor)?;
                    fixed += 1;
                }
                Ok(())
            })();
            if let Err(e) = scan {
                self.set_maintenance(false);
                if e == DiskError::Crashed {
                    self.crashed = true;
                }
                return Err(e);
            }
        }
        self.set_maintenance(false);
        self.obs.resync_rows_fixed.add(fixed);
        if fixed > 0 {
            self.obs.registry.event(
                self.clock.now_ns(),
                "volume",
                format!("parity resync rewrote {fixed} of {rows} rows"),
            );
        }
        Ok(fixed)
    }

    /// XOR-reconstructs physical range `[sector, sector + out.len())`
    /// of `target` from the same range on every other spindle — valid
    /// for any mix of data and parity rows, because every parity row
    /// maintains XOR-across-spindles = 0. Fails if a second spindle is
    /// unavailable (double fault). Errors come back untranslated.
    fn reconstruct_range(&mut self, target: usize, sector: u64, out: &mut [u8]) -> DiskResult<()> {
        let n = self.spindles.len();
        let others: Vec<usize> = (0..n).filter(|&s| s != target).collect();
        for &s in &others {
            if self.states[s] != SpindleState::Online {
                return Err(DiskError::Unreadable { sector });
            }
        }
        let mut handles = Vec::with_capacity(others.len());
        for &s in &others {
            handles.push(self.spindles[s].start_read(sector, out.len())?);
        }
        out.fill(0);
        let mut tmp = vec![0u8; out.len()];
        for (&s, h) in others.iter().zip(handles) {
            self.spindles[s].finish_read(h, sector, &mut tmp)?;
            xor_into(out, &tmp);
        }
        self.obs.reconstructions.inc();
        Ok(())
    }

    /// [`StripedVolume::reconstruct_range`] with error mapping: crashes
    /// latch, anything else escapes as [`DiskError::Unreadable`] at
    /// `escape` — the *logical* sector the caller was serving, since a
    /// double fault has no single physical culprit worth reporting.
    fn reconstruct_or_escape(
        &mut self,
        target: usize,
        sector: u64,
        out: &mut [u8],
        escape: u64,
    ) -> DiskResult<()> {
        match self.reconstruct_range(target, sector, out) {
            Ok(()) => Ok(()),
            Err(DiskError::Crashed) => {
                self.crashed = true;
                Err(DiskError::Crashed)
            }
            Err(_) => Err(DiskError::Unreadable { sector: escape }),
        }
    }

    /// Reads the *current logical* content of physical range
    /// `[sector, sector + out.len())` on `spindle`: directly when the
    /// spindle serves reads, by reconstruction when it is dead,
    /// rebuilding, or the direct read hits unreadable sectors.
    ///
    /// This is also the read half of a parity read-modify-write, so it
    /// gets the same hedge protection as [`StripedVolume::read_parity`]:
    /// without it a fail-slow spindle charges its full degraded service
    /// to every partial-row *write* (checkpoints, superblocks), which is
    /// exactly the foreground tail the hedge exists to cap.
    fn read_physical(
        &mut self,
        spindle: usize,
        sector: u64,
        out: &mut [u8],
        escape: u64,
    ) -> DiskResult<()> {
        if self.states[spindle] == SpindleState::Online {
            match self.spindles[spindle].start_read(sector, out.len()) {
                Ok(h) => {
                    let hedge = match &h {
                        engine::ReadHandle::Pending(id)
                            if self.survivors_online(spindle)
                                && self.spindles[spindle].hedge_overdue(*id) =>
                        {
                            Some(*id)
                        }
                        _ => None,
                    };
                    let finished = match hedge {
                        Some(id) => self.hedged_race(spindle, id, sector, out).map(|_| ()),
                        None => self.spindles[spindle].finish_read(h, sector, out),
                    };
                    match finished {
                        Ok(()) => return Ok(()),
                        Err(DiskError::Crashed) => {
                            self.crashed = true;
                            return Err(DiskError::Crashed);
                        }
                        Err(DiskError::Unreadable { .. }) => {}
                        Err(other) => return Err(other),
                    }
                }
                Err(DiskError::Crashed) => {
                    self.crashed = true;
                    return Err(DiskError::Crashed);
                }
                Err(DiskError::Unreadable { .. }) => {}
                Err(other) => return Err(other),
            }
        }
        self.reconstruct_or_escape(spindle, sector, out, escape)
    }

    /// Reads `buf.len()` bytes at logical `sector`, fanning the request
    /// out and joining all pieces. Every piece is started before any is
    /// waited on, so spindles overlap; the first failing piece (in
    /// logical order) decides the error, but every started piece is
    /// still finished so no queue is left holding a read.
    pub fn read(&mut self, sector: u64, buf: &mut [u8]) -> DiskResult<()> {
        if self.crashed {
            return Err(DiskError::Crashed);
        }
        let count = check_request(sector, buf.len(), self.num_sectors)?;
        let subs = self.split(sector, count);
        self.obs.reads.inc();
        self.obs.bytes_read.add(buf.len() as u64);
        self.obs.subrequests.add(subs.len() as u64);
        if self.is_parity() {
            return self.read_parity(&subs, sector, buf);
        }
        if let [sub] = subs.as_slice() {
            // One piece: take the engine's combined path, which is
            // exactly the single-spindle EngineDisk request sequence.
            return match self.spindles[sub.spindle].do_read(sub.sector, buf) {
                Ok(()) => Ok(()),
                Err(e) => Err(self.translate(sub.spindle, e)),
            };
        }
        let mut handles = Vec::with_capacity(subs.len());
        for sub in &subs {
            match self.spindles[sub.spindle].start_read(sub.sector, sub.bytes()) {
                Ok(h) => handles.push(h),
                Err(e) => return Err(self.translate(sub.spindle, e)),
            }
        }
        let mut first_err: Option<DiskError> = None;
        for (sub, handle) in subs.iter().zip(handles) {
            let piece = &mut buf[sub.offset..sub.offset + sub.bytes()];
            match self.spindles[sub.spindle].finish_read(handle, sub.sector, piece) {
                Ok(()) => {}
                Err(e) => {
                    let e = self.translate(sub.spindle, e);
                    if e == DiskError::Crashed {
                        return Err(e);
                    }
                    first_err.get_or_insert(e);
                }
            }
        }
        match first_err {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }

    /// Writes `buf` at logical `sector`. Synchronous writes submit
    /// every piece before waiting on any; asynchronous writes go into
    /// each spindle's queue, pushing out per-spindle busy horizons in
    /// parallel.
    pub fn write(&mut self, sector: u64, buf: &[u8], sync: bool) -> DiskResult<()> {
        if self.crashed {
            return Err(DiskError::Crashed);
        }
        let count = check_request(sector, buf.len(), self.num_sectors)?;
        let subs = self.split(sector, count);
        self.obs.writes.inc();
        self.obs.bytes_written.add(buf.len() as u64);
        self.obs.subrequests.add(subs.len() as u64);
        let result = if self.is_parity() {
            self.write_parity(&subs, sector, buf, sync)
        } else {
            self.write_subs(&subs, buf, sync)
        };
        self.update_balance();
        result
    }

    /// The fan-out read for parity volumes: pieces on healthy spindles
    /// are read directly (all started before any is waited on); pieces
    /// on dead or rebuilding spindles — or whose direct read comes back
    /// unreadable — are served by XOR reconstruction across the
    /// survivors. Only a double fault escapes, translated to the
    /// logical sector of the piece that could not be served.
    ///
    /// With a hedge deadline armed ([`EngineConfig::hedge_deadline_ns`])
    /// a piece whose predicted direct latency blows the budget is raced
    /// against XOR reconstruction ([`StripedVolume::hedged_race`]), and
    /// with health monitoring armed every piece feeds its spindle's
    /// predicted service time into the [`HealthMonitor`] — evictions it
    /// decides are applied after the last piece lands, so no in-flight
    /// handle dangles on a killed spindle.
    fn read_parity(&mut self, subs: &[SubRequest], base_sector: u64, buf: &mut [u8]) -> DiskResult<()> {
        let mut handles: Vec<Option<engine::ReadHandle>> = Vec::with_capacity(subs.len());
        let mut steered: Vec<bool> = Vec::with_capacity(subs.len());
        let mut evict: Vec<usize> = Vec::new();
        for sub in subs {
            if self.states[sub.spindle] == SpindleState::Online {
                self.feed_health(sub.spindle, sub.sector, sub.bytes() as u64, &mut evict);
                // The submission-side hedge: an overlapping queued
                // request (a still-in-flight segment write, say) would
                // stall this read *at submission* — the read-after-write
                // hazard is paid before the request even has an id, so
                // the in-queue hedge hook below can never see it. When
                // the predicted stall blows the deadline and every
                // survivor is online, skip the direct read entirely and
                // steer the piece to reconstruction.
                if self.survivors_online(sub.spindle)
                    && self.spindles[sub.spindle].submit_hazard_overdue(sub.sector, sub.bytes())
                {
                    handles.push(None);
                    steered.push(true);
                    continue;
                }
                match self.spindles[sub.spindle].start_read(sub.sector, sub.bytes()) {
                    Ok(h) => handles.push(Some(h)),
                    Err(DiskError::Crashed) => {
                        self.crashed = true;
                        return Err(DiskError::Crashed);
                    }
                    // An unreadable submission routes to reconstruction
                    // like an unreadable completion would.
                    Err(DiskError::Unreadable { .. }) => {
                        if self.observe_health_error(sub.spindle) {
                            evict.push(sub.spindle);
                        }
                        handles.push(None);
                    }
                    Err(other) => return Err(other),
                }
            } else {
                handles.push(None);
            }
            steered.push(false);
        }
        let mut degraded = false;
        let mut first_err: Option<DiskError> = None;
        for ((sub, handle), was_steered) in subs.iter().zip(handles).zip(steered) {
            let logical = base_sector + (sub.offset / SECTOR_SIZE) as u64;
            let piece = &mut buf[sub.offset..sub.offset + sub.bytes()];
            let served = match handle {
                Some(h) => {
                    // The hedge hook: a queued piece whose predicted
                    // latency blows the deadline is raced against
                    // reconstruction — but only when every survivor is
                    // online, otherwise there is nothing to race.
                    let hedge = match &h {
                        engine::ReadHandle::Pending(id)
                            if self.survivors_online(sub.spindle)
                                && self.spindles[sub.spindle].hedge_overdue(*id) =>
                        {
                            Some(*id)
                        }
                        _ => None,
                    };
                    let finished = match hedge {
                        Some(id) => self
                            .hedged_race(sub.spindle, id, sub.sector, piece)
                            .map(|was_degraded| {
                                degraded |= was_degraded;
                            }),
                        None => self.spindles[sub.spindle].finish_read(h, sub.sector, piece),
                    };
                    match finished {
                        Ok(()) => true,
                        Err(DiskError::Crashed) => {
                            self.crashed = true;
                            return Err(DiskError::Crashed);
                        }
                        Err(DiskError::Unreadable { .. }) => {
                            if self.observe_health_error(sub.spindle) {
                                evict.push(sub.spindle);
                            }
                            false
                        }
                        Err(other) => return Err(other),
                    }
                }
                None => false,
            };
            if !served {
                // A steered piece is a hedge the reconstruction won by
                // forfeit, not a degraded read: the spindle is healthy
                // enough to serve, just not worth waiting for.
                if was_steered {
                    self.obs.hedged_reads.inc();
                } else {
                    degraded = true;
                }
                match self.reconstruct_or_escape(sub.spindle, sub.sector, piece, logical) {
                    Ok(()) => {
                        if was_steered {
                            self.spindles[sub.spindle].record_hedge_win();
                        }
                    }
                    Err(DiskError::Crashed) => return Err(DiskError::Crashed),
                    Err(e) => {
                        first_err.get_or_insert(e);
                    }
                }
            }
        }
        if degraded {
            self.obs.degraded_reads.inc();
        }
        for i in evict {
            self.auto_evict(i);
        }
        match first_err {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }

    /// True when every spindle other than `spindle` serves reads — the
    /// precondition for racing a reconstruction against a slow direct
    /// read.
    fn survivors_online(&self, spindle: usize) -> bool {
        self.states
            .iter()
            .enumerate()
            .all(|(s, st)| s == spindle || *st == SpindleState::Online)
    }

    /// An error observation is inflation-neutral: it feeds the error
    /// window at the spindle's current EWMA so a failing-but-fast
    /// spindle is judged on its errors alone.
    fn observe_health_error(&mut self, spindle: usize) -> bool {
        let Some(monitor) = self.health.as_mut() else {
            return false;
        };
        let event = monitor.observe_error(spindle);
        self.apply_health_event(spindle, event)
    }

    /// Races pending direct read `id` on `spindle` against XOR
    /// reconstruction from the survivors. Both sides run to physical
    /// completion — the loser is *drained* (its spindle still does the
    /// work and later requests queue behind it) — but the caller's
    /// clock advances only to the winner's finish, so the foreground
    /// pays `min(direct, reconstruction)` latency. When both sides
    /// succeed their bytes are asserted identical and the direct data
    /// fills `piece`; a failed direct read is covered by the
    /// reconstruction (returns `true`: the piece was served degraded);
    /// a failed reconstruction falls back to the direct result.
    ///
    /// # Errors
    ///
    /// [`DiskError::Unreadable`] at the physical `sector` when both
    /// sides fail (double fault — the caller escapes to the logical
    /// address), [`DiskError::Crashed`] if any spindle crashed.
    fn hedged_race(
        &mut self,
        spindle: usize,
        id: u64,
        sector: u64,
        piece: &mut [u8],
    ) -> DiskResult<bool> {
        self.obs.hedged_reads.inc();
        let n = self.spindles.len();
        let others: Vec<usize> = (0..n).filter(|&s| s != spindle).collect();
        // Start the reconstruction on every survivor. A survivor that
        // rejects the submission sinks the reconstruction side; the
        // started remainder is still drained below so no queue is left
        // holding a read.
        let mut recon_handles: Vec<(usize, engine::ReadHandle)> = Vec::with_capacity(others.len());
        let mut recon_ok = true;
        for &s in &others {
            match self.spindles[s].start_read(sector, piece.len()) {
                Ok(h) => recon_handles.push((s, h)),
                Err(DiskError::Crashed) => return Err(DiskError::Crashed),
                Err(_) => {
                    recon_ok = false;
                    break;
                }
            }
        }
        // Drain both sides without advancing the shared clock; the
        // completion timestamps decide the race.
        let mut survivors: Vec<Vec<u8>> = Vec::with_capacity(recon_handles.len());
        let mut recon_finish = self.clock.now_ns();
        for (s, h) in recon_handles {
            match h {
                engine::ReadHandle::Hit(data) => survivors.push(data),
                engine::ReadHandle::Pending(rid) => match self.spindles[s].drain_read(rid) {
                    Ok(done) => {
                        recon_finish = recon_finish.max(done.finish_ns);
                        survivors.push(done.data.expect("read without data"));
                    }
                    Err(DiskError::Crashed) => return Err(DiskError::Crashed),
                    Err(_) => recon_ok = false,
                },
            }
        }
        let direct = match self.spindles[spindle].drain_read(id) {
            Ok(done) => Some(done),
            Err(DiskError::Crashed) => return Err(DiskError::Crashed),
            Err(_) => None,
        };
        let xor = recon_ok.then(|| {
            let mut xor = vec![0u8; piece.len()];
            for data in &survivors {
                xor_into(&mut xor, data);
            }
            xor
        });
        match (direct, xor) {
            (Some(done), Some(xor)) => {
                let data = done.data.as_deref().expect("read without data");
                assert_eq!(
                    xor, data,
                    "hedged reconstruction diverged from the direct read"
                );
                if recon_finish < done.finish_ns {
                    self.spindles[spindle].record_hedge_win();
                    self.obs.reconstructions.inc();
                }
                self.clock.advance_to_ns(recon_finish.min(done.finish_ns));
                piece.copy_from_slice(data);
                Ok(false)
            }
            (Some(done), None) => {
                // The reconstruction fell apart; the direct read still
                // answered — the race just cost nothing extra.
                self.clock.advance_to_ns(done.finish_ns);
                piece.copy_from_slice(done.data.as_deref().expect("read without data"));
                Ok(false)
            }
            (None, Some(xor)) => {
                // The slow spindle also failed the read: the
                // reconstruction is authoritative — exactly the
                // degraded path, already paid for.
                self.clock.advance_to_ns(recon_finish);
                piece.copy_from_slice(&xor);
                self.spindles[spindle].record_hedge_win();
                self.obs.reconstructions.inc();
                Ok(true)
            }
            (None, None) => Err(DiskError::Unreadable { sector }),
        }
    }

    /// The parity-maintaining write. Pieces are grouped by chunk row
    /// (under a parity policy no sub-request ever spans two rows —
    /// rotation breaks physical contiguity at every row boundary, so
    /// the splitter cannot merge across one) and each touched row's
    /// parity chunk is updated in the same request:
    ///
    /// - **Full row** (every data chunk covered whole — the normal case
    ///   for LFS segment writes under [`crate::ParitySegment`]): parity
    ///   is the XOR of the buffer pieces. *No old data is read.*
    /// - **Partial row**: read-modify-write,
    ///   `parity' = parity ⊕ Σ (old ⊕ new)` over the written pieces,
    ///   with any unavailable old content reconstructed from the
    ///   survivors.
    ///
    /// Pieces bound for a dead spindle are not written — the updated
    /// parity absorbs their content, so reads reconstruct the new data.
    /// A dead *parity* spindle leaves its rows unprotected (data writes
    /// through normally) until rebuild re-derives it. Rebuilding
    /// spindles are written through so finished rows stay fresh.
    fn write_parity(
        &mut self,
        subs: &[SubRequest],
        base_sector: u64,
        buf: &[u8],
        sync: bool,
    ) -> DiskResult<()> {
        let n = self.spindles.len();
        let chunk = self.policy.chunk_sectors();
        let dpr = self.policy.data_per_row(n);
        let mut rows: BTreeMap<u64, Vec<usize>> = BTreeMap::new();
        for (i, sub) in subs.iter().enumerate() {
            let row = sub.sector / chunk;
            debug_assert_eq!(
                (sub.sector + sub.sectors - 1) / chunk,
                row,
                "parity sub-request crosses a chunk-row boundary"
            );
            rows.entry(row).or_default().push(i);
        }
        // Compute every touched row's parity piece before issuing any
        // write, so RMW reads of old content see pre-request state.
        let mut parity_pieces: Vec<(usize, u64, Vec<u8>)> = Vec::new();
        for (&row, idxs) in &rows {
            let p = self
                .policy
                .parity_spindle(row, n)
                .expect("parity policy always parks parity");
            if self.states[p] == SpindleState::Dead {
                // The row's parity chunk died with its spindle: data
                // writes through unprotected until rebuild re-derives
                // the chunk from the new contents.
                continue;
            }
            let row_base = row * chunk;
            let lo = idxs.iter().map(|&i| subs[i].sector - row_base).min().unwrap();
            let hi = idxs
                .iter()
                .map(|&i| subs[i].sector + subs[i].sectors - row_base)
                .max()
                .unwrap();
            let full_cover = idxs.len() == dpr
                && idxs
                    .iter()
                    .all(|&i| subs[i].sector == row_base && subs[i].sectors == chunk);
            let mut parity = vec![0u8; (hi - lo) as usize * SECTOR_SIZE];
            if full_cover {
                // The LFS fast path: a whole row (one full segment
                // under ParitySegment) derives parity from the write
                // buffer alone.
                for &i in idxs {
                    let sub = &subs[i];
                    xor_into(&mut parity, &buf[sub.offset..sub.offset + sub.bytes()]);
                }
            } else {
                let escape = base_sector + (subs[idxs[0]].offset / SECTOR_SIZE) as u64;
                self.read_physical(p, row_base + lo, &mut parity, escape)?;
                let mut old = vec![0u8; (hi - lo) as usize * SECTOR_SIZE];
                for &i in idxs {
                    let sub = &subs[i];
                    let a = (sub.sector - row_base - lo) as usize * SECTOR_SIZE;
                    let escape = base_sector + (sub.offset / SECTOR_SIZE) as u64;
                    let old_piece = &mut old[a..a + sub.bytes()];
                    self.read_physical(sub.spindle, sub.sector, old_piece, escape)?;
                    xor_into(&mut parity[a..a + sub.bytes()], old_piece);
                    xor_into(
                        &mut parity[a..a + sub.bytes()],
                        &buf[sub.offset..sub.offset + sub.bytes()],
                    );
                }
            }
            parity_pieces.push((p, row_base + lo, parity));
        }
        // Writes carry the same media-inflation signal reads do, and
        // they touch every spindle on every flush — feeding them makes
        // the monitor converge on a limping drive within a handful of
        // segment writes instead of waiting for reads to land on it.
        // Evictions are applied only after every started piece has
        // landed: killing a spindle discards its queue.
        let mut evict: Vec<usize> = Vec::new();
        if !sync {
            for sub in subs {
                if self.states[sub.spindle] == SpindleState::Dead {
                    continue;
                }
                let piece = &buf[sub.offset..sub.offset + sub.bytes()];
                self.feed_health(sub.spindle, sub.sector, sub.bytes() as u64, &mut evict);
                if let Err(e) = self.spindles[sub.spindle].submit_async_write(sub.sector, piece) {
                    return Err(self.translate(sub.spindle, e));
                }
            }
            for (p, sector, parity) in &parity_pieces {
                self.feed_health(*p, *sector, parity.len() as u64, &mut evict);
                if let Err(e) = self.spindles[*p].submit_async_write(*sector, parity) {
                    return Err(self.translate_parity(e));
                }
            }
            for i in evict {
                self.auto_evict(i);
            }
            return Ok(());
        }
        // Sync: start every piece — data and parity — before finishing
        // any, so the spindles seek in parallel.
        let mut ids: Vec<(usize, u64, bool)> = Vec::new();
        for sub in subs {
            if self.states[sub.spindle] == SpindleState::Dead {
                continue;
            }
            let piece = &buf[sub.offset..sub.offset + sub.bytes()];
            self.feed_health(sub.spindle, sub.sector, sub.bytes() as u64, &mut evict);
            match self.spindles[sub.spindle].start_sync_write(sub.sector, piece) {
                Ok(id) => ids.push((sub.spindle, id, false)),
                Err(e) => return Err(self.translate(sub.spindle, e)),
            }
        }
        for (p, sector, parity) in &parity_pieces {
            self.feed_health(*p, *sector, parity.len() as u64, &mut evict);
            match self.spindles[*p].start_sync_write(*sector, parity) {
                Ok(id) => ids.push((*p, id, true)),
                Err(e) => return Err(self.translate_parity(e)),
            }
        }
        for (spindle, id, is_parity) in ids {
            if let Err(e) = self.spindles[spindle].finish_write(id) {
                return Err(if is_parity {
                    self.translate_parity(e)
                } else {
                    self.translate(spindle, e)
                });
            }
        }
        for i in evict {
            self.auto_evict(i);
        }
        Ok(())
    }

    /// Error translation for parity-chunk I/O: crashes latch, anything
    /// else keeps its physical sector — a parity address has no logical
    /// equivalent to translate to.
    fn translate_parity(&mut self, e: DiskError) -> DiskError {
        if e == DiskError::Crashed {
            self.crashed = true;
        }
        e
    }

    fn write_subs(&mut self, subs: &[SubRequest], buf: &[u8], sync: bool) -> DiskResult<()> {
        if !sync {
            for sub in subs {
                let piece = &buf[sub.offset..sub.offset + sub.bytes()];
                if let Err(e) = self.spindles[sub.spindle].submit_async_write(sub.sector, piece) {
                    return Err(self.translate(sub.spindle, e));
                }
            }
            return Ok(());
        }
        if let [sub] = subs {
            let piece = &buf[sub.offset..sub.offset + sub.bytes()];
            return match self.spindles[sub.spindle].do_sync_write(sub.sector, piece) {
                Ok(()) => Ok(()),
                Err(e) => Err(self.translate(sub.spindle, e)),
            };
        }
        let mut ids = Vec::with_capacity(subs.len());
        for sub in subs {
            let piece = &buf[sub.offset..sub.offset + sub.bytes()];
            match self.spindles[sub.spindle].start_sync_write(sub.sector, piece) {
                Ok(id) => ids.push(id),
                Err(e) => return Err(self.translate(sub.spindle, e)),
            }
        }
        for (sub, id) in subs.iter().zip(ids) {
            if let Err(e) = self.spindles[sub.spindle].finish_write(id) {
                return Err(self.translate(sub.spindle, e));
            }
        }
        Ok(())
    }

    /// Drains every spindle's queue and waits for all of them to go
    /// idle — the durability barrier. The clock lands on the *maximum*
    /// busy horizon: spindles drained their overlapped work in
    /// parallel.
    pub fn flush(&mut self) -> DiskResult<()> {
        if self.crashed {
            return Err(DiskError::Crashed);
        }
        for i in 0..self.spindles.len() {
            if let Err(e) = self.spindles[i].flush_all() {
                return Err(self.translate(i, e));
            }
        }
        self.update_balance();
        Ok(())
    }

    /// Marks subsequent submissions on every spindle as maintenance
    /// I/O (see [`EngineCore::set_maintenance`]).
    pub fn set_maintenance(&mut self, on: bool) {
        for core in &mut self.spindles {
            core.set_maintenance(on);
        }
    }

    /// Total requests pending across every spindle's queue.
    pub fn queue_depth(&self) -> u64 {
        self.spindles.iter().map(|c| c.queue_len()).sum()
    }

    /// Starts a tracked non-blocking read if the logical range maps to a
    /// single spindle (always true for ranges inside one segment under
    /// segment round-robin). Multi-spindle ranges return `None` and the
    /// caller falls back to the synchronous fan-out read.
    pub fn start_read_async(&mut self, sector: u64, len: usize) -> Option<u64> {
        if self.crashed {
            return None;
        }
        let count = check_request(sector, len, self.num_sectors).ok()?;
        let subs = self.split(sector, count);
        let [sub] = subs.as_slice() else { return None };
        if self.states[sub.spindle] != SpindleState::Online {
            // Degraded: fall back to the reconstructing fan-out read.
            return None;
        }
        self.obs.reads.inc();
        self.obs.bytes_read.add(len as u64);
        self.obs.subrequests.inc();
        let inner = self.spindles[sub.spindle]
            .start_tracked_read(sub.sector, sub.bytes())
            .ok()?;
        let token = self.next_read_token;
        self.next_read_token += 1;
        self.tracked_reads.insert(
            token,
            TrackedVolumeRead {
                spindle: sub.spindle,
                inner,
                sector: sub.sector,
                logical: sector,
                len,
            },
        );
        Some(token)
    }

    /// Completes a read started by [`StripedVolume::start_read_async`].
    /// If the spindle was killed while the read was queued (operator
    /// command or health eviction — the engine's queue died with the
    /// media), a parity volume serves the claim by XOR reconstruction
    /// instead of dangling on a token that will never complete.
    pub fn finish_read_async(&mut self, token: u64) -> DiskResult<Vec<u8>> {
        let t = self
            .tracked_reads
            .remove(&token)
            .expect("finish_read_async: unknown token");
        if self.states[t.spindle] == SpindleState::Online {
            return self.spindles[t.spindle]
                .finish_tracked_read(t.inner)
                .map_err(|e| self.translate(t.spindle, e));
        }
        let mut buf = vec![0u8; t.len];
        self.reconstruct_or_escape(t.spindle, t.sector, &mut buf, t.logical)?;
        self.obs.degraded_reads.inc();
        Ok(buf)
    }

    /// Lazily progresses every spindle to the current virtual time.
    pub fn pump(&mut self) -> DiskResult<()> {
        if self.crashed {
            return Err(DiskError::Crashed);
        }
        for i in 0..self.spindles.len() {
            if let Err(e) = self.spindles[i].pump() {
                return Err(self.translate(i, e));
            }
        }
        Ok(())
    }

    /// Labels the next traced access on every spindle.
    pub fn annotate(&mut self, label: &'static str) {
        for core in &mut self.spindles {
            core.disk_mut().annotate(label);
        }
    }

    /// Re-homes the volume's aggregate instruments and every spindle's
    /// prefixed instruments into `registry`.
    pub fn attach_obs(&mut self, registry: &Registry) {
        self.obs.rehome(registry);
        for core in &mut self.spindles {
            core.attach_obs(registry);
        }
    }
}

/// A cheap [`BlockDevice`] handle onto a shared [`StripedVolume`].
///
/// The file system owns one handle; a driving event loop may hold
/// another (via the `Rc`) and use the [`RequestEngine`] impl to pump
/// the spindles and attribute submissions to clients.
#[derive(Clone)]
pub struct VolumeDisk(Rc<RefCell<StripedVolume>>);

impl VolumeDisk {
    /// Creates a handle onto `volume`.
    pub fn new(volume: Rc<RefCell<StripedVolume>>) -> Self {
        Self(volume)
    }

    /// The shared volume.
    pub fn volume(&self) -> &Rc<RefCell<StripedVolume>> {
        &self.0
    }

    /// Writes persisted so far across all spindles (global persist
    /// order).
    pub fn global_writes(&self) -> u64 {
        self.0.borrow().global_writes()
    }

    /// True once the volume has crashed.
    pub fn has_crashed(&self) -> bool {
        self.0.borrow().has_crashed()
    }

    /// Arms the same crash plan on every spindle (shared write index).
    pub fn arm_crash_all(&self, plan: CrashPlan) {
        self.0.borrow_mut().arm_crash_all(plan);
    }

    /// Consumes the last handle and returns each spindle's surviving
    /// image.
    ///
    /// # Panics
    ///
    /// Panics if other handles onto the volume are still alive.
    pub fn into_images(self) -> Vec<Vec<u8>> {
        Rc::try_unwrap(self.0)
            .ok()
            .expect("into_images: other volume handles still alive")
            .into_inner()
            .into_images()
    }

    /// Availability of spindle `i` (see [`StripedVolume::spindle_state`]).
    pub fn spindle_state(&self, i: usize) -> SpindleState {
        self.0.borrow().spindle_state(i)
    }

    /// Kills spindle `i` (see [`StripedVolume::kill_spindle`]).
    pub fn kill_spindle(&self, i: usize) {
        self.0.borrow_mut().kill_spindle(i);
    }

    /// Swaps in a replacement and starts the online rebuild (see
    /// [`StripedVolume::replace_spindle`]).
    pub fn replace_spindle(&self, i: usize, policy: RebuildPolicy) -> DiskResult<()> {
        self.0.borrow_mut().replace_spindle(i, policy)
    }

    /// Arms fail-slow health monitoring (see
    /// [`StripedVolume::set_health_policy`]).
    pub fn set_health_policy(&self, policy: HealthPolicy) {
        self.0.borrow_mut().set_health_policy(policy);
    }

    /// Stocks hot spares for automatic failover (see
    /// [`StripedVolume::set_hot_spares`]).
    pub fn set_hot_spares(&self, n: usize) {
        self.0.borrow_mut().set_hot_spares(n);
    }

    /// Sets the rebuild policy used when a hot spare swaps in (see
    /// [`StripedVolume::set_spare_rebuild_policy`]).
    pub fn set_spare_rebuild_policy(&self, policy: RebuildPolicy) {
        self.0.borrow_mut().set_spare_rebuild_policy(policy);
    }

    /// The health monitor's verdict on spindle `i` (see
    /// [`StripedVolume::health_state`]).
    pub fn health_state(&self, i: usize) -> Option<HealthState> {
        self.0.borrow().health_state(i)
    }

    /// Whether the rebuild policy allows a step right now (see
    /// [`StripedVolume::rebuild_wants_step`]).
    pub fn rebuild_wants_step(&self) -> bool {
        self.0.borrow().rebuild_wants_step()
    }

    /// Runs one bounded rebuild step (see
    /// [`StripedVolume::rebuild_step`]).
    pub fn rebuild_step(&self) -> DiskResult<RebuildProgress> {
        self.0.borrow_mut().rebuild_step()
    }

    /// Chunk rows still missing from an in-flight rebuild, if any.
    pub fn rebuild_remaining_rows(&self) -> Option<u64> {
        self.0.borrow().rebuild().map(|r| r.remaining_rows())
    }

    /// Rewrites stale parity from the authoritative data chunks (see
    /// [`StripedVolume::resync_parity`]).
    pub fn resync_parity(&self) -> DiskResult<u64> {
        self.0.borrow_mut().resync_parity()
    }
}

impl BlockDevice for VolumeDisk {
    fn num_sectors(&self) -> u64 {
        self.0.borrow().num_sectors()
    }

    fn read(&mut self, sector: u64, buf: &mut [u8]) -> DiskResult<()> {
        self.0.borrow_mut().read(sector, buf)
    }

    fn write(&mut self, sector: u64, buf: &[u8], sync: bool) -> DiskResult<()> {
        self.0.borrow_mut().write(sector, buf, sync)
    }

    fn flush(&mut self) -> DiskResult<()> {
        self.0.borrow_mut().flush()
    }

    fn annotate(&mut self, label: &'static str) {
        self.0.borrow_mut().annotate(label);
    }

    fn attach_obs(&mut self, registry: &Registry) {
        self.0.borrow_mut().attach_obs(registry);
    }

    fn set_maintenance(&mut self, on: bool) {
        self.0.borrow_mut().set_maintenance(on);
    }

    fn start_read_async(&mut self, sector: u64, len: usize) -> Option<u64> {
        self.0.borrow_mut().start_read_async(sector, len)
    }

    fn finish_read_async(&mut self, token: u64) -> DiskResult<Vec<u8>> {
        self.0.borrow_mut().finish_read_async(token)
    }

    fn fanout(&self) -> usize {
        self.0.borrow().spindle_count()
    }

    fn spindle_of(&self, sector: u64) -> usize {
        let volume = self.0.borrow();
        volume
            .split(sector, 1)
            .first()
            .map(|sub| sub.spindle)
            .unwrap_or(0)
    }
}

impl RequestEngine for VolumeDisk {
    fn clock(&self) -> Arc<Clock> {
        Arc::clone(self.0.borrow().clock())
    }

    fn pump(&self) -> DiskResult<()> {
        self.0.borrow_mut().pump()
    }

    fn set_client(&self, client: Option<usize>) {
        let mut volume = self.0.borrow_mut();
        for core in &mut volume.spindles {
            core.set_client(client);
        }
    }

    fn register_clients(&self, n: usize) {
        let mut volume = self.0.borrow_mut();
        for core in &mut volume.spindles {
            core.register_clients(n);
        }
    }

    fn queue_depth(&self) -> u64 {
        self.0.borrow().queue_depth()
    }

    fn set_qos(&self, spec: Option<engine::QosSpec>) {
        let mut volume = self.0.borrow_mut();
        for core in &mut volume.spindles {
            core.set_qos(spec.clone());
        }
    }
}
