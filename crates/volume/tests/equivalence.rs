//! A 1-spindle volume is *exactly* a single engine-fronted disk: the
//! same multi-client LFS workload produces an identical report, an
//! identical virtual clock, and a byte-identical disk image whether the
//! file system mounts an [`EngineDisk`] or a [`VolumeDisk`] with one
//! spindle. Existing single-disk results therefore carry over unchanged
//! when runs move onto the volume layer.

use std::rc::Rc;
use std::sync::Arc;

use engine::{run_small_file_create, EngineConfig, EngineCore, EngineDisk, MultiClientConfig};
use lfs_core::{Lfs, LfsConfig};
use sim_disk::{Clock, DiskGeometry, SimDisk};
use volume::{StripedVolume, VolumeConfig, VolumeDisk};

const DEV_SECTORS: u64 = 16_384;

fn workload() -> MultiClientConfig {
    MultiClientConfig::new(3, 6, 700)
}

/// Runs the workload on a plain engine-fronted disk.
fn run_on_engine_disk() -> (String, u64, Vec<u8>) {
    let clock = Clock::new();
    let disk = SimDisk::new(DiskGeometry::tiny_test(DEV_SECTORS), Arc::clone(&clock));
    let core = EngineCore::new(disk, EngineConfig::default()).into_shared();
    let dev = EngineDisk::new(Rc::clone(&core));
    let mut fs = Lfs::format(dev, LfsConfig::small_test(), Arc::clone(&clock)).unwrap();
    let registry = fs.obs().clone();
    let report = run_small_file_create(&mut fs, &core, &registry, &workload()).unwrap();
    let fsck = fs.fsck().unwrap();
    assert!(fsck.is_clean(), "fsck:\n{fsck}");
    drop(fs.into_device());
    let image = Rc::try_unwrap(core)
        .ok()
        .unwrap()
        .into_inner()
        .into_disk()
        .into_image();
    (format!("{report:?}"), clock.now_ns(), image)
}

/// Runs the workload on a 1-spindle striped volume.
fn run_on_one_spindle_volume() -> (String, u64, Vec<u8>) {
    let clock = Clock::new();
    let lfs_cfg = LfsConfig::small_test();
    let cfg = VolumeConfig::rr_segment(1, lfs_cfg.segment_bytes);
    let vol = StripedVolume::new(
        DiskGeometry::tiny_test(DEV_SECTORS),
        Arc::clone(&clock),
        cfg,
    )
    .into_shared();
    let dev = VolumeDisk::new(Rc::clone(&vol));
    let pump = VolumeDisk::new(Rc::clone(&vol));
    let mut fs = Lfs::format(dev, lfs_cfg, Arc::clone(&clock)).unwrap();
    let registry = fs.obs().clone();
    let report = run_small_file_create(&mut fs, &pump, &registry, &workload()).unwrap();
    let fsck = fs.fsck().unwrap();
    assert!(fsck.is_clean(), "fsck:\n{fsck}");
    let handle = fs.into_device();
    drop(pump);
    drop(vol);
    let mut images = handle.into_images();
    assert_eq!(images.len(), 1);
    (format!("{report:?}"), clock.now_ns(), images.remove(0))
}

#[test]
fn one_spindle_volume_is_byte_identical_to_engine_disk() {
    let (report_a, clock_a, image_a) = run_on_engine_disk();
    let (report_b, clock_b, image_b) = run_on_one_spindle_volume();
    assert_eq!(report_a, report_b, "multi-client reports diverged");
    assert_eq!(clock_a, clock_b, "virtual clocks diverged");
    assert_eq!(image_a, image_b, "disk images diverged");
}
