//! Property tests for hedged reconstruction reads: whatever the request
//! shapes, whichever single spindle limps, and however aggressive the
//! hedge deadline, a parity volume returns exactly the bytes a healthy
//! flat disk would — and on a healthy volume the hedge never fires.

use std::sync::Arc;

use engine::EngineConfig;
use proptest::prelude::*;
use sim_disk::{
    BlockDevice, Clock, DiskGeometry, FailSlowProfile, MediaFaultPlan, RamDisk, SECTOR_SIZE,
};
use volume::{StripedVolume, VolumeConfig};

const SPINDLE_SECTORS: u64 = 1_024;
const CHUNK_SECTORS: u64 = 8;
const CHUNK_BYTES: usize = CHUNK_SECTORS as usize * SECTOR_SIZE;
const SPINDLES: usize = 4;
/// Logical capacity: (spindles - 1) data chunks per row.
const LOGICAL_SECTORS: u64 = (SPINDLES as u64 - 1) * SPINDLE_SECTORS;

fn volume_with_deadline(deadline_ns: u64) -> (StripedVolume, Arc<Clock>) {
    let clock = Clock::new();
    let vol = StripedVolume::new(
        DiskGeometry::tiny_test(SPINDLE_SECTORS),
        Arc::clone(&clock),
        VolumeConfig::parity_rotate(SPINDLES, CHUNK_BYTES)
            .with_engine(EngineConfig::default().with_hedge_deadline_ns(deadline_ns)),
    );
    (vol, clock)
}

fn patterned(fill: u8, sectors: u64) -> Vec<u8> {
    (0..sectors as usize * SECTOR_SIZE)
        .map(|i| fill ^ (i / SECTOR_SIZE) as u8 ^ (i % 251) as u8)
        .collect()
}

/// (sector, sectors) pairs that stay inside the logical device.
fn request_strategy() -> impl Strategy<Value = (u64, u64)> {
    (0..LOGICAL_SECTORS - 1, 1u64..=64)
        .prop_map(|(sector, len)| (sector, len.min(LOGICAL_SECTORS - sector)))
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 48,
        ..ProptestConfig::default()
    })]

    /// Any write pattern, any single fail-slow spindle, any hedge
    /// deadline from hair-trigger to generous: every read comes back
    /// byte-identical to a flat healthy mirror. Hedging is a latency
    /// optimisation — it must never be visible in the data.
    #[test]
    fn hedged_reads_are_byte_identical_to_a_healthy_mirror(
        writes in proptest::collection::vec((request_strategy(), any::<u8>(), any::<bool>()), 1..8),
        reads in proptest::collection::vec(request_strategy(), 1..6),
        slow_spindle in 0..SPINDLES,
        multiplier_x in 2u64..=20,
        deadline_ms in 1u64..=50,
    ) {
        let (mut vol, _clock) = volume_with_deadline(deadline_ms * 1_000_000);
        let mut mirror = RamDisk::new(vol.num_sectors());
        for ((sector, sectors), fill, sync) in writes {
            let buf = patterned(fill, sectors);
            vol.write(sector, &buf, sync).unwrap();
            mirror.write(sector, &buf, sync).unwrap();
        }
        vol.flush().unwrap();
        vol.spindle_mut(slow_spindle).disk_mut().inject_media_faults(
            MediaFaultPlan::new(0xBEEF).fail_slow(
                FailSlowProfile::at(0).with_multiplier_pct(multiplier_x * 100),
            ),
        );
        for (sector, sectors) in reads {
            let mut got = vec![0u8; sectors as usize * SECTOR_SIZE];
            let mut want = vec![0u8; sectors as usize * SECTOR_SIZE];
            vol.read(sector, &mut got).unwrap();
            mirror.read(sector, &mut want).unwrap();
            prop_assert_eq!(
                got,
                want,
                "read [{}, +{}) diverged (slow spindle {}, {}x, deadline {} ms)",
                sector,
                sectors,
                slow_spindle,
                multiplier_x,
                deadline_ms
            );
        }
    }

    /// Vacuity guard: with healthy media and a deadline comfortably
    /// above the mechanical worst case, the hedge path never triggers —
    /// so the property above cannot be passing because hedging is
    /// always (or never) on.
    #[test]
    fn hedging_stays_silent_on_healthy_media(
        writes in proptest::collection::vec((request_strategy(), any::<u8>(), any::<bool>()), 1..8),
        reads in proptest::collection::vec(request_strategy(), 1..6),
    ) {
        // tiny_test worst case per chunk is ~3.5 ms; even a deep queue
        // stays far under 100 ms.
        let (mut vol, _clock) = volume_with_deadline(100_000_000);
        let mut mirror = RamDisk::new(vol.num_sectors());
        for ((sector, sectors), fill, sync) in writes {
            let buf = patterned(fill, sectors);
            vol.write(sector, &buf, sync).unwrap();
            mirror.write(sector, &buf, sync).unwrap();
        }
        vol.flush().unwrap();
        for (sector, sectors) in reads {
            let mut got = vec![0u8; sectors as usize * SECTOR_SIZE];
            let mut want = vec![0u8; sectors as usize * SECTOR_SIZE];
            vol.read(sector, &mut got).unwrap();
            mirror.read(sector, &mut want).unwrap();
            prop_assert_eq!(got, want);
        }
        let snap = vol.obs().snapshot();
        let hedges: u64 = (0..SPINDLES)
            .map(|s| snap.counter(&format!("volume.spindle.{s}.engine.hedges")))
            .sum();
        prop_assert_eq!(hedges, 0, "a healthy volume reported overdue reads");
        prop_assert_eq!(snap.counter("volume.hedged_reads"), 0);
    }
}
