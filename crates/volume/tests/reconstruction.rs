//! Property test: on a parity volume, the loss of *any single spindle*
//! is invisible — arbitrary request shapes read back byte-identical to
//! a flat mirror before, during, and after degraded operation, and a
//! completed online rebuild restores the volume exactly.


use proptest::collection::vec as pvec;
use proptest::prelude::*;

use sim_disk::{BlockDevice, Clock, DiskGeometry, RamDisk, SECTOR_SIZE};
use volume::{
    RebuildPolicy, RebuildProgress, SpindleState, StripePolicyKind, StripedVolume, VolumeConfig,
};

const SPINDLE_SECTORS: u64 = 1_024;
const CHUNK_SECTORS: u64 = 8;
const CHUNK_BYTES: usize = CHUNK_SECTORS as usize * SECTOR_SIZE;

fn parity_volume(kind: StripePolicyKind, spindles: usize) -> StripedVolume {
    let cfg = match kind {
        StripePolicyKind::ParitySegment => {
            VolumeConfig::parity_segment(spindles, CHUNK_BYTES * (spindles - 1))
        }
        StripePolicyKind::ParityRotate => VolumeConfig::parity_rotate(spindles, CHUNK_BYTES),
        other => panic!("not a parity kind: {other}"),
    };
    StripedVolume::new(DiskGeometry::tiny_test(SPINDLE_SECTORS), Clock::new(), cfg)
}

/// Clamps `(sector, count)` into the volume and applies the write to
/// both the volume and the mirror.
fn apply_writes(
    vol: &mut StripedVolume,
    mirror: &mut RamDisk,
    writes: &[(u64, u64, bool)],
    salt: u8,
) {
    let capacity = vol.num_sectors();
    for (i, &(sector, count, sync)) in writes.iter().enumerate() {
        let sector = sector % capacity;
        let count = count.min(capacity - sector);
        let fill = salt.wrapping_add(i as u8);
        let buf: Vec<u8> = (0..count as usize * SECTOR_SIZE)
            .map(|b| fill ^ (b / 7) as u8)
            .collect();
        vol.write(sector, &buf, sync).unwrap();
        mirror.write(sector, &buf, sync).unwrap();
    }
    vol.flush().unwrap();
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    #[test]
    fn any_single_dead_spindle_reconstructs_byte_identically(
        kind_ix in 2usize..4,
        spindles in 2usize..6,
        dead_seed in 0usize..64,
        healthy_writes in pvec((0u64..900, 1u64..65, any::<bool>()), 1..10),
        degraded_writes in pvec((0u64..900, 1u64..65, any::<bool>()), 0..8),
        reads in pvec((0u64..900, 1u64..65), 1..8),
    ) {
        let kind = StripePolicyKind::ALL[kind_ix];
        prop_assert!(kind.is_parity());
        let dead = dead_seed % spindles;

        let mut vol = parity_volume(kind, spindles);
        let mut mirror = RamDisk::new(vol.num_sectors());
        apply_writes(&mut vol, &mut mirror, &healthy_writes, 0x11);

        // Kill any one spindle, then keep writing while degraded.
        vol.kill_spindle(dead);
        apply_writes(&mut vol, &mut mirror, &degraded_writes, 0x77);

        let capacity = vol.num_sectors();
        for &(sector, count) in &reads {
            let sector = sector % capacity;
            let count = count.min(capacity - sector);
            let mut got = vec![0u8; count as usize * SECTOR_SIZE];
            let mut want = got.clone();
            vol.read(sector, &mut got).unwrap();
            mirror.read(sector, &mut want).unwrap();
            prop_assert_eq!(
                &got, &want,
                "degraded read [{}, +{}) diverged ({}, {} spindles, {} dead)",
                sector, count, kind, spindles, dead
            );
        }

        // Rebuild to completion and scrub the whole volume against the
        // mirror — the replacement must hold parity-consistent contents.
        vol.replace_spindle(
            dead,
            RebuildPolicy::default()
                .with_idle_queue_depth(None)
                .with_max_step_rows(64),
        )
        .unwrap();
        while vol.rebuild_step().unwrap() != RebuildProgress::Completed {}
        prop_assert_eq!(vol.spindle_state(dead), SpindleState::Online);

        let mut got = vec![0u8; capacity as usize * SECTOR_SIZE];
        let mut want = got.clone();
        vol.read(0, &mut got).unwrap();
        mirror.read(0, &mut want).unwrap();
        prop_assert_eq!(
            got, want,
            "post-rebuild scrub diverged ({}, {} spindles, {} rebuilt)",
            kind, spindles, dead
        );
    }
}
