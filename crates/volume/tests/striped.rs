//! Multi-spindle behaviour: data round-trips through the splitter and
//! joiner, faults and crashes surface with volume-logical addresses,
//! and per-spindle accounting stays separate when spindles overlap.

use std::sync::Arc;

use engine::EngineConfig;
use sim_disk::{
    BlockDevice, Clock, CrashPlan, DiskError, DiskGeometry, MediaFaultPlan, RamDisk, SECTOR_SIZE,
};
use volume::{StripePolicyKind, StripedVolume, VolumeConfig};

const SPINDLE_SECTORS: u64 = 4_096;
const CHUNK_SECTORS: u64 = 8;
const CHUNK_BYTES: usize = CHUNK_SECTORS as usize * SECTOR_SIZE;

fn volume(spindles: usize, kind: StripePolicyKind) -> (StripedVolume, Arc<Clock>) {
    let clock = Clock::new();
    let cfg = match kind {
        StripePolicyKind::RrSegment => VolumeConfig::rr_segment(spindles, CHUNK_BYTES),
        StripePolicyKind::Interleave => VolumeConfig::interleave(spindles, CHUNK_BYTES),
        // Segment = one chunk per data spindle, so the chunk size (and
        // thus the physical layout grain) matches the other kinds.
        StripePolicyKind::ParitySegment => {
            VolumeConfig::parity_segment(spindles, CHUNK_BYTES * (spindles - 1))
        }
        StripePolicyKind::ParityRotate => VolumeConfig::parity_rotate(spindles, CHUNK_BYTES),
    };
    let vol = StripedVolume::new(
        DiskGeometry::tiny_test(SPINDLE_SECTORS),
        Arc::clone(&clock),
        cfg,
    );
    (vol, clock)
}

fn patterned(fill: u8, sectors: u64) -> Vec<u8> {
    (0..sectors as usize * SECTOR_SIZE)
        .map(|i| fill ^ (i / SECTOR_SIZE) as u8)
        .collect()
}

/// Mixed sync/async writes and spanning reads round-trip through the
/// splitter/joiner for every policy and several spindle counts,
/// matching a flat RAM mirror byte for byte.
#[test]
fn striped_io_round_trips_against_a_flat_mirror() {
    for kind in StripePolicyKind::ALL {
        for spindles in [2usize, 3, 4] {
            let (mut vol, _clock) = volume(spindles, kind);
            let mut mirror = RamDisk::new(vol.num_sectors());

            // Writes of varying alignment and length: inside one chunk,
            // chunk-aligned, spanning several chunks, spanning rows.
            let writes: [(u64, u64, bool); 6] = [
                (3, 2, true),
                (8, 8, false),
                (20, 40, true),
                (70, 13, false),
                (128, 96, false),
                (5, 1, true),
            ];
            for (i, (sector, sectors, sync)) in writes.iter().enumerate() {
                let buf = patterned(0x10 + i as u8, *sectors);
                vol.write(*sector, &buf, *sync).unwrap();
                mirror.write(*sector, &buf, *sync).unwrap();
            }
            vol.flush().unwrap();

            for (sector, sectors) in [(0u64, 16u64), (3, 2), (16, 64), (60, 170), (0, 256)] {
                let mut got = vec![0u8; sectors as usize * SECTOR_SIZE];
                let mut want = vec![0u8; sectors as usize * SECTOR_SIZE];
                vol.read(sector, &mut got).unwrap();
                mirror.read(sector, &mut want).unwrap();
                assert_eq!(
                    got, want,
                    "read [{sector}, +{sectors}) diverged ({kind}, {spindles} spindles)"
                );
            }
        }
    }
}

/// A chunk-row-multiple write lands evenly on every spindle and the
/// stripe-balance gauge reports perfect balance; a single hot chunk
/// skews the gauge toward 1000/n.
#[test]
fn writes_fan_out_and_the_balance_gauge_tracks_skew() {
    let (mut vol, _clock) = volume(4, StripePolicyKind::RrSegment);

    // 4 full rows: every spindle receives exactly 4 chunks.
    let rows = patterned(0x42, 4 * 4 * CHUNK_SECTORS);
    vol.write(0, &rows, false).unwrap();
    vol.flush().unwrap();

    let snap = vol.obs().snapshot();
    assert_eq!(snap.gauge("volume.spindles"), 4);
    assert_eq!(snap.gauge("volume.stripe_balance_millis"), 1000);
    for i in 0..4 {
        assert_eq!(
            vol.spindle(i).disk().stats().bytes_written,
            4 * CHUNK_BYTES as u64,
            "spindle {i} got an uneven share"
        );
    }
    assert_eq!(snap.counter("volume.writes"), 1);
    // 16 chunks → 16 pieces: consecutive chunks alternate spindles, so
    // nothing merges; each spindle queues its 4 pieces independently.
    assert_eq!(snap.counter("volume.subrequests"), 16);

    // Hammer one chunk (always spindle 0): balance decays toward 250.
    for i in 0..60u8 {
        vol.write(0, &patterned(i, CHUNK_SECTORS), true).unwrap();
    }
    let balance = vol.obs().snapshot().gauge("volume.stripe_balance_millis");
    assert!(
        balance < 600,
        "balance gauge {balance} did not register a hot spindle"
    );
}

/// A latent media fault on one spindle surfaces as a degraded read whose
/// error names the *volume-logical* sector, and only requests touching
/// the bad sector fail.
#[test]
fn degraded_read_reports_the_logical_sector() {
    let clock = Clock::new();
    let cfg = VolumeConfig::rr_segment(2, CHUNK_BYTES)
        .with_engine(EngineConfig::default().with_read_retries(0));
    let mut vol = StripedVolume::new(
        DiskGeometry::tiny_test(SPINDLE_SECTORS),
        Arc::clone(&clock),
        cfg,
    );
    vol.write(0, &patterned(0x77, 4 * CHUNK_SECTORS), true).unwrap();

    // Physical sector 2 of spindle 1 = logical chunk 1, sector within 2
    // = logical sector 10.
    vol.spindle_mut(1)
        .disk_mut()
        .inject_media_faults(MediaFaultPlan::new(7).latent(2));

    let mut buf = vec![0u8; 4 * CHUNK_BYTES];
    assert_eq!(
        vol.read(0, &mut buf),
        Err(DiskError::Unreadable { sector: 10 }),
        "fault not translated into the volume's address space"
    );
    let snap = vol.obs().snapshot();
    assert_eq!(snap.counter("volume.spindle.1.faults.unreadable_reads"), 1);
    assert_eq!(snap.counter("volume.spindle.0.faults.unreadable_reads"), 0);

    // The healthy spindle's chunks still read fine.
    let mut chunk = vec![0u8; CHUNK_BYTES];
    vol.read(0, &mut chunk).unwrap();
    assert_eq!(chunk, patterned(0x77, CHUNK_SECTORS));
}

/// A transient fault on one spindle is ridden out by that spindle's
/// engine retry policy; the joined read succeeds with intact data.
#[test]
fn transient_fault_on_one_spindle_recovers_transparently() {
    let (mut vol, _clock) = volume(2, StripePolicyKind::RrSegment);
    let data = patterned(0x3C, 4 * CHUNK_SECTORS);
    vol.write(0, &data, true).unwrap();

    vol.spindle_mut(1)
        .disk_mut()
        .inject_media_faults(MediaFaultPlan::new(5).transient(2, 1));

    let mut buf = vec![0u8; 4 * CHUNK_BYTES];
    vol.read(0, &mut buf).unwrap();
    assert_eq!(buf, data);
    let snap = vol.obs().snapshot();
    assert!(snap.counter("volume.spindle.1.engine.retries") >= 1);
    assert_eq!(snap.counter("volume.spindle.1.engine.retry_exhausted"), 0);
}

/// Crash plans armed across the volume share one write index: power
/// fails at the globally N-th write wherever it lands, earlier writes
/// survive on their spindles, and the whole volume refuses service
/// afterwards.
#[test]
fn crash_fires_on_the_globally_nth_write_across_spindles() {
    let (mut vol, _clock) = volume(2, StripePolicyKind::RrSegment);
    vol.arm_crash_all(CrashPlan::drop_at(5));

    // One chunk per write, alternating spindles; write 5 is chunk 5 on
    // spindle 1.
    let mut failed_at = None;
    for i in 0..8u64 {
        let buf = patterned(i as u8 + 1, CHUNK_SECTORS);
        match vol.write(i * CHUNK_SECTORS, &buf, true) {
            Ok(()) => {}
            Err(e) => {
                failed_at = Some((i, e));
                break;
            }
        }
    }
    assert_eq!(failed_at, Some((5, DiskError::Crashed)));
    assert!(vol.has_crashed());
    assert_eq!(vol.global_writes(), 6, "writes numbered in global persist order");

    // The volume fails fast from now on — one power supply.
    assert_eq!(
        vol.write(0, &patterned(0xEE, CHUNK_SECTORS), true),
        Err(DiskError::Crashed)
    );
    let mut buf = vec![0u8; CHUNK_BYTES];
    assert_eq!(vol.read(0, &mut buf), Err(DiskError::Crashed));

    // Surviving images: chunks 0..5 persisted on their spindles, the
    // dropped write 5 (spindle 1, row 2) still zero.
    let images = vol.into_images();
    for chunk in 0..5u64 {
        let (spindle, row) = ((chunk % 2) as usize, chunk / 2);
        let at = (row * CHUNK_SECTORS) as usize * SECTOR_SIZE;
        assert_eq!(
            &images[spindle][at..at + CHUNK_BYTES],
            &patterned(chunk as u8 + 1, CHUNK_SECTORS)[..],
            "chunk {chunk} missing after crash"
        );
    }
    let at = (2 * CHUNK_SECTORS) as usize * SECTOR_SIZE;
    assert_eq!(
        &images[1][at..at + CHUNK_BYTES],
        &vec![0u8; CHUNK_BYTES][..],
        "the dropped write leaked onto the platter"
    );
}

/// Per-spindle accounting stays separate in a shared registry: each
/// spindle's busy time lives under its own `volume.spindle.<i>.*`
/// names, equals that spindle's own stats, never exceeds elapsed
/// virtual time, and their *sum* exceeds elapsed when spindles overlap
/// — which a single shared `disk.busy_ns` counter would misreport as
/// one disk busier than wall-clock time.
#[test]
fn per_spindle_busy_time_is_not_double_counted() {
    let (mut vol, clock) = volume(2, StripePolicyKind::RrSegment);

    // 32 chunks dealt alternately: both spindles do ~identical
    // sequential work, overlapped in virtual time.
    for chunk in 0..32u64 {
        let buf = patterned(chunk as u8, CHUNK_SECTORS);
        vol.write(chunk * CHUNK_SECTORS, &buf, false).unwrap();
    }
    vol.flush().unwrap();
    let elapsed = clock.now_ns();
    assert!(elapsed > 0);

    let snap = vol.obs().snapshot();
    let mut sum = 0;
    for i in 0..2 {
        let stats = vol.spindle(i).disk().stats();
        // Service-time decomposition holds per spindle even with the
        // clock shared across overlapping spindles.
        assert_eq!(
            stats.seek_ns + stats.rotation_ns + stats.transfer_ns,
            stats.busy_ns,
            "spindle {i} double-counted service time"
        );
        let counter = snap.counter(&format!("volume.spindle.{i}.disk.busy_ns"));
        assert_eq!(counter, stats.busy_ns, "spindle {i}'s counter mixed with another's");
        assert!(
            stats.busy_ns <= elapsed,
            "spindle {i} busy {} ns exceeds elapsed {} ns",
            stats.busy_ns,
            elapsed
        );
        assert!(stats.busy_ns > 0, "spindle {i} did no work");
        sum += stats.busy_ns;
    }
    // The shared, unprefixed name must not exist: that was the
    // single-disk assumption that merged every spindle into one counter.
    assert_eq!(snap.counter("disk.busy_ns"), 0);
    assert!(
        sum > elapsed,
        "busy fractions {sum} ns do not overlap within elapsed {elapsed} ns"
    );
}

/// The volume refuses requests past its logical capacity, which rounds
/// each spindle down to whole stripe units.
#[test]
fn capacity_is_whole_stripe_units_times_spindles() {
    // 4_100 sectors per spindle with 8-sector chunks → 512 whole chunks
    // per spindle → 8_192 logical sectors over 2 spindles.
    let clock = Clock::new();
    let cfg = VolumeConfig::interleave(2, CHUNK_BYTES);
    let mut vol = StripedVolume::new(DiskGeometry::tiny_test(4_100), clock, cfg);
    assert_eq!(vol.num_sectors(), 8_192);
    vol.write(8_191, &patterned(1, 1), true).unwrap();
    assert_eq!(
        vol.write(8_192, &patterned(1, 1), true),
        Err(DiskError::OutOfRange {
            sector: 8_192,
            count: 1,
            capacity: 8_192
        })
    );
}
