//! Fail-slow tolerance on parity volumes: hedged reconstruction reads
//! bound the latency a limping spindle can impose, the health monitor
//! auto-evicts it and fails over to a hot spare, and operator misuse of
//! the rebuild/resync surface comes back as typed errors, not panics.

use std::sync::Arc;

use engine::EngineConfig;
use sim_disk::{
    BlockDevice, Clock, DiskError, DiskGeometry, FailSlowProfile, MediaFaultPlan, RamDisk,
    SECTOR_SIZE,
};
use volume::{
    HealthPolicy, HealthState, RebuildPolicy, SpindleState, StripedVolume, VolumeConfig,
};

const SPINDLE_SECTORS: u64 = 4_096;
const CHUNK_SECTORS: u64 = 8;
const CHUNK_BYTES: usize = CHUNK_SECTORS as usize * SECTOR_SIZE;
/// Well above a healthy chunk service (~3.5 ms on `tiny_test` media:
/// seek ≤ 2 ms + rotation 1 ms + transfer ~0.4 ms) even with a few
/// pieces queued per spindle; well below a 30x fail-slow chunk.
const HEDGE_DEADLINE_NS: u64 = 20_000_000;
const SLOW_SPINDLE: usize = 1;

fn patterned(fill: u8, sectors: u64) -> Vec<u8> {
    (0..sectors as usize * SECTOR_SIZE)
        .map(|i| fill ^ (i / SECTOR_SIZE) as u8)
        .collect()
}

/// A 4-spindle parity volume, filled identically to a flat mirror.
fn filled_volume(hedge: Option<u64>) -> (StripedVolume, Arc<Clock>, RamDisk) {
    let clock = Clock::new();
    let mut cfg = VolumeConfig::parity_rotate(4, CHUNK_BYTES);
    if let Some(deadline) = hedge {
        cfg = cfg.with_engine(EngineConfig::default().with_hedge_deadline_ns(deadline));
    }
    let mut vol = StripedVolume::new(
        DiskGeometry::tiny_test(SPINDLE_SECTORS),
        Arc::clone(&clock),
        cfg,
    );
    let mut mirror = RamDisk::new(vol.num_sectors());
    for (i, (sector, sectors)) in [(0u64, 64u64), (64, 64), (200, 40), (300, 16)]
        .into_iter()
        .enumerate()
    {
        let buf = patterned(0x30 + i as u8, sectors);
        vol.write(sector, &buf, false).unwrap();
        mirror.write(sector, &buf, false).unwrap();
    }
    vol.flush().unwrap();
    (vol, clock, mirror)
}

fn arm_fail_slow(vol: &mut StripedVolume, spindle: usize, multiplier_pct: u64) {
    vol.spindle_mut(spindle).disk_mut().inject_media_faults(
        MediaFaultPlan::new(0xFA11).fail_slow(FailSlowProfile::at(0).with_multiplier_pct(multiplier_pct)),
    );
}

fn read_all(vol: &mut StripedVolume, mirror: &mut RamDisk, context: &str) {
    for (sector, sectors) in [(0u64, 64u64), (64, 64), (200, 40), (300, 16)] {
        let mut got = vec![0u8; sectors as usize * SECTOR_SIZE];
        let mut want = vec![0u8; sectors as usize * SECTOR_SIZE];
        vol.read(sector, &mut got).unwrap();
        mirror.read(sector, &mut want).unwrap();
        assert_eq!(got, want, "read [{sector}, +{sectors}) diverged {context}");
    }
}

/// Hedging races a slow direct read against reconstruction: bytes stay
/// identical to a healthy mirror, the race is accounted, and the
/// foreground finishes strictly faster than the same volume without a
/// hedge deadline.
#[test]
fn hedged_reads_beat_the_slow_spindle_and_return_identical_bytes() {
    let (mut hedged, hedged_clock, mut mirror) = filled_volume(Some(HEDGE_DEADLINE_NS));
    let (mut plain, plain_clock, _) = filled_volume(None);
    arm_fail_slow(&mut hedged, SLOW_SPINDLE, 3000);
    arm_fail_slow(&mut plain, SLOW_SPINDLE, 3000);

    let before_hedged = hedged_clock.now_ns();
    let before_plain = plain_clock.now_ns();
    assert_eq!(before_hedged, before_plain, "identical histories");
    read_all(&mut hedged, &mut mirror, "with hedging");
    read_all(&mut plain, &mut mirror, "without hedging");
    let hedged_ns = hedged_clock.now_ns() - before_hedged;
    let plain_ns = plain_clock.now_ns() - before_plain;
    assert!(
        hedged_ns < plain_ns,
        "hedging must shield the foreground from the slow spindle: \
         hedged {hedged_ns} ns vs unhedged {plain_ns} ns"
    );

    let snap = hedged.obs().snapshot();
    assert!(snap.counter("volume.hedged_reads") > 0, "no race was run");
    let hedges = snap.counter(&format!("volume.spindle.{SLOW_SPINDLE}.engine.hedges"));
    let wins = snap.counter(&format!("volume.spindle.{SLOW_SPINDLE}.engine.hedge_wins"));
    assert!(hedges > 0, "the slow spindle never reported an overdue read");
    assert!(wins > 0, "reconstruction never won a race against a 30x spindle");
    assert!(wins <= hedges, "wins are a subset of hedges");
    // The direct read still completed and matched: no degraded reads.
    assert_eq!(snap.counter("volume.degraded_reads"), 0);

    let plain_snap = plain.obs().snapshot();
    assert_eq!(
        plain_snap.counter(&format!("volume.spindle.{SLOW_SPINDLE}.engine.hedges")),
        0,
        "no deadline, no hedges"
    );
}

/// Vacuity guard: on a healthy volume the hedge deadline never fires.
#[test]
fn hedging_never_fires_on_a_healthy_volume() {
    let (mut vol, _clock, mut mirror) = filled_volume(Some(HEDGE_DEADLINE_NS));
    read_all(&mut vol, &mut mirror, "healthy");
    let snap = vol.obs().snapshot();
    for s in 0..4 {
        assert_eq!(
            snap.counter(&format!("volume.spindle.{s}.engine.hedges")),
            0,
            "healthy spindle {s} reported an overdue read"
        );
    }
    assert_eq!(snap.counter("volume.hedged_reads"), 0);
}

/// A hedged race where the direct read dies outright: reconstruction is
/// authoritative and the read is served degraded, not failed.
#[test]
fn hedged_race_covers_a_direct_read_that_errors() {
    let (mut vol, _clock, mut mirror) = filled_volume(Some(HEDGE_DEADLINE_NS));
    // Slow *and* unreadable: every read of the spindle blows the
    // deadline and then fails on the platter.
    let mut plan = MediaFaultPlan::new(0xFA11)
        .fail_slow(FailSlowProfile::at(0).with_multiplier_pct(3000));
    for s in 0..SPINDLE_SECTORS {
        plan = plan.latent(s);
    }
    vol.spindle_mut(SLOW_SPINDLE).disk_mut().inject_media_faults(plan);

    read_all(&mut vol, &mut mirror, "with a slow+failing spindle");
    let snap = vol.obs().snapshot();
    assert!(snap.counter("volume.hedged_reads") > 0);
    assert!(snap.counter("volume.degraded_reads") > 0);
}

/// The health monitor notices the fail-slow spindle, evicts it, fails
/// over to the hot spare, and the rebuild converges — with zero
/// operator actions and no byte ever served wrong.
#[test]
fn health_monitor_auto_evicts_and_hot_spare_rebuild_converges() {
    let (mut vol, _clock, mut mirror) = filled_volume(None);
    vol.set_health_policy(
        HealthPolicy::default()
            .with_ewma_alpha_millis(1000)
            .with_slo_inflation_millis(3000)
            .with_suspect_after(2)
            .with_evict_after(3)
            .with_min_observations(4),
    );
    vol.set_hot_spares(1);
    arm_fail_slow(&mut vol, SLOW_SPINDLE, 3000);

    let mut rounds = 0;
    while vol.spindle_state(SLOW_SPINDLE) == SpindleState::Online {
        read_all(&mut vol, &mut mirror, "while the monitor watches");
        rounds += 1;
        assert!(rounds < 64, "the monitor never evicted the slow spindle");
    }
    assert_eq!(
        vol.spindle_state(SLOW_SPINDLE),
        SpindleState::Rebuilding,
        "the hot spare should be swapped in automatically"
    );
    assert_eq!(vol.hot_spares(), 0, "the failover consumed the spare");
    assert_eq!(vol.health_state(SLOW_SPINDLE), Some(HealthState::Evicted));

    // Reads stay correct while degraded and mid-rebuild.
    read_all(&mut vol, &mut mirror, "mid-rebuild");
    while vol.rebuild().is_some() {
        vol.rebuild_step().unwrap();
    }
    assert_eq!(vol.spindle_state(SLOW_SPINDLE), SpindleState::Online);
    assert_eq!(
        vol.health_state(SLOW_SPINDLE),
        Some(HealthState::Healthy),
        "the replacement drive starts with a clean record"
    );
    read_all(&mut vol, &mut mirror, "after the rebuild");
    // The replacement media is new hardware: no fail-slow plan, so the
    // monitor must not evict it again.
    for _ in 0..8 {
        read_all(&mut vol, &mut mirror, "steady state on the replacement");
    }
    assert_eq!(vol.spindle_state(SLOW_SPINDLE), SpindleState::Online);

    let snap = vol.obs().snapshot();
    assert!(snap.counter("volume.health.suspects") >= 1);
    assert_eq!(snap.counter("volume.health.evictions"), 1);
    assert_eq!(snap.counter("volume.health.spares_used"), 1);
    assert_eq!(snap.counter("volume.rebuild.runs_completed"), 1);
    assert_eq!(snap.gauge(&format!("volume.health.state.{SLOW_SPINDLE}")), 0);
}

/// Without a hot spare the eviction still routes around the spindle —
/// it just waits for an operator to stock a replacement.
#[test]
fn eviction_without_a_spare_leaves_the_volume_degraded_but_serving() {
    let (mut vol, _clock, mut mirror) = filled_volume(None);
    vol.set_health_policy(
        HealthPolicy::default()
            .with_ewma_alpha_millis(1000)
            .with_slo_inflation_millis(3000)
            .with_suspect_after(2)
            .with_evict_after(3)
            .with_min_observations(4),
    );
    arm_fail_slow(&mut vol, SLOW_SPINDLE, 3000);
    let mut rounds = 0;
    while vol.spindle_state(SLOW_SPINDLE) == SpindleState::Online {
        read_all(&mut vol, &mut mirror, "while the monitor watches");
        rounds += 1;
        assert!(rounds < 64, "the monitor never evicted the slow spindle");
    }
    assert_eq!(vol.spindle_state(SLOW_SPINDLE), SpindleState::Dead);
    read_all(&mut vol, &mut mirror, "degraded after eviction");
    let snap = vol.obs().snapshot();
    assert_eq!(snap.counter("volume.health.evictions"), 1);
    assert_eq!(snap.counter("volume.health.spares_used"), 0);
    // The operator can still swap a drive in by hand.
    vol.replace_spindle(SLOW_SPINDLE, RebuildPolicy::default()).unwrap();
    while vol.rebuild().is_some() {
        vol.rebuild_step().unwrap();
    }
    read_all(&mut vol, &mut mirror, "after the manual rebuild");
}

/// A tracked async read claimed after its spindle was killed falls back
/// to reconstruction instead of dangling on a discarded engine token.
#[test]
fn async_read_claims_survive_a_mid_flight_spindle_kill() {
    let mut reconstructed_claims = 0;
    for victim in 0..4usize {
        let (mut vol, _clock, mut mirror) = filled_volume(None);
        let before = vol.obs().snapshot().counter("volume.degraded_reads");
        let token = vol
            .start_read_async(8, CHUNK_BYTES)
            .expect("a single-chunk range maps to one spindle");
        vol.kill_spindle(victim);
        let got = vol.finish_read_async(token).unwrap();
        let mut want = vec![0u8; CHUNK_BYTES];
        mirror.read(8, &mut want).unwrap();
        assert_eq!(got, want, "async claim diverged with spindle {victim} dead");
        if vol.obs().snapshot().counter("volume.degraded_reads") > before {
            reconstructed_claims += 1;
        }
    }
    assert_eq!(
        reconstructed_claims, 1,
        "exactly one victim was the serving spindle, and its claim reconstructed"
    );
}

/// Operator misuse comes back as typed [`DiskError::Unsupported`]
/// errors — no panics, no media touched.
#[test]
fn rebuild_and_resync_misuse_returns_typed_errors() {
    // RAID-0 has no parity: nothing to rebuild from, nothing to resync.
    let clock = Clock::new();
    let mut raid0 = StripedVolume::new(
        DiskGeometry::tiny_test(SPINDLE_SECTORS),
        Arc::clone(&clock),
        VolumeConfig::interleave(3, CHUNK_BYTES),
    );
    raid0.kill_spindle(0);
    assert!(matches!(
        raid0.replace_spindle(0, RebuildPolicy::default()),
        Err(DiskError::Unsupported(msg)) if msg.contains("parity")
    ));
    assert!(matches!(
        raid0.resync_parity(),
        Err(DiskError::Unsupported(msg)) if msg.contains("not a parity volume")
    ));

    let (mut vol, _clock, _mirror) = filled_volume(None);
    // Replacing a live spindle would discard data a rebuild cannot
    // recover.
    assert!(matches!(
        vol.replace_spindle(1, RebuildPolicy::default()),
        Err(DiskError::Unsupported(msg)) if msg.contains("not dead")
    ));
    // No such bay.
    assert!(matches!(
        vol.replace_spindle(9, RebuildPolicy::default()),
        Err(DiskError::Unsupported(msg)) if msg.contains("bay")
    ));
    // Resyncing a degraded assembly would overwrite the parity encoding
    // of the missing spindle's bytes — the documented caveat is now a
    // typed error, not a doc note.
    vol.kill_spindle(2);
    assert!(matches!(
        vol.resync_parity(),
        Err(DiskError::Unsupported(msg)) if msg.contains("degraded")
    ));
    // And the misuse changed nothing: the volume still serves reads and
    // accepts the *correct* sequence.
    vol.replace_spindle(2, RebuildPolicy::default()).unwrap();
    while vol.rebuild().is_some() {
        vol.rebuild_step().unwrap();
    }
    assert_eq!(vol.spindle_state(2), SpindleState::Online);
    assert!(vol.resync_parity().is_ok(), "clean assembly resyncs fine");
}
