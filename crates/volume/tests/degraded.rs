//! Degraded operation and online rebuild on parity volumes: reads
//! survive a dead spindle by XOR reconstruction, writes keep parity
//! current so no data is lost, a replacement is rebuilt online, and
//! only double faults escape — with volume-logical addresses.

use std::sync::Arc;

use engine::EngineConfig;
use sim_disk::{
    BlockDevice, Clock, DiskError, DiskGeometry, MediaFaultPlan, RamDisk, SECTOR_SIZE,
};
use volume::{RebuildPolicy, RebuildProgress, SpindleState, StripedVolume, VolumeConfig};

const SPINDLE_SECTORS: u64 = 4_096;
const CHUNK_SECTORS: u64 = 8;
const CHUNK_BYTES: usize = CHUNK_SECTORS as usize * SECTOR_SIZE;

fn parity_volume(spindles: usize) -> (StripedVolume, Arc<Clock>) {
    let clock = Clock::new();
    let vol = StripedVolume::new(
        DiskGeometry::tiny_test(SPINDLE_SECTORS),
        Arc::clone(&clock),
        VolumeConfig::parity_rotate(spindles, CHUNK_BYTES),
    );
    (vol, clock)
}

fn patterned(fill: u8, sectors: u64) -> Vec<u8> {
    (0..sectors as usize * SECTOR_SIZE)
        .map(|i| fill ^ (i / SECTOR_SIZE) as u8)
        .collect()
}

/// Writes a mixed batch (alignments, lengths, sync/async) to both the
/// volume and a flat mirror.
fn mixed_writes(vol: &mut StripedVolume, mirror: &mut RamDisk, salt: u8) {
    let writes: [(u64, u64, bool); 6] = [
        (3, 2, true),
        (24, 24, false),
        (70, 13, false),
        (120, 96, true),
        (300, 5, false),
        (5, 1, true),
    ];
    for (i, (sector, sectors, sync)) in writes.iter().enumerate() {
        let buf = patterned(salt.wrapping_add(i as u8), *sectors);
        vol.write(*sector, &buf, *sync).unwrap();
        mirror.write(*sector, &buf, *sync).unwrap();
    }
    vol.flush().unwrap();
}

fn assert_matches_mirror(vol: &mut StripedVolume, mirror: &mut RamDisk, context: &str) {
    for (sector, sectors) in [(0u64, 64u64), (3, 2), (60, 170), (290, 20), (0, 416)] {
        let mut got = vec![0u8; sectors as usize * SECTOR_SIZE];
        let mut want = vec![0u8; sectors as usize * SECTOR_SIZE];
        vol.read(sector, &mut got).unwrap();
        mirror.read(sector, &mut want).unwrap();
        assert_eq!(got, want, "read [{sector}, +{sectors}) diverged {context}");
    }
}

/// A dead spindle is invisible to reads: every byte reconstructs from
/// the survivors, and the degraded-path metrics account for it.
#[test]
fn reads_survive_a_dead_spindle_by_reconstruction() {
    for dead in 0..4usize {
        let (mut vol, _clock) = parity_volume(4);
        let mut mirror = RamDisk::new(vol.num_sectors());
        mixed_writes(&mut vol, &mut mirror, 0x10);

        vol.kill_spindle(dead);
        assert_eq!(vol.spindle_state(dead), SpindleState::Dead);
        assert_matches_mirror(&mut vol, &mut mirror, &format!("with spindle {dead} dead"));

        let snap = vol.obs().snapshot();
        assert_eq!(snap.gauge("volume.spindles_online"), 3);
        assert!(
            snap.counter("volume.degraded_reads") > 0,
            "no read noticed the dead spindle"
        );
        assert!(
            snap.counter("volume.reconstructions") > 0,
            "no piece was reconstructed"
        );
    }
}

/// Writes while degraded keep parity current — including writes whose
/// data chunk lives on the dead spindle, whose *content* survives in
/// the updated parity and reconstructs on read.
#[test]
fn writes_while_degraded_lose_no_data() {
    for dead in 0..4usize {
        let (mut vol, _clock) = parity_volume(4);
        let mut mirror = RamDisk::new(vol.num_sectors());
        mixed_writes(&mut vol, &mut mirror, 0x20);

        vol.kill_spindle(dead);
        mixed_writes(&mut vol, &mut mirror, 0x60);
        assert_matches_mirror(
            &mut vol,
            &mut mirror,
            &format!("after degraded writes with spindle {dead} dead"),
        );
    }
}

/// A replacement spindle rebuilds online to completion; afterwards the
/// volume is healthy — a *different* spindle can die and every byte
/// still reconstructs, which proves the rebuilt platter holds exactly
/// the parity-consistent contents and not stale zeroes.
#[test]
fn rebuild_completes_and_restores_single_fault_tolerance() {
    let (mut vol, _clock) = parity_volume(4);
    let mut mirror = RamDisk::new(vol.num_sectors());
    mixed_writes(&mut vol, &mut mirror, 0x30);

    vol.kill_spindle(1);
    mixed_writes(&mut vol, &mut mirror, 0x70);

    let policy = RebuildPolicy::default()
        .with_idle_queue_depth(None)
        .with_max_step_rows(64);
    vol.replace_spindle(1, policy).unwrap();
    assert_eq!(vol.spindle_state(1), SpindleState::Rebuilding);

    // Foreground writes keep landing mid-rebuild (write-through).
    mixed_writes(&mut vol, &mut mirror, 0xA0);

    let mut steps = 0u64;
    loop {
        match vol.rebuild_step().unwrap() {
            RebuildProgress::Completed => break,
            RebuildProgress::Progress { rows } => {
                assert!(rows > 0);
                steps += 1;
            }
            RebuildProgress::Idle => panic!("rebuild went idle before completing"),
        }
    }
    assert_eq!(vol.spindle_state(1), SpindleState::Online);
    assert!(vol.rebuild().is_none());

    let snap = vol.obs().snapshot();
    assert_eq!(snap.counter("volume.rebuild.runs_completed"), 1);
    assert_eq!(snap.gauge("volume.rebuild.remaining_rows"), 0);
    assert_eq!(snap.gauge("volume.spindles_online"), 4);
    assert_eq!(snap.counter("volume.rebuild.steps"), steps + 1);
    assert_eq!(snap.counter("volume.rebuild.rows"), SPINDLE_SECTORS / CHUNK_SECTORS);

    // Healthy again: scrub matches the mirror without reconstruction.
    let before = vol.obs().snapshot().counter("volume.degraded_reads");
    assert_matches_mirror(&mut vol, &mut mirror, "after rebuild");
    assert_eq!(
        vol.obs().snapshot().counter("volume.degraded_reads"),
        before,
        "a healthy volume should not reconstruct"
    );

    // The acid test: lose a *different* spindle and reconstruct through
    // the rebuilt one.
    vol.kill_spindle(3);
    assert_matches_mirror(&mut vol, &mut mirror, "with spindle 3 dead after rebuilding 1");
}

/// The idle gate defers rebuild steps while foreground work is queued
/// and opens when the queues drain — the same host-driven pacing
/// contract as the async cleaner.
#[test]
fn rebuild_idle_gate_follows_the_queue_depth() {
    let (mut vol, _clock) = parity_volume(4);
    let mut mirror = RamDisk::new(vol.num_sectors());
    mixed_writes(&mut vol, &mut mirror, 0x40);

    vol.kill_spindle(2);
    vol.replace_spindle(2, RebuildPolicy::default()).unwrap();
    assert!(vol.rebuild_wants_step(), "idle volume should allow a step");

    vol.write(0, &patterned(0x55, 4 * CHUNK_SECTORS), false).unwrap();
    mirror.write(0, &patterned(0x55, 4 * CHUNK_SECTORS), false).unwrap();
    assert!(
        !vol.rebuild_wants_step(),
        "queued foreground work should close the idle gate"
    );
    vol.flush().unwrap();
    assert!(vol.rebuild_wants_step(), "drained queues should reopen the gate");

    assert_eq!(
        vol.rebuild_step().unwrap(),
        RebuildProgress::Progress {
            rows: RebuildPolicy::default().max_step_rows as u64
        }
    );
    assert!(vol.rebuild().is_some());
    assert_matches_mirror(&mut vol, &mut mirror, "mid-rebuild");
}

/// Only a double fault escapes, and it reports the *volume-logical*
/// sector of the piece that could not be served (satellite: the
/// splitter's partial-failure path routes single faults to
/// reconstruction first).
#[test]
fn double_fault_escapes_with_the_logical_sector() {
    let clock = Clock::new();
    let cfg = VolumeConfig::parity_rotate(4, CHUNK_BYTES)
        .with_engine(EngineConfig::default().with_read_retries(0));
    let mut vol = StripedVolume::new(
        DiskGeometry::tiny_test(SPINDLE_SECTORS),
        Arc::clone(&clock),
        cfg,
    );
    vol.write(0, &patterned(0x11, 8 * CHUNK_SECTORS), true).unwrap();

    // Fault one sector on spindle 0 (logical sector 0), then kill
    // spindle 1. Logical 0's direct read fails, and its reconstruction
    // needs dead spindle 1: a genuine double fault.
    vol.spindle_mut(0)
        .disk_mut()
        .inject_media_faults(MediaFaultPlan::new(3).latent(0));
    vol.kill_spindle(1);

    let mut buf = vec![0u8; 3 * CHUNK_BYTES];
    assert_eq!(
        vol.read(0, &mut buf),
        Err(DiskError::Unreadable { sector: 0 }),
        "double fault should surface the first unservable logical sector"
    );

    // Requests that avoid the faulted sector still reconstruct fine:
    // row 1 (logical 24..48) has no latent fault, only the dead spindle.
    let mut row1 = vec![0u8; 3 * CHUNK_BYTES];
    vol.read(3 * CHUNK_SECTORS, &mut row1).unwrap();
    assert_eq!(row1, patterned(0x11, 8 * CHUNK_SECTORS)[3 * CHUNK_BYTES..6 * CHUNK_BYTES]);
}

/// Regression (stripe-balance satellite): the Jain fairness gauge is
/// computed over *online* spindles only. A dead spindle takes no writes
/// by design; counting its frozen byte count would report phantom
/// imbalance during perfectly even degraded operation.
#[test]
fn balance_gauge_excludes_offline_spindles() {
    let (mut vol, _clock) = parity_volume(4);

    // 8 full rows: rotation deals data and parity evenly, every spindle
    // writes the same byte count.
    let rows = patterned(0x42, 8 * 3 * CHUNK_SECTORS);
    vol.write(0, &rows, true).unwrap();
    assert_eq!(vol.obs().snapshot().gauge("volume.stripe_balance_millis"), 1000);

    vol.kill_spindle(0);
    // 8 more full rows at the same addresses: the three survivors again
    // take identical shares, the dead spindle none.
    vol.write(0, &rows, true).unwrap();
    assert_eq!(
        vol.obs().snapshot().gauge("volume.stripe_balance_millis"),
        1000,
        "a dead spindle's frozen byte count leaked into the balance gauge"
    );
}

/// A dead *parity* spindle leaves its rows unprotected but fully
/// writable and readable — data chunks live on the survivors.
#[test]
fn dead_parity_spindle_keeps_rows_serving() {
    let (mut vol, _clock) = parity_volume(4);
    // Row 0 parks parity on spindle 3 under rotation.
    vol.kill_spindle(3);
    let data = patterned(0x99, 2 * CHUNK_SECTORS);
    vol.write(0, &data, true).unwrap();
    let mut buf = vec![0u8; data.len()];
    vol.read(0, &mut buf).unwrap();
    assert_eq!(buf, data);
}

/// Parity volumes need at least two spindles.
#[test]
#[should_panic(expected = "spindles")]
fn parity_volume_rejects_a_single_spindle() {
    let _ = VolumeConfig::parity_rotate(1, CHUNK_BYTES);
}

/// `resync_parity` rewrites exactly the rows whose XOR went stale —
/// the dirty-assembly scrub for a volume whose every spindle holds
/// current media — and afterwards the volume tolerates a spindle loss
/// again. (It must *not* be run against stale media: see the method's
/// doc, and the crash sweep, which rebuilds instead.)
#[test]
fn resync_rewrites_stale_parity_rows_and_restores_fault_tolerance() {
    let (mut vol, _clock) = parity_volume(4);
    let mut mirror = RamDisk::new(vol.num_sectors());
    mixed_writes(&mut vol, &mut mirror, 0x50);

    // Tear row 0's parity behind the volume's back — the write-hole
    // shape a crash between data and parity writes leaves. Row 0 parks
    // parity on spindle 3 under rotation.
    let garbage = vec![0xEE; CHUNK_BYTES];
    vol.spindle_mut(3).disk_mut().write(0, &garbage, true).unwrap();

    // Healthy reads never touch parity, so nothing notices yet.
    assert_matches_mirror(&mut vol, &mut mirror, "with torn parity, healthy");

    let fixed = vol.resync_parity().unwrap();
    assert_eq!(fixed, 1, "exactly the torn row should be rewritten");
    assert_eq!(vol.obs().snapshot().counter("volume.resync_rows_fixed"), 1);
    assert_eq!(vol.resync_parity().unwrap(), 0, "resync should converge");

    // The proof parity is whole again: lose a data spindle and read
    // everything back through reconstruction.
    vol.kill_spindle(0);
    assert_matches_mirror(&mut vol, &mut mirror, "after resync with spindle 0 dead");
}
