//! Property test: the request splitter produces an *exact partition*
//! of every logical request — no gap, no overlap, correct spindle
//! mapping — for both policies, arbitrary chunk sizes, and arbitrary
//! spindle counts.

use proptest::prelude::*;

use sim_disk::SECTOR_SIZE;
use volume::{
    split_request, to_logical, BlockInterleave, ParityRotate, ParitySegment, SegmentRoundRobin,
    StripePolicy, StripePolicyKind,
};

fn policy_for(kind: StripePolicyKind, chunk_sectors: u64) -> Box<dyn StripePolicy> {
    let chunk_bytes = chunk_sectors as usize * SECTOR_SIZE;
    match kind {
        StripePolicyKind::RrSegment => Box::new(SegmentRoundRobin::new(chunk_bytes)),
        StripePolicyKind::Interleave => Box::new(BlockInterleave::new(chunk_bytes)),
        StripePolicyKind::ParitySegment => Box::new(ParitySegment::new(chunk_bytes)),
        StripePolicyKind::ParityRotate => Box::new(ParityRotate::new(chunk_bytes)),
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 256, ..ProptestConfig::default() })]

    #[test]
    fn sub_requests_are_an_exact_partition_of_the_request(
        kind_ix in 0usize..2,
        spindles in 1usize..9,
        chunk_sectors in 1u64..65,
        sector in 0u64..10_000,
        count in 1u64..512,
    ) {
        let kind = StripePolicyKind::ALL[kind_ix];
        let policy = policy_for(kind, chunk_sectors);
        let subs = split_request(&*policy, spindles, sector, count);

        // No gap, no overlap in the logical buffer: pieces are emitted
        // in order and their byte ranges tile [0, count * SECTOR_SIZE).
        let mut covered = 0usize;
        for sub in &subs {
            prop_assert_eq!(sub.offset, covered, "gap or overlap in the logical buffer");
            prop_assert!(sub.sectors > 0, "empty sub-request");
            covered += sub.bytes();
        }
        prop_assert_eq!(covered, count as usize * SECTOR_SIZE);

        // No overlap on any spindle's platter.
        let mut extents: Vec<(usize, u64, u64)> = Vec::new();
        for sub in &subs {
            prop_assert!(sub.spindle < spindles, "spindle id out of range");
            let (start, end) = (sub.sector, sub.sector + sub.sectors);
            for (sp, s, e) in &extents {
                if *sp == sub.spindle {
                    prop_assert!(
                        end <= *s || start >= *e,
                        "physical extents [{start},{end}) and [{s},{e}) overlap on spindle {sp}"
                    );
                }
            }
            extents.push((sub.spindle, start, end));
        }

        // Correct mapping, sector by sector: piece bytes for logical
        // sector L land on spindle (L / chunk) % n, and the inverse
        // mapping takes the physical sector back to exactly L.
        for sub in &subs {
            for k in 0..sub.sectors {
                let logical = sector + (sub.offset / SECTOR_SIZE) as u64 + k;
                let chunk = logical / chunk_sectors;
                prop_assert_eq!(
                    sub.spindle,
                    (chunk % spindles as u64) as usize,
                    "logical sector {} on the wrong spindle", logical
                );
                prop_assert_eq!(
                    to_logical(&*policy, spindles, sub.spindle, sub.sector + k),
                    logical,
                    "to_logical does not invert the split"
                );
            }
        }
    }

    /// The parity policies partition too — and no data piece ever lands
    /// on its row's parity spindle.
    #[test]
    fn parity_sub_requests_partition_and_avoid_the_parity_spindle(
        kind_ix in 2usize..4,
        spindles in 2usize..9,
        chunk_sectors in 1u64..65,
        sector in 0u64..10_000,
        count in 1u64..512,
    ) {
        let kind = StripePolicyKind::ALL[kind_ix];
        prop_assert!(kind.is_parity());
        let policy = policy_for(kind, chunk_sectors);
        let subs = split_request(&*policy, spindles, sector, count);

        // Exact partition of the logical buffer.
        let mut covered = 0usize;
        for sub in &subs {
            prop_assert_eq!(sub.offset, covered, "gap or overlap in the logical buffer");
            prop_assert!(sub.sectors > 0, "empty sub-request");
            covered += sub.bytes();
        }
        prop_assert_eq!(covered, count as usize * SECTOR_SIZE);

        // No overlap on any spindle's platter.
        let mut extents: Vec<(usize, u64, u64)> = Vec::new();
        for sub in &subs {
            prop_assert!(sub.spindle < spindles, "spindle id out of range");
            let (start, end) = (sub.sector, sub.sector + sub.sectors);
            for (sp, s, e) in &extents {
                if *sp == sub.spindle {
                    prop_assert!(
                        end <= *s || start >= *e,
                        "physical extents [{start},{end}) and [{s},{e}) overlap on spindle {sp}"
                    );
                }
            }
            extents.push((sub.spindle, start, end));
        }

        // Sector by sector: each piece avoids its row's parity spindle
        // and the inverse mapping recovers the logical sector exactly.
        for sub in &subs {
            for k in 0..sub.sectors {
                let logical = sector + (sub.offset / SECTOR_SIZE) as u64 + k;
                let physical = sub.sector + k;
                let row = physical / chunk_sectors;
                prop_assert_ne!(
                    Some(sub.spindle),
                    policy.parity_spindle(row, spindles),
                    "data written onto row {}'s parity spindle", row
                );
                prop_assert_eq!(
                    to_logical(&*policy, spindles, sub.spindle, physical),
                    logical,
                    "to_logical does not invert the split"
                );
            }
        }
    }
}
