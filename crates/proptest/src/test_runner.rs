//! Case-execution support: configuration, the per-test RNG, and the error
//! type `prop_assert!` produces.

use rand::{RngCore, SplitMix64};

/// Mirrors the `proptest::test_runner::ProptestConfig` fields the workspace
/// names; everything else about real proptest's config is out of scope.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of successful cases required for the property to pass.
    pub cases: u32,
    /// Accepted for source compatibility; this shim does not shrink.
    pub max_shrink_iters: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        let cases = std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(64);
        ProptestConfig {
            cases,
            max_shrink_iters: 0,
        }
    }
}

/// How a single generated case ended, when it did not simply pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TestCaseError {
    /// The case does not apply (e.g. a filtered input); retried, not counted.
    Reject(String),
    /// The property is false for this input.
    Fail(String),
}

impl TestCaseError {
    pub fn fail(reason: impl Into<String>) -> Self {
        TestCaseError::Fail(reason.into())
    }

    pub fn reject(reason: impl Into<String>) -> Self {
        TestCaseError::Reject(reason.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TestCaseError::Reject(reason) => write!(f, "case rejected: {reason}"),
            TestCaseError::Fail(reason) => write!(f, "case failed: {reason}"),
        }
    }
}

/// Resolves the run plan for one property: (cases, rng seed). The seed is
/// derived from the test name so distinct properties explore distinct
/// streams, yet every run is reproducible. `PROPTEST_SHIM_SEED` overrides
/// the base seed for exploring alternative streams.
pub fn plan(config: &ProptestConfig, test_name: &str) -> (u32, u64) {
    // FNV-1a over the test name.
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in test_name.bytes() {
        hash ^= byte as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    let base = std::env::var("PROPTEST_SHIM_SEED")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0x1f5_0000_0000u64);
    // max_shrink_iters is config-compatible but unused (no shrinking).
    let _ = config.max_shrink_iters;
    (config.cases, base ^ hash)
}

/// The RNG handed to `Strategy::generate`.
#[derive(Debug, Clone)]
pub struct TestRng {
    core: SplitMix64,
}

impl TestRng {
    pub fn from_seed(seed: u64) -> Self {
        TestRng {
            core: SplitMix64::new(seed),
        }
    }

    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.core.next_u64()
    }

    /// Uniform draw in `[0, bound)`.
    #[inline]
    pub fn below(&mut self, bound: u64) -> u64 {
        self.core.below(bound)
    }

    #[inline]
    pub fn coin(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }

    /// True ~1/8 of the time: the generate-time stand-in for shrinking's
    /// bias toward range boundaries.
    #[inline]
    pub fn pick_edge(&mut self) -> bool {
        self.below(8) == 0
    }
}

impl RngCore for TestRng {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        TestRng::next_u64(self)
    }
}
