//! The `Strategy` trait and the combinators the workspace's tests use.

use std::fmt;
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

use crate::test_runner::TestRng;

/// A recipe for generating values. Unlike real proptest there is no value
/// tree and no shrinking: `generate` draws one concrete value.
pub trait Strategy {
    type Value: fmt::Debug;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<O, F>(self, map: F) -> Map<Self, F>
    where
        Self: Sized,
        O: fmt::Debug,
        F: Fn(Self::Value) -> O,
    {
        Map { source: self, map }
    }

    fn prop_filter<R, F>(self, reason: R, predicate: F) -> Filter<Self, F>
    where
        Self: Sized,
        R: Into<String>,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            source: self,
            reason: reason.into(),
            predicate,
        }
    }

    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// Type-erased strategy; what `prop_oneof!` arms unify to.
pub struct BoxedStrategy<T>(Box<dyn Strategy<Value = T>>);

impl<T: fmt::Debug> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate(rng)
    }
}

/// Strategy yielding a fixed value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone + fmt::Debug>(pub T);

impl<T: Clone + fmt::Debug> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// `source.prop_map(f)`.
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    source: S,
    map: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    O: fmt::Debug,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.map)(self.source.generate(rng))
    }
}

/// `source.prop_filter(reason, pred)`. Rejection is handled locally by
/// resampling; a pathologically tight filter panics rather than spinning.
#[derive(Debug, Clone)]
pub struct Filter<S, F> {
    source: S,
    reason: String,
    predicate: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let candidate = self.source.generate(rng);
            if (self.predicate)(&candidate) {
                return candidate;
            }
        }
        panic!(
            "prop_filter({:?}): rejected 1000 candidates in a row",
            self.reason
        );
    }
}

/// Uniform choice among boxed arms; built by `prop_oneof!`.
pub struct Union<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<T: fmt::Debug> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let arm = rng.below(self.arms.len() as u64) as usize;
        self.arms[arm].generate(rng)
    }
}

/// Types with a canonical full-domain strategy, reachable via `any::<T>()`.
pub trait Arbitrary: fmt::Debug + Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

pub struct Any<T>(PhantomData<T>);

pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.coin()
    }
}

macro_rules! impl_arbitrary_uint {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                if rng.pick_edge() {
                    // Boundary bias: the generate-time stand-in for
                    // shrink-toward-zero.
                    match rng.below(4) {
                        0 => 0,
                        1 => 1,
                        2 => <$t>::MAX,
                        _ => <$t>::MAX - 1,
                    }
                } else {
                    rng.next_u64() as $t
                }
            }
        }
    )*};
}

impl_arbitrary_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                if rng.pick_edge() {
                    match rng.below(4) {
                        0 => 0,
                        1 => -1,
                        2 => <$t>::MAX,
                        _ => <$t>::MIN,
                    }
                } else {
                    rng.next_u64() as $t
                }
            }
        }
    )*};
}

impl_arbitrary_int!(i8, i16, i32, i64, isize);

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                if rng.pick_edge() {
                    return if rng.coin() { self.start } else { self.end - 1 };
                }
                let span = (self.end - self.start) as u64;
                self.start + rng.below(span) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range strategy");
                if rng.pick_edge() {
                    return if rng.coin() { start } else { end };
                }
                let span = (end - start) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                start + rng.below(span + 1) as $t
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! impl_tuple_strategy {
    ($(($S:ident, $idx:tt)),+) => {
        impl<$($S: Strategy),+> Strategy for ($($S,)+) {
            type Value = ($($S::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($( self.$idx.generate(rng), )+)
            }
        }
    };
}

impl_tuple_strategy!((A, 0), (B, 1));
impl_tuple_strategy!((A, 0), (B, 1), (C, 2));
impl_tuple_strategy!((A, 0), (B, 1), (C, 2), (D, 3));
impl_tuple_strategy!((A, 0), (B, 1), (C, 2), (D, 3), (E, 4));
impl_tuple_strategy!((A, 0), (B, 1), (C, 2), (D, 3), (E, 4), (F, 5));
impl_tuple_strategy!((A, 0), (B, 1), (C, 2), (D, 3), (E, 4), (F, 5), (G, 6));
impl_tuple_strategy!(
    (A, 0),
    (B, 1),
    (C, 2),
    (D, 3),
    (E, 4),
    (F, 5),
    (G, 6),
    (H, 7)
);
impl_tuple_strategy!(
    (A, 0),
    (B, 1),
    (C, 2),
    (D, 3),
    (E, 4),
    (F, 5),
    (G, 6),
    (H, 7),
    (I, 8)
);
impl_tuple_strategy!(
    (A, 0),
    (B, 1),
    (C, 2),
    (D, 3),
    (E, 4),
    (F, 5),
    (G, 6),
    (H, 7),
    (I, 8),
    (J, 9)
);
