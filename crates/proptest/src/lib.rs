//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no network access, so the workspace maps the
//! `proptest` dependency name to this crate. It implements the subset of
//! proptest 1.x the workspace's property tests use: the `proptest!` macro
//! (with optional `#![proptest_config(..)]`), `prop_assert!`-family macros,
//! `prop_oneof!`, `Strategy` with `prop_map`/`prop_filter`, `Just`,
//! `any::<T>()`, integer range strategies, tuple strategies,
//! `collection::vec`, `string::string_regex` (character-class patterns
//! only), and `option::of`.
//!
//! Differences from real proptest, deliberately accepted:
//! - **No shrinking.** A failing case reports the generated inputs verbatim;
//!   `max_shrink_iters` is accepted and ignored.
//! - **No failure persistence.** Runs are deterministic instead: the RNG
//!   seed is derived from the test name (override with `PROPTEST_SHIM_SEED`),
//!   so a failure reproduces on re-run without a regression file.
//! - Integer generation biases toward range endpoints ~1/8 of the time in
//!   place of proptest's binary-search shrinking toward boundaries.

pub mod strategy;
pub mod test_runner;

/// `proptest::collection` — strategies for collections (only `vec`).
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// Element-count specification: exact, half-open, or inclusive.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        min: usize,
        max_inclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(exact: usize) -> Self {
            SizeRange {
                min: exact,
                max_inclusive: exact,
            }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(range: Range<usize>) -> Self {
            assert!(range.start < range.end, "empty size range");
            SizeRange {
                min: range.start,
                max_inclusive: range.end - 1,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(range: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                min: *range.start(),
                max_inclusive: *range.end(),
            }
        }
    }

    /// Strategy producing `Vec`s of values from an element strategy.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let span = (self.size.max_inclusive - self.size.min) as u64 + 1;
            let len = self.size.min + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// `proptest::string` — only `string_regex`, and only for patterns of the
/// shape this workspace uses: a sequence of literal characters and
/// character classes, each optionally repeated `{m}` or `{m,n}`.
pub mod string {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::fmt;

    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct Error(String);

    impl fmt::Display for Error {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "string_regex: {}", self.0)
        }
    }

    impl std::error::Error for Error {}

    /// One regex atom: a set of candidate characters plus a repetition count.
    #[derive(Debug, Clone)]
    struct Atom {
        chars: Vec<char>,
        min: u32,
        max: u32,
    }

    /// Strategy generating strings matching a (restricted) regex.
    #[derive(Debug, Clone)]
    pub struct RegexStrategy {
        atoms: Vec<Atom>,
    }

    impl Strategy for RegexStrategy {
        type Value = String;

        fn generate(&self, rng: &mut TestRng) -> String {
            let mut out = String::new();
            for atom in &self.atoms {
                let reps = atom.min + rng.below((atom.max - atom.min) as u64 + 1) as u32;
                for _ in 0..reps {
                    out.push(atom.chars[rng.below(atom.chars.len() as u64) as usize]);
                }
            }
            out
        }
    }

    /// Parses `[class]` bodies: literals, `a-z` ranges, `\`-escapes.
    fn parse_class(body: &str) -> Result<Vec<char>, Error> {
        let mut chars = Vec::new();
        let mut it = body.chars().peekable();
        while let Some(c) = it.next() {
            let lo = match c {
                '\\' => it
                    .next()
                    .ok_or_else(|| Error("dangling escape in class".into()))?,
                c => c,
            };
            if it.peek() == Some(&'-') && {
                let mut ahead = it.clone();
                ahead.next();
                ahead.peek().is_some()
            } {
                it.next(); // consume '-'
                let hi = match it.next().unwrap() {
                    '\\' => it
                        .next()
                        .ok_or_else(|| Error("dangling escape in class".into()))?,
                    c => c,
                };
                if (lo as u32) > (hi as u32) {
                    return Err(Error(format!("inverted range {lo}-{hi}")));
                }
                for cp in lo as u32..=hi as u32 {
                    chars.push(char::from_u32(cp).ok_or_else(|| Error("bad range".into()))?);
                }
            } else {
                chars.push(lo);
            }
        }
        if chars.is_empty() {
            return Err(Error("empty character class".into()));
        }
        Ok(chars)
    }

    /// Parses `{m}` / `{m,n}` after an atom; defaults to `{1}`.
    fn parse_reps(it: &mut std::iter::Peekable<std::str::Chars<'_>>) -> Result<(u32, u32), Error> {
        if it.peek() != Some(&'{') {
            return Ok((1, 1));
        }
        it.next();
        let mut body = String::new();
        for c in it.by_ref() {
            if c == '}' {
                let (min, max) = match body.split_once(',') {
                    Some((m, n)) => (
                        m.parse().map_err(|_| Error("bad repetition".into()))?,
                        n.parse().map_err(|_| Error("bad repetition".into()))?,
                    ),
                    None => {
                        let m = body.parse().map_err(|_| Error("bad repetition".into()))?;
                        (m, m)
                    }
                };
                if min > max {
                    return Err(Error("inverted repetition".into()));
                }
                return Ok((min, max));
            }
            body.push(c);
        }
        Err(Error("unterminated repetition".into()))
    }

    pub fn string_regex(pattern: &str) -> Result<RegexStrategy, Error> {
        let mut atoms = Vec::new();
        let mut it = pattern.chars().peekable();
        while let Some(c) = it.next() {
            let chars = match c {
                '[' => {
                    let mut body = String::new();
                    let mut closed = false;
                    let mut prev_escape = false;
                    for c in it.by_ref() {
                        if c == ']' && !prev_escape {
                            closed = true;
                            break;
                        }
                        prev_escape = c == '\\' && !prev_escape;
                        body.push(c);
                    }
                    if !closed {
                        return Err(Error("unterminated character class".into()));
                    }
                    parse_class(&body)?
                }
                '\\' => vec![it.next().ok_or_else(|| Error("dangling escape".into()))?],
                '(' | ')' | '|' | '*' | '+' | '?' | '.' => {
                    return Err(Error(format!(
                        "unsupported regex construct '{c}' (shim supports only literals and [class]{{m,n}})"
                    )));
                }
                c => vec![c],
            };
            let (min, max) = parse_reps(&mut it)?;
            atoms.push(Atom { chars, min, max });
        }
        Ok(RegexStrategy { atoms })
    }
}

/// `proptest::option` — only `of`.
pub mod option {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    #[derive(Debug, Clone)]
    pub struct OptionStrategy<S> {
        inner: S,
    }

    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            // None a quarter of the time, mirroring proptest's default
            // weighting toward Some.
            if rng.below(4) == 0 {
                None
            } else {
                Some(self.inner.generate(rng))
            }
        }
    }
}

pub mod prelude {
    pub use crate::strategy::{any, Arbitrary, BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Asserts a condition inside a `proptest!` body, failing the case (not
/// panicking directly) so the harness can attach the generated inputs.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::format!($($fmt)+),
            ));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `{:?}` == `{:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "{}: `{:?}` == `{:?}`",
            ::std::format!($($fmt)+),
            left,
            right
        );
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: `{:?}` != `{:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left != *right,
            "{}: `{:?}` != `{:?}`",
            ::std::format!($($fmt)+),
            left,
            right
        );
    }};
}

/// Uniform choice among strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(::std::vec![
            $($crate::strategy::Strategy::boxed($arm)),+
        ])
    };
}

/// Declares property tests. Mirrors proptest's surface syntax:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]
///     #[test]
///     fn my_property(x in 0u32..100, v in collection::vec(any::<u8>(), 0..10)) {
///         prop_assert!(x < 100);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_body! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_body! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_body {
    (($config:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let __config = $config;
            let (__cases, __seed) = $crate::test_runner::plan(&__config, stringify!($name));
            let mut __rng = $crate::test_runner::TestRng::from_seed(__seed);
            let mut __done: u32 = 0;
            let mut __attempts: u32 = 0;
            while __done < __cases {
                __attempts += 1;
                if __attempts > __cases.saturating_mul(8) + 64 {
                    panic!(
                        "proptest shim: {} rejected too many cases ({} accepted of {} attempts)",
                        stringify!($name), __done, __attempts
                    );
                }
                let __vals = ($(
                    $crate::strategy::Strategy::generate(&($strat), &mut __rng),
                )+);
                let __desc = ::std::format!("{:#?}", __vals);
                let ($($arg,)+) = __vals;
                let __result: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        $body
                        #[allow(unreachable_code)]
                        ::core::result::Result::Ok(())
                    })();
                match __result {
                    Ok(()) => __done += 1,
                    Err($crate::test_runner::TestCaseError::Reject(_)) => {}
                    Err($crate::test_runner::TestCaseError::Fail(msg)) => panic!(
                        "proptest case failed: {}\n[{} case {}/{} | seed {:#x}] inputs:\n{}",
                        msg, stringify!($name), __done, __cases, __seed, __desc
                    ),
                }
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::test_runner::TestRng;

    #[test]
    fn ranges_tuples_and_vecs_generate_in_bounds() {
        let strat = (
            1u32..10,
            crate::collection::vec(crate::prop_oneof![Just(0u8), 1u8..=9], 3..6),
        );
        let mut rng = TestRng::from_seed(99);
        for _ in 0..500 {
            let (x, v) = strat.generate(&mut rng);
            assert!((1..10).contains(&x));
            assert!((3..6).contains(&v.len()));
            assert!(v.iter().all(|&b| b < 10));
        }
    }

    #[test]
    fn string_regex_matches_class_and_reps() {
        let strat = crate::string::string_regex("[a-zA-Z0-9_.\\-]{1,40}").unwrap();
        let mut rng = TestRng::from_seed(7);
        for _ in 0..500 {
            let s = strat.generate(&mut rng);
            assert!((1..=40).contains(&s.len()));
            assert!(s
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '.' || c == '-'));
        }
    }

    #[test]
    fn string_regex_rejects_unsupported() {
        assert!(crate::string::string_regex("(a|b)*").is_err());
    }

    #[test]
    fn filter_and_map_compose() {
        let strat = (0u32..100)
            .prop_map(|x| x * 2)
            .prop_filter("nonzero", |&x| x != 0);
        let mut rng = TestRng::from_seed(3);
        for _ in 0..200 {
            let x = strat.generate(&mut rng);
            assert!(x % 2 == 0 && x != 0 && x < 200);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

        /// The macro itself: config override, doc comments, multiple args.
        #[test]
        fn macro_smoke(x in 0u64..50, flag in any::<bool>(), v in crate::collection::vec(0u8..4, 8)) {
            if flag {
                return Ok(());
            }
            prop_assert!(x < 50);
            prop_assert_eq!(v.len(), 8);
            prop_assert_ne!(v.len(), 9, "length {} unexpected", v.len());
        }
    }
}
