//! The `lfs-repro/metrics/v1` report: the one JSON schema every benchmark
//! binary and example emits (as `BENCH_<name>.json`).
//!
//! Shape (see EXPERIMENTS.md for the full field reference):
//!
//! ```json
//! {
//!   "schema": "lfs-repro/metrics/v1",
//!   "name": "fig3_small_file",
//!   "runs": [
//!     {
//!       "label": "lfs/create",
//!       "fs": "lfs",
//!       "clock_ns": 123456789,
//!       "counters": { "disk.seek_ns": 0, ... },
//!       "gauges": { ... },
//!       "histograms": {
//!         "op.create": { "unit": "ns", "bucket_bounds_ns": [...],
//!                         "counts": [...], "count": 9, "sum": 99,
//!                         "min": 3, "max": 41 }
//!       },
//!       "events": [ { "at_ns": 5, "kind": "checkpoint", "detail": "serial=1" } ]
//!     }
//!   ]
//! }
//! ```

use std::io::Write;
use std::path::PathBuf;

use crate::json::JsonWriter;
use crate::{Registry, Snapshot, LATENCY_BUCKETS_NS};

/// Schema identifier embedded in every report.
pub const SCHEMA: &str = "lfs-repro/metrics/v1";

/// One measured run: a labelled registry snapshot at a known virtual time.
#[derive(Debug, Clone)]
pub struct Run {
    /// Human-meaningful run label, e.g. `"lfs/create"` or `"ffs"`.
    pub label: String,
    /// Which file system produced the run: `"lfs"`, `"ffs"`, or `"-"`.
    pub fs: String,
    /// Virtual clock at snapshot time.
    pub clock_ns: u64,
    pub snapshot: Snapshot,
}

/// A full metrics report, serialisable to the v1 schema.
#[derive(Debug, Clone)]
pub struct Report {
    /// Report name; also names the output file (`BENCH_<name>.json`).
    pub name: String,
    pub runs: Vec<Run>,
}

impl Report {
    pub fn new(name: impl Into<String>) -> Self {
        Report {
            name: name.into(),
            runs: Vec::new(),
        }
    }

    /// Snapshots `registry` as one labelled run.
    pub fn add_run(
        &mut self,
        label: impl Into<String>,
        fs: impl Into<String>,
        clock_ns: u64,
        registry: &Registry,
    ) {
        self.runs.push(Run {
            label: label.into(),
            fs: fs.into(),
            clock_ns,
            snapshot: registry.snapshot(),
        });
    }

    /// Renders the report as schema-v1 JSON.
    pub fn to_json(&self) -> String {
        let mut w = JsonWriter::new();
        w.begin_object();
        w.key("schema").string(SCHEMA);
        w.key("name").string(&self.name);
        w.key("runs").begin_array();
        for run in &self.runs {
            w.begin_object();
            w.key("label").string(&run.label);
            w.key("fs").string(&run.fs);
            w.key("clock_ns").u64(run.clock_ns);

            w.key("counters").begin_object();
            for (name, value) in &run.snapshot.counters {
                w.key(name).u64(*value);
            }
            w.end_object();

            w.key("gauges").begin_object();
            for (name, value) in &run.snapshot.gauges {
                w.key(name).u64(*value);
            }
            w.end_object();

            w.key("histograms").begin_object();
            for (name, hist) in &run.snapshot.hists {
                w.key(name).begin_object();
                w.key("unit").string("ns");
                w.key("bucket_bounds_ns").begin_array();
                for bound in LATENCY_BUCKETS_NS {
                    w.u64(*bound);
                }
                w.end_array();
                w.key("counts").begin_array();
                for count in &hist.counts {
                    w.u64(*count);
                }
                w.end_array();
                w.key("count").u64(hist.count);
                w.key("sum").u64(hist.sum);
                w.key("min").u64(hist.min);
                w.key("max").u64(hist.max);
                w.end_object();
            }
            w.end_object();

            w.key("events").begin_array();
            for event in &run.snapshot.events {
                w.begin_object();
                w.key("at_ns").u64(event.at_ns);
                w.key("kind").string(event.kind);
                w.key("detail").string(&event.detail);
                w.end_object();
            }
            w.end_array();

            w.end_object();
        }
        w.end_array();
        w.end_object();
        let mut json = w.into_string();
        json.push('\n');
        json
    }

    /// Writes `BENCH_<name>.json` into `$BENCH_OUT_DIR` (default: the
    /// current directory) and returns the path.
    pub fn write_bench_json(&self) -> std::io::Result<PathBuf> {
        let dir = std::env::var_os("BENCH_OUT_DIR")
            .map(PathBuf::from)
            .unwrap_or_else(|| PathBuf::from("."));
        let path = dir.join(format!("BENCH_{}.json", self.name));
        let mut file = std::fs::File::create(&path)?;
        file.write_all(self.to_json().as_bytes())?;
        Ok(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_json_has_schema_and_instruments() {
        let reg = Registry::new();
        reg.counter("disk.reads").add(4);
        reg.gauge("cleaner.live_ratio_pct").set(37);
        reg.hist("op.create").record(5_000);
        reg.event(42, "checkpoint", "serial=1");

        let mut report = Report::new("unit_test");
        report.add_run("lfs", "lfs", 1_000, &reg);
        let json = report.to_json();

        assert!(json.contains("\"schema\": \"lfs-repro/metrics/v1\""));
        assert!(json.contains("\"disk.reads\": 4"));
        assert!(json.contains("\"cleaner.live_ratio_pct\": 37"));
        assert!(json.contains("\"op.create\""));
        assert!(json.contains("\"kind\": \"checkpoint\""));
        // The histogram advertises the shared bucket ladder.
        assert!(json.contains("\"bucket_bounds_ns\""));
        // Counts vector covers every bucket plus overflow.
        let counts_len = LATENCY_BUCKETS_NS.len() + 1;
        let run = &report.runs[0];
        assert_eq!(run.snapshot.hists[0].1.counts.len(), counts_len);
    }

    #[test]
    fn write_bench_json_lands_in_out_dir() {
        let dir = std::env::temp_dir().join("obs_report_test");
        std::fs::create_dir_all(&dir).unwrap();
        std::env::set_var("BENCH_OUT_DIR", &dir);
        let report = Report::new("tmp_probe");
        let path = report.write_bench_json().unwrap();
        std::env::remove_var("BENCH_OUT_DIR");
        assert!(path.ends_with("BENCH_tmp_probe.json"));
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.contains("lfs-repro/metrics/v1"));
        std::fs::remove_file(path).ok();
    }
}
