//! Unified observability for the reproduction.
//!
//! Every layer — the simulated disk, the block cache, LFS proper (log,
//! cleaner, recovery), and the FFS baseline — reports through one
//! [`Registry`] per file-system stack:
//!
//! * [`Counter`]s are monotone event counts (blocks written, cache hits,
//!   cleaner copies, nanoseconds of seek time...).
//! * [`Gauge`]s are last-written values (live-byte ratios, recovered
//!   chunk counts).
//! * [`Hist`]s are fixed-bucket latency histograms over the **virtual
//!   clock** — wall time never appears in metrics, so distributions are
//!   bit-for-bit reproducible across runs.
//! * The [event ring](Registry::event) keeps the last N structured
//!   events (segment sealed, checkpoint written, cleaner pass, crash,
//!   recovery) for debugging failed tests.
//!
//! A [`report::Report`] serialises one or more registries to the
//! `lfs-repro/metrics/v1` JSON schema that every benchmark binary emits
//! as `BENCH_<name>.json` (see EXPERIMENTS.md). JSON is hand-written
//! because the build environment is offline and has no serde.
//!
//! Instruments are cheap `Arc` handles: a component grabs its instruments
//! once and updates them lock-free (counters/gauges) or under a short
//! mutex (histograms); the registry itself is only locked at
//! registration and snapshot time.

pub mod json;
pub mod report;

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Histogram bucket upper bounds in nanoseconds: a 1-2-5 ladder from 1 µs
/// to 50 s. A value lands in the first bucket whose bound it does not
/// exceed; larger values land in the overflow slot.
pub const LATENCY_BUCKETS_NS: &[u64] = &[
    1_000,
    2_000,
    5_000,
    10_000,
    20_000,
    50_000,
    100_000,
    200_000,
    500_000,
    1_000_000,
    2_000_000,
    5_000_000,
    10_000_000,
    20_000_000,
    50_000_000,
    100_000_000,
    200_000_000,
    500_000_000,
    1_000_000_000,
    2_000_000_000,
    5_000_000_000,
    10_000_000_000,
    20_000_000_000,
    50_000_000_000,
];

/// Default capacity of the structured event ring.
pub const EVENT_RING_CAPACITY: usize = 1024;

/// A monotone event count. `Clone` shares the underlying cell.
#[derive(Debug, Clone, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    pub fn new() -> Self {
        Self::default()
    }

    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    #[inline]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A last-written value. `Clone` shares the underlying cell.
#[derive(Debug, Clone, Default)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    pub fn new() -> Self {
        Self::default()
    }

    #[inline]
    pub fn set(&self, value: u64) {
        self.0.store(value, Ordering::Relaxed);
    }

    #[inline]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

#[derive(Debug)]
struct HistData {
    /// One slot per `LATENCY_BUCKETS_NS` bound, plus an overflow slot.
    counts: Vec<u64>,
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for HistData {
    fn default() -> Self {
        HistData {
            counts: vec![0; LATENCY_BUCKETS_NS.len() + 1],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }
}

/// A fixed-bucket histogram of nanosecond durations. `Clone` shares the
/// underlying cells.
#[derive(Debug, Clone, Default)]
pub struct Hist(Arc<Mutex<HistData>>);

impl Hist {
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one observation (nanoseconds).
    pub fn record(&self, value_ns: u64) {
        let mut data = self.0.lock().unwrap();
        let bucket = LATENCY_BUCKETS_NS.partition_point(|&bound| value_ns > bound);
        data.counts[bucket] += 1;
        data.count += 1;
        data.sum = data.sum.saturating_add(value_ns);
        data.min = data.min.min(value_ns);
        data.max = data.max.max(value_ns);
    }

    /// Total number of observations.
    pub fn count(&self) -> u64 {
        self.0.lock().unwrap().count
    }

    /// Sum of all observations (ns).
    pub fn sum(&self) -> u64 {
        self.0.lock().unwrap().sum
    }

    /// Folds another histogram's observations into this one.
    pub fn merge_from(&self, other: &Hist) {
        if Arc::ptr_eq(&self.0, &other.0) {
            return;
        }
        let other = other.0.lock().unwrap();
        let mut data = self.0.lock().unwrap();
        for (slot, n) in data.counts.iter_mut().zip(other.counts.iter()) {
            *slot += n;
        }
        data.count += other.count;
        data.sum += other.sum;
        data.min = data.min.min(other.min);
        data.max = data.max.max(other.max);
    }

    fn snapshot(&self) -> HistSnapshot {
        let data = self.0.lock().unwrap();
        HistSnapshot {
            counts: data.counts.clone(),
            count: data.count,
            sum: data.sum,
            min: if data.count == 0 { 0 } else { data.min },
            max: data.max,
        }
    }
}

/// A point-in-time copy of one histogram.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistSnapshot {
    /// Per-bucket counts; index i pairs with `LATENCY_BUCKETS_NS[i]`,
    /// the final slot is overflow.
    pub counts: Vec<u64>,
    pub count: u64,
    pub sum: u64,
    pub min: u64,
    pub max: u64,
}

/// One structured event from the bounded ring.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Event {
    /// Virtual time the event was recorded.
    pub at_ns: u64,
    /// Stable machine-readable kind, e.g. `"segment_sealed"`.
    pub kind: &'static str,
    /// Free-form human-readable detail, e.g. `"seg=12 blocks=254"`.
    pub detail: String,
}

#[derive(Debug, Default)]
struct EventRing {
    events: Vec<Event>,
    /// Index of the oldest event once the ring has wrapped.
    head: usize,
    dropped: u64,
}

impl EventRing {
    fn push(&mut self, event: Event) {
        if self.events.len() < EVENT_RING_CAPACITY {
            self.events.push(event);
        } else {
            self.events[self.head] = event;
            self.head = (self.head + 1) % EVENT_RING_CAPACITY;
            self.dropped += 1;
        }
    }

    fn in_order(&self) -> Vec<Event> {
        let mut out = Vec::with_capacity(self.events.len());
        out.extend_from_slice(&self.events[self.head..]);
        out.extend_from_slice(&self.events[..self.head]);
        out
    }
}

#[derive(Debug, Default)]
struct Inner {
    counters: BTreeMap<String, Counter>,
    gauges: BTreeMap<String, Gauge>,
    hists: BTreeMap<String, Hist>,
    events: EventRing,
}

/// The per-stack metrics registry. `Clone` is cheap and shares state, so
/// a file system, its device, and its cache can all hold the same
/// registry.
#[derive(Debug, Clone, Default)]
pub struct Registry {
    inner: Arc<Mutex<Inner>>,
}

impl Registry {
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the counter registered under `name`, creating it if new.
    pub fn counter(&self, name: &str) -> Counter {
        let mut inner = self.inner.lock().unwrap();
        inner.counters.entry(name.to_string()).or_default().clone()
    }

    /// Returns the gauge registered under `name`, creating it if new.
    pub fn gauge(&self, name: &str) -> Gauge {
        let mut inner = self.inner.lock().unwrap();
        inner.gauges.entry(name.to_string()).or_default().clone()
    }

    /// Returns the histogram registered under `name`, creating it if new.
    pub fn hist(&self, name: &str) -> Hist {
        let mut inner = self.inner.lock().unwrap();
        inner.hists.entry(name.to_string()).or_default().clone()
    }

    /// Re-homes a counter into this registry: any count accumulated on
    /// `existing` is carried over, and the returned handle is the
    /// registry's canonical instrument for `name`. Used when a component
    /// built with a private registry is attached to a shared one.
    pub fn adopt_counter(&self, name: &str, existing: &Counter) -> Counter {
        let canonical = self.counter(name);
        if !Arc::ptr_eq(&canonical.0, &existing.0) {
            canonical.add(existing.get());
        }
        canonical
    }

    /// Re-homes a histogram into this registry (see [`adopt_counter`]).
    ///
    /// [`adopt_counter`]: Registry::adopt_counter
    pub fn adopt_hist(&self, name: &str, existing: &Hist) -> Hist {
        let canonical = self.hist(name);
        canonical.merge_from(existing);
        canonical
    }

    /// Re-homes a gauge into this registry (see [`adopt_counter`]): the
    /// canonical gauge takes over the existing gauge's current value.
    ///
    /// [`adopt_counter`]: Registry::adopt_counter
    pub fn adopt_gauge(&self, name: &str, existing: &Gauge) -> Gauge {
        let canonical = self.gauge(name);
        if !Arc::ptr_eq(&canonical.0, &existing.0) {
            canonical.set(existing.get());
        }
        canonical
    }

    /// Appends a structured event to the bounded ring.
    pub fn event(&self, at_ns: u64, kind: &'static str, detail: impl Into<String>) {
        let mut inner = self.inner.lock().unwrap();
        inner.events.push(Event {
            at_ns,
            kind,
            detail: detail.into(),
        });
    }

    /// Returns the ring's events, oldest first.
    pub fn events(&self) -> Vec<Event> {
        self.inner.lock().unwrap().events.in_order()
    }

    /// Number of events evicted from the ring so far.
    pub fn events_dropped(&self) -> u64 {
        self.inner.lock().unwrap().events.dropped
    }

    /// Takes a point-in-time copy of every instrument and the event ring.
    pub fn snapshot(&self) -> Snapshot {
        let inner = self.inner.lock().unwrap();
        Snapshot {
            counters: inner
                .counters
                .iter()
                .map(|(name, c)| (name.clone(), c.get()))
                .collect(),
            gauges: inner
                .gauges
                .iter()
                .map(|(name, g)| (name.clone(), g.get()))
                .collect(),
            hists: inner
                .hists
                .iter()
                .map(|(name, h)| (name.clone(), h.snapshot()))
                .collect(),
            events: inner.events.in_order(),
        }
    }

    /// Renders the event ring as one line per event — the debugging dump
    /// for failed tests.
    pub fn dump_events(&self) -> String {
        let mut out = String::new();
        for event in self.events() {
            out.push_str(&format!(
                "[{:>14.6}s] {:<16} {}\n",
                event.at_ns as f64 / 1e9,
                event.kind,
                event.detail
            ));
        }
        out
    }
}

/// A point-in-time copy of a whole registry, in deterministic (sorted)
/// order.
#[derive(Debug, Clone, Default)]
pub struct Snapshot {
    pub counters: Vec<(String, u64)>,
    pub gauges: Vec<(String, u64)>,
    pub hists: Vec<(String, HistSnapshot)>,
    pub events: Vec<Event>,
}

impl Snapshot {
    /// Looks up a counter by name (0 if absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
            .unwrap_or(0)
    }

    /// Looks up a gauge by name (0 if absent).
    pub fn gauge(&self, name: &str) -> u64 {
        self.gauges
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
            .unwrap_or(0)
    }

    /// Looks up a histogram by name.
    pub fn hist(&self, name: &str) -> Option<&HistSnapshot> {
        self.hists.iter().find(|(n, _)| n == name).map(|(_, h)| h)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_share_state_across_clones() {
        let reg = Registry::new();
        let a = reg.counter("x");
        let b = reg.counter("x");
        a.inc();
        b.add(2);
        assert_eq!(reg.counter("x").get(), 3);
        assert_eq!(reg.snapshot().counter("x"), 3);
    }

    #[test]
    fn hist_buckets_partition_correctly() {
        let hist = Hist::new();
        hist.record(0); // first bucket (<= 1_000)
        hist.record(1_000); // still first bucket (bounds are inclusive)
        hist.record(1_001); // second bucket
        hist.record(u64::MAX); // overflow slot
        let snap = hist.snapshot();
        assert_eq!(snap.counts[0], 2);
        assert_eq!(snap.counts[1], 1);
        assert_eq!(snap.counts[LATENCY_BUCKETS_NS.len()], 1);
        assert_eq!(snap.count, 4);
        assert_eq!(snap.min, 0);
        assert_eq!(snap.max, u64::MAX);
        // Bucket counts always total the observation count.
        assert_eq!(snap.counts.iter().sum::<u64>(), snap.count);
    }

    #[test]
    fn adopt_carries_accumulated_values() {
        let private = Registry::new();
        let counter = private.counter("disk.reads");
        counter.add(7);
        let hist = private.hist("disk.req_ns");
        hist.record(500);

        let shared = Registry::new();
        let counter = shared.adopt_counter("disk.reads", &counter);
        let hist = shared.adopt_hist("disk.req_ns", &hist);
        counter.inc();
        hist.record(700);

        let snap = shared.snapshot();
        assert_eq!(snap.counter("disk.reads"), 8);
        assert_eq!(snap.hist("disk.req_ns").unwrap().count, 2);
        // Adopting into the same registry twice must not double-count.
        let again = shared.adopt_counter("disk.reads", &counter);
        assert_eq!(again.get(), 8);
    }

    #[test]
    fn event_ring_keeps_the_latest_and_counts_drops() {
        let reg = Registry::new();
        for i in 0..(EVENT_RING_CAPACITY as u64 + 10) {
            reg.event(i, "tick", format!("i={i}"));
        }
        let events = reg.events();
        assert_eq!(events.len(), EVENT_RING_CAPACITY);
        assert_eq!(reg.events_dropped(), 10);
        assert_eq!(events[0].at_ns, 10, "oldest surviving event");
        assert_eq!(events.last().unwrap().at_ns, EVENT_RING_CAPACITY as u64 + 9);
        assert!(reg.dump_events().contains("tick"));
    }

    #[test]
    fn snapshot_orders_names_deterministically() {
        let reg = Registry::new();
        reg.counter("zeta").inc();
        reg.counter("alpha").inc();
        let snap = reg.snapshot();
        let names: Vec<&str> = snap.counters.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, ["alpha", "zeta"]);
    }
}
