//! A minimal JSON writer. The build environment is offline (no serde),
//! and the metrics schema only needs objects, arrays, strings, and u64 /
//! f64 numbers, so a push-down string builder is plenty.

/// Escapes a string per RFC 8259 and wraps it in quotes.
pub fn quote(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Builder producing pretty-printed (2-space indented) JSON.
///
/// Call sequence mirrors the document: `begin_object`, then alternating
/// `key(..)` and values (`string`/`u64`/`f64`/nested containers), then
/// `end_object`; arrays take bare values between `begin_array`/`end_array`.
pub struct JsonWriter {
    out: String,
    indent: usize,
    /// Per-container: whether it already holds an element.
    has_elements: Vec<bool>,
    /// True right after `key()`: the next value continues that line.
    pending_value: bool,
}

impl Default for JsonWriter {
    fn default() -> Self {
        Self::new()
    }
}

impl JsonWriter {
    pub fn new() -> Self {
        JsonWriter {
            out: String::new(),
            indent: 0,
            has_elements: vec![false],
            pending_value: false,
        }
    }

    pub fn into_string(self) -> String {
        self.out
    }

    fn newline(&mut self) {
        self.out.push('\n');
        for _ in 0..self.indent {
            self.out.push_str("  ");
        }
    }

    /// Emits separators before an element (value or key).
    fn before_element(&mut self) {
        if self.pending_value {
            // Continue the `"key": ` line.
            self.pending_value = false;
            return;
        }
        if let Some(has) = self.has_elements.last_mut() {
            if *has {
                self.out.push(',');
            }
            *has = true;
        }
        if self.indent > 0 {
            self.newline();
        }
    }

    fn open(&mut self, bracket: char) {
        self.before_element();
        self.out.push(bracket);
        self.indent += 1;
        self.has_elements.push(false);
    }

    fn close(&mut self, bracket: char) {
        let had_elements = self.has_elements.pop().unwrap_or(false);
        self.indent -= 1;
        if had_elements {
            self.newline();
        }
        self.out.push(bracket);
    }

    pub fn begin_object(&mut self) -> &mut Self {
        self.open('{');
        self
    }

    pub fn end_object(&mut self) -> &mut Self {
        self.close('}');
        self
    }

    pub fn begin_array(&mut self) -> &mut Self {
        self.open('[');
        self
    }

    pub fn end_array(&mut self) -> &mut Self {
        self.close(']');
        self
    }

    /// Writes `"key": `; the next value call completes the member.
    pub fn key(&mut self, key: &str) -> &mut Self {
        self.before_element();
        self.out.push_str(&quote(key));
        self.out.push_str(": ");
        self.pending_value = true;
        self
    }

    pub fn string(&mut self, value: &str) -> &mut Self {
        self.before_element();
        self.out.push_str(&quote(value));
        self
    }

    pub fn u64(&mut self, value: u64) -> &mut Self {
        self.before_element();
        self.out.push_str(&value.to_string());
        self
    }

    pub fn f64(&mut self, value: f64) -> &mut Self {
        self.before_element();
        if value.is_finite() {
            self.out.push_str(&format!("{value}"));
        } else {
            self.out.push_str("null");
        }
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writes_nested_structures() {
        let mut w = JsonWriter::new();
        w.begin_object();
        w.key("name").string("bench \"one\"");
        w.key("count").u64(3);
        w.key("items").begin_array();
        w.u64(1).u64(2);
        w.begin_object().key("deep").f64(0.5).end_object();
        w.end_array();
        w.key("empty").begin_object().end_object();
        w.end_object();
        let text = w.into_string();
        assert_eq!(
            text,
            "{\n  \"name\": \"bench \\\"one\\\"\",\n  \"count\": 3,\n  \"items\": [\n    1,\n    2,\n    {\n      \"deep\": 0.5\n    }\n  ],\n  \"empty\": {}\n}"
        );
    }

    #[test]
    fn quote_escapes_control_characters() {
        assert_eq!(quote("a\u{1}b"), "\"a\\u0001b\"");
        assert_eq!(quote("tab\tnl\n"), "\"tab\\tnl\\n\"");
    }
}
