//! Offline stand-in for the `criterion` benchmark harness.
//!
//! The build environment has no network access, so the workspace maps the
//! `criterion` dependency name to this crate. It keeps the criterion 0.5
//! API shape the benches use (`criterion_group!`, `criterion_main!`,
//! `Criterion`, benchmark groups, `iter`, `iter_batched_ref`, `Throughput`,
//! `BatchSize`, `black_box`) but replaces the statistical machinery with a
//! simple calibrated wall-clock loop: enough to run `cargo bench` and get
//! a rough ns/iter figure, and to compile under `cargo test`.

use std::time::{Duration, Instant};

/// Opaque value barrier, mirroring `criterion::black_box`.
#[inline]
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// How batched inputs are sized; only the variants the benches name.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

impl BatchSize {
    fn batch_len(self) -> u64 {
        match self {
            BatchSize::SmallInput => 64,
            BatchSize::LargeInput => 8,
            BatchSize::PerIteration => 1,
        }
    }
}

/// Throughput annotation attached to a group; recorded for display only.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    Bytes(u64),
    Elements(u64),
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    /// Total measured time across all iterations.
    elapsed: Duration,
    /// Number of iterations measured.
    iters: u64,
    /// Measurement budget per benchmark.
    budget: Duration,
}

impl Bencher {
    fn new(budget: Duration) -> Self {
        Bencher {
            elapsed: Duration::ZERO,
            iters: 0,
            budget,
        }
    }

    /// Times `routine` repeatedly until the measurement budget is spent.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up and calibration: find an iteration count that takes a
        // meaningful slice of the budget.
        let start = Instant::now();
        black_box(routine());
        let one = start.elapsed().max(Duration::from_nanos(1));
        let per_batch = ((self.budget.as_nanos() / 20).max(1) / one.as_nanos().max(1)).max(1) as u64;

        let deadline = Instant::now() + self.budget;
        while Instant::now() < deadline {
            let t0 = Instant::now();
            for _ in 0..per_batch {
                black_box(routine());
            }
            self.elapsed += t0.elapsed();
            self.iters += per_batch;
        }
        if self.iters == 0 {
            self.elapsed = one;
            self.iters = 1;
        }
    }

    /// Times `routine` against a mutable input rebuilt by `setup`, setup
    /// excluded from measurement — mirrors `iter_batched_ref`.
    pub fn iter_batched_ref<I, O, S, R>(&mut self, mut setup: S, mut routine: R, size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(&mut I) -> O,
    {
        let per_batch = size.batch_len();
        let deadline = Instant::now() + self.budget;
        loop {
            let mut inputs: Vec<I> = (0..per_batch).map(|_| setup()).collect();
            let t0 = Instant::now();
            for input in &mut inputs {
                black_box(routine(input));
            }
            self.elapsed += t0.elapsed();
            self.iters += per_batch;
            if Instant::now() >= deadline {
                break;
            }
        }
    }

    fn ns_per_iter(&self) -> f64 {
        if self.iters == 0 {
            return 0.0;
        }
        self.elapsed.as_nanos() as f64 / self.iters as f64
    }
}

fn report(id: &str, throughput: Option<Throughput>, bencher: &Bencher) {
    let ns = bencher.ns_per_iter();
    let time = if ns >= 1_000_000.0 {
        format!("{:.3} ms", ns / 1_000_000.0)
    } else if ns >= 1_000.0 {
        format!("{:.3} us", ns / 1_000.0)
    } else {
        format!("{ns:.1} ns")
    };
    let rate = match throughput {
        Some(Throughput::Bytes(bytes)) if ns > 0.0 => {
            let mbps = bytes as f64 / (ns / 1e9) / 1e6;
            format!("  {mbps:.1} MB/s")
        }
        Some(Throughput::Elements(n)) if ns > 0.0 => {
            let eps = n as f64 / (ns / 1e9);
            format!("  {eps:.0} elem/s")
        }
        _ => String::new(),
    };
    println!("{id:<40} {time:>12}/iter{rate}   ({} iters)", bencher.iters);
}

/// Top-level harness handle, mirroring `criterion::Criterion`.
pub struct Criterion {
    budget: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        // Keep runs quick: this shim is about producing a rough number,
        // not publication-grade statistics.
        let ms = std::env::var("CRITERION_SHIM_BUDGET_MS")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(200u64);
        Criterion {
            budget: Duration::from_millis(ms),
        }
    }
}

impl Criterion {
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut bencher = Bencher::new(self.budget);
        f(&mut bencher);
        report(&id, None, &bencher);
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
        }
    }
}

/// A named group of related benchmarks, mirroring `BenchmarkGroup`.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = format!("{}/{}", self.name, id.into());
        let mut bencher = Bencher::new(self.criterion.budget);
        f(&mut bencher);
        report(&id, self.throughput, &bencher);
        self
    }

    pub fn finish(self) {}
}

/// Mirrors `criterion_group!`: builds a function that runs each benchmark.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Mirrors `criterion_main!`: emits `main` invoking each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
