#![warn(missing_docs)]

//! Umbrella crate for the LFS Storage Manager reproduction.
//!
//! Re-exports the workspace crates so examples and integration tests can
//! depend on a single package.

pub use block_cache;
pub use ffs_baseline;
pub use lfs_core;
pub use obs;
pub use sim_disk;
pub use vfs;
pub use workload;
