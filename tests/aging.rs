//! Long-horizon "aging" test — a cheap stand-in for the paper's closing
//! concern ("the real test of a file system is its performance over
//! months and years of use"): many mount generations of churn, some
//! ending in clean syncs and some in crashes, with full verification
//! after every generation.

use std::collections::BTreeMap;

use lfs_repro::lfs_core::{Lfs, LfsConfig};
use lfs_repro::sim_disk::{Clock, CrashPlan, DiskGeometry, SimDisk};
use lfs_repro::vfs::{FileSystem, FsError};
use lfs_repro::workload::payload;

const DISK_SECTORS: u64 = 4096; // 2 MB: generations of churn must trigger cleaning.

#[test]
fn twelve_generations_of_churn_and_crashes() {
    let geometry = DiskGeometry::tiny_test(DISK_SECTORS);
    // Ground truth across generations: what must exist on disk.
    let mut truth: BTreeMap<String, Vec<u8>> = BTreeMap::new();

    // Generation 0: format.
    let disk = SimDisk::new(geometry.clone(), Clock::new());
    let clock = disk.clock().clone();
    let fs = Lfs::format(disk, LfsConfig::small_test(), clock).unwrap();
    let mut image = fs.into_device().into_image();
    let mut total_cleaned = 0u64;

    for generation in 0u64..12 {
        let crash_this_time = generation % 3 == 2;
        let mut disk = SimDisk::from_image(geometry.clone(), Clock::new(), image);
        if crash_this_time {
            // Crash somewhere inside this generation's work.
            disk.arm_crash(CrashPlan::drop_at(40 + generation * 7));
        }
        let clock = disk.clock().clone();
        let mut fs = Lfs::mount(disk, LfsConfig::small_test(), clock)
            .unwrap_or_else(|e| panic!("generation {generation}: mount failed: {e}"));

        // Verify everything the previous generations synced.
        for (path, data) in &truth {
            match fs.read_file(path) {
                Ok(read) => assert_eq!(&read, data, "generation {generation}: {path} corrupted"),
                Err(e) => panic!("generation {generation}: {path} lost: {e}"),
            }
        }
        let report = fs.fsck().unwrap();
        assert!(report.is_clean(), "generation {generation}:\n{report}");

        // This generation's churn: overwrite some inherited files,
        // delete others, add new ones. Committed to `truth` only if the
        // final sync succeeds (crash generations stop partway).
        let staged = truth.clone();
        let mut work = || -> Result<BTreeMap<String, Vec<u8>>, FsError> {
            let mut staged = staged.clone();
            let keys: Vec<String> = staged.keys().cloned().collect();
            for (i, path) in keys.iter().enumerate() {
                if i % 3 == 0 {
                    fs.unlink(path)?;
                    staged.remove(path);
                } else if i % 3 == 1 {
                    let ino = fs.lookup(path)?;
                    fs.truncate(ino, 0)?;
                    let data = payload(generation * 1000 + i as u64, 9_000);
                    let mut written = 0;
                    while written < data.len() {
                        written += fs.write_at(ino, written as u64, &data[written..])?;
                    }
                    staged.insert(path.clone(), data);
                }
            }
            for i in 0..8u64 {
                let path = format!("/g{generation:02}f{i}");
                let data = payload(generation * 100 + i, 6_000 + (i as usize) * 1_500);
                fs.write_file(&path, &data)?;
                staged.insert(path, data);
            }
            fs.sync()?;
            Ok(staged)
        };
        match work() {
            Ok(new_truth) => {
                truth = new_truth;
            }
            Err(FsError::Io(_)) => {
                // Crashed mid-generation: `truth` keeps the previous
                // committed state; recovery may keep more, never less.
            }
            Err(e) => panic!("generation {generation}: {e}"),
        }
        total_cleaned += fs.stats().segments_cleaned;
        image = fs.into_device().into_image();
    }

    assert!(
        !truth.is_empty(),
        "the volume must carry state across generations"
    );
    assert!(
        total_cleaned > 0,
        "twelve generations on a 4 MB disk must exercise the cleaner"
    );
}
