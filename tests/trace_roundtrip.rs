//! Trace record/replay across implementations: a trace captured on one
//! file system replays on the others to a structurally identical tree.

use std::sync::Arc;

use lfs_repro::ffs_baseline::{Ffs, FfsConfig};
use lfs_repro::lfs_core::{Lfs, LfsConfig};
use lfs_repro::sim_disk::{Clock, DiskGeometry, SimDisk};
use lfs_repro::vfs::model::ModelFs;
use lfs_repro::vfs::{FileKind, FileSystem};
use lfs_repro::workload::office::{run as office_run, OfficeSpec};
use lfs_repro::workload::trace::{from_text, replay, to_text, TracingFs};

/// Structural snapshot: (path, kind, size) — replayed traces regenerate
/// payloads from seeds, so sizes (not bytes) must match.
fn skeleton<F: FileSystem>(fs: &mut F) -> Vec<(String, FileKind, u64)> {
    let mut out = Vec::new();
    let mut stack = vec![String::from("/")];
    while let Some(dir) = stack.pop() {
        for entry in fs.readdir(&dir).unwrap() {
            let path = if dir == "/" {
                format!("/{}", entry.name)
            } else {
                format!("{dir}/{}", entry.name)
            };
            let size = fs.stat(entry.ino).unwrap().size;
            match entry.kind {
                FileKind::Regular => out.push((path, FileKind::Regular, size)),
                FileKind::Directory => {
                    out.push((path.clone(), FileKind::Directory, 0));
                    stack.push(path);
                }
            }
        }
    }
    out.sort();
    out
}

#[test]
fn office_trace_replays_identically_everywhere() {
    // Record on LFS.
    let clock = Clock::new();
    let disk = SimDisk::new(DiskGeometry::tiny_test(65_536), Arc::clone(&clock));
    let lfs = Lfs::format(disk, LfsConfig::small_test(), clock).unwrap();
    let mut traced = TracingFs::new(lfs);
    office_run(&mut traced, &OfficeSpec::scaled(1_200, 40)).unwrap();
    let (mut lfs, ops) = traced.finish();
    let reference = skeleton(&mut lfs);
    assert!(!reference.is_empty());

    // Serialise through text (exercising the parser on a large trace).
    let text = to_text(&ops);
    let parsed = from_text(&text).unwrap();
    assert_eq!(parsed.len(), ops.len());

    // Replay on the model.
    let mut model = ModelFs::new();
    let outcome = replay(&mut model, &parsed);
    assert_eq!(outcome.failed, 0, "model replay must succeed entirely");
    assert_eq!(skeleton(&mut model), reference, "model skeleton diverged");

    // Replay on FFS.
    let clock = Clock::new();
    let disk = SimDisk::new(DiskGeometry::tiny_test(65_536), Arc::clone(&clock));
    let mut ffs = Ffs::format(disk, FfsConfig::small_test(), clock).unwrap();
    let outcome = replay(&mut ffs, &parsed);
    assert_eq!(outcome.failed, 0, "FFS replay must succeed entirely");
    assert_eq!(skeleton(&mut ffs), reference, "FFS skeleton diverged");
    assert!(ffs.fsck().unwrap().is_clean());

    // Replay on a second LFS: full fidelity including fsck.
    let clock = Clock::new();
    let disk = SimDisk::new(DiskGeometry::tiny_test(65_536), Arc::clone(&clock));
    let mut lfs2 = Lfs::format(disk, LfsConfig::small_test(), clock).unwrap();
    let outcome = replay(&mut lfs2, &parsed);
    assert_eq!(outcome.failed, 0);
    assert_eq!(skeleton(&mut lfs2), reference);
    assert!(lfs2.fsck().unwrap().is_clean());
}

#[test]
fn tracing_wrapper_is_transparent() {
    // The wrapper must not change observable behaviour.
    let spec = OfficeSpec::scaled(600, 25);
    let clock = Clock::new();
    let disk = SimDisk::new(DiskGeometry::tiny_test(65_536), Arc::clone(&clock));
    let plain = Lfs::format(disk, LfsConfig::small_test(), clock).unwrap();
    let mut traced = TracingFs::new(plain);
    let traced_outcome = office_run(&mut traced, &spec).unwrap();

    let clock = Clock::new();
    let disk = SimDisk::new(DiskGeometry::tiny_test(65_536), Arc::clone(&clock));
    let mut plain = Lfs::format(disk, LfsConfig::small_test(), clock).unwrap();
    let plain_outcome = office_run(&mut plain, &spec).unwrap();

    assert_eq!(traced_outcome, plain_outcome);
    let (mut inner, ops) = traced.finish();
    assert!(!ops.is_empty());
    assert_eq!(skeleton(&mut inner), skeleton(&mut plain));
}
