//! Crash injection during cleaner activity.
//!
//! The most delicate window in the whole design: the cleaner has copied
//! live blocks out of a segment, the relocations are partially written,
//! and the checkpoint that would commit them has not landed. A crash
//! anywhere in that window must recover to a consistent volume in which
//! every previously synced file still reads back intact — that is what
//! the CleanPending state exists to guarantee.

use std::sync::Arc;

use lfs_repro::lfs_core::{Lfs, LfsConfig};
use lfs_repro::sim_disk::{Clock, CrashPlan, DiskGeometry, SimDisk};
use lfs_repro::vfs::{FileSystem, FsError};

const DISK_SECTORS: u64 = 2048; // 1 MB: cleaning is unavoidable.

/// Files known durable at the crash: (path, contents).
type DurableSet = Vec<(String, Vec<u8>)>;

/// Churn that forces continuous cleaning. Returns (path, contents) for
/// every file that was synced and never subsequently modified/deleted.
fn churn(fs: &mut Lfs<SimDisk>) -> DurableSet {
    let mut durable: DurableSet = Vec::new();
    let blob_for = |round: usize| vec![(round % 251) as u8 + 1; 20_000];
    let run =
        |fs: &mut Lfs<SimDisk>, durable: &mut Vec<(String, Vec<u8>)>| -> Result<(), FsError> {
            for round in 0..60 {
                let slot = round % 4;
                let path = format!("/blob{slot}");
                if round >= 4 {
                    fs.unlink(&path)?;
                    durable.retain(|(p, _)| p != &path);
                }
                let data = blob_for(round);
                fs.write_file(&path, &data)?;
                if round % 3 == 2 {
                    fs.sync()?;
                    // Everything currently live is durable now.
                    durable.retain(|(p, _)| p != &path);
                    durable.push((path.clone(), data));
                    durable.dedup_by(|a, b| a.0 == b.0);
                }
            }
            Ok(())
        };
    // Stop quietly at the crash.
    let _ = run(fs, &mut durable);
    durable
}

fn run_with_crash(crash_at: u64) -> Option<(Vec<u8>, DurableSet)> {
    let clock = Clock::new();
    let mut disk = SimDisk::new(DiskGeometry::tiny_test(DISK_SECTORS), Arc::clone(&clock));
    disk.arm_crash(CrashPlan::drop_at(crash_at));
    let mut fs = Lfs::format(disk, LfsConfig::small_test(), clock).ok()?;
    let mut durable = Vec::new();
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        durable = churn(&mut fs);
    }));
    let _ = result;
    // Only count files as durable if their last sync completed BEFORE the
    // crash; `churn` already stops adding at the first error.
    Some((fs.into_device().into_image(), durable))
}

#[test]
fn crash_sweep_through_cleaning_activity() {
    // A full run to size the write stream and confirm cleaning happened.
    let clock = Clock::new();
    let disk = SimDisk::new(DiskGeometry::tiny_test(DISK_SECTORS), Arc::clone(&clock));
    let mut fs = Lfs::format(disk, LfsConfig::small_test(), clock).unwrap();
    churn(&mut fs);
    assert!(
        fs.stats().segments_cleaned > 0,
        "the scenario must exercise the cleaner"
    );
    let total_writes = fs.device().stats().writes;

    let mut tested = 0;
    for crash_at in (0..total_writes + 2).step_by(5) {
        let Some((image, durable)) = run_with_crash(crash_at) else {
            continue;
        };
        let disk = SimDisk::from_image(DiskGeometry::tiny_test(DISK_SECTORS), Clock::new(), image);
        let clock = disk.clock().clone();
        let mut fs = Lfs::mount(disk, LfsConfig::small_test(), clock)
            .unwrap_or_else(|e| panic!("crash at {crash_at}: mount failed: {e}"));
        let report = fs.fsck().unwrap();
        assert!(
            report.is_clean(),
            "crash at {crash_at}: inconsistent after recovery:\n{report}"
        );
        for (path, data) in &durable {
            match fs.read_file(path) {
                Ok(read) => assert_eq!(
                    &read, data,
                    "crash at {crash_at}: {path} corrupted by cleaning+crash"
                ),
                Err(e) => panic!("crash at {crash_at}: durable {path} lost: {e}"),
            }
        }
        // The recovered volume keeps working under further churn.
        fs.write_file("/post", &vec![0xAB; 5_000]).unwrap();
        fs.sync().unwrap();
        assert_eq!(fs.read_file("/post").unwrap(), vec![0xAB; 5_000]);
        tested += 1;
    }
    assert!(tested > 30, "sweep covered only {tested} crash points");
}
