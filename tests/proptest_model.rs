//! Property-based model checking: random operation sequences must leave
//! LFS, FFS, and the in-memory reference model in identical observable
//! states, and both real file systems internally consistent.

use std::sync::Arc;

use proptest::prelude::*;

use lfs_repro::ffs_baseline::{Ffs, FfsConfig};
use lfs_repro::lfs_core::{Lfs, LfsConfig};
use lfs_repro::sim_disk::{Clock, DiskGeometry, SimDisk};
use lfs_repro::vfs::model::ModelFs;
use lfs_repro::vfs::{FileKind, FileSystem, FsError};

/// The operations the property explores.
#[derive(Debug, Clone)]
enum Op {
    Create(usize),
    Mkdir(usize),
    Unlink(usize),
    Rmdir(usize),
    Write {
        path: usize,
        offset: u16,
        len: u16,
        fill: u8,
    },
    Truncate {
        path: usize,
        size: u16,
    },
    Rename(usize, usize),
    Link(usize, usize),
    ReadBack(usize),
    Sync,
}

/// A small fixed path pool spanning two directory levels.
fn paths() -> Vec<&'static str> {
    vec![
        "/a",
        "/b",
        "/c",
        "/dir1",
        "/dir2",
        "/dir1/x",
        "/dir1/y",
        "/dir2/x",
        "/dir2/deep",
        "/dir2/deep/z",
        "/dir1/x/under",
    ]
}

fn op_strategy() -> impl Strategy<Value = Op> {
    let p = 0..paths().len();
    prop_oneof![
        p.clone().prop_map(Op::Create),
        p.clone().prop_map(Op::Mkdir),
        p.clone().prop_map(Op::Unlink),
        p.clone().prop_map(Op::Rmdir),
        (p.clone(), 0u16..5000, 0u16..2000, any::<u8>()).prop_map(|(path, offset, len, fill)| {
            Op::Write {
                path,
                offset,
                len,
                fill,
            }
        }),
        (p.clone(), 0u16..6000).prop_map(|(path, size)| Op::Truncate { path, size }),
        (p.clone(), p.clone()).prop_map(|(a, b)| Op::Rename(a, b)),
        (p.clone(), p.clone()).prop_map(|(a, b)| Op::Link(a, b)),
        p.prop_map(Op::ReadBack),
        Just(Op::Sync),
    ]
}

/// Applies one op, normalising the result to a comparable form.
fn apply<F: FileSystem>(fs: &mut F, op: &Op) -> Result<Vec<u8>, FsError> {
    let paths = paths();
    match op {
        Op::Create(i) => fs.create(paths[*i]).map(|_| Vec::new()),
        Op::Mkdir(i) => fs.mkdir(paths[*i]).map(|_| Vec::new()),
        Op::Unlink(i) => fs.unlink(paths[*i]).map(|_| Vec::new()),
        Op::Rmdir(i) => fs.rmdir(paths[*i]).map(|_| Vec::new()),
        Op::Write {
            path,
            offset,
            len,
            fill,
        } => {
            let ino = fs.lookup(paths[*path])?;
            let data = vec![*fill; *len as usize];
            fs.write_at(ino, *offset as u64, &data)
                .map(|n| vec![n as u8])
        }
        Op::Truncate { path, size } => {
            let ino = fs.lookup(paths[*path])?;
            fs.truncate(ino, *size as u64).map(|_| Vec::new())
        }
        Op::Rename(a, b) => fs.rename(paths[*a], paths[*b]).map(|_| Vec::new()),
        Op::Link(a, b) => fs.link(paths[*a], paths[*b]).map(|_| Vec::new()),
        Op::ReadBack(i) => fs.read_file(paths[*i]),
        Op::Sync => fs.sync().map(|_| Vec::new()),
    }
}

/// Snapshots a tree as sorted (path, kind, content).
fn snapshot<F: FileSystem>(fs: &mut F) -> Vec<(String, FileKind, Vec<u8>)> {
    let mut out = Vec::new();
    let mut stack = vec![String::from("/")];
    while let Some(dir) = stack.pop() {
        for entry in fs.readdir(&dir).unwrap() {
            let path = if dir == "/" {
                format!("/{}", entry.name)
            } else {
                format!("{dir}/{}", entry.name)
            };
            match entry.kind {
                FileKind::Regular => {
                    let data = fs.read_file(&path).unwrap();
                    out.push((path, FileKind::Regular, data));
                }
                FileKind::Directory => {
                    out.push((path.clone(), FileKind::Directory, Vec::new()));
                    stack.push(path);
                }
            }
        }
    }
    out.sort();
    out
}

fn lfs() -> Lfs<SimDisk> {
    let clock = Clock::new();
    let disk = SimDisk::new(DiskGeometry::tiny_test(32_768), Arc::clone(&clock));
    Lfs::format(disk, LfsConfig::small_test(), clock).unwrap()
}

fn ffs() -> Ffs<SimDisk> {
    let clock = Clock::new();
    let disk = SimDisk::new(DiskGeometry::tiny_test(32_768), Arc::clone(&clock));
    Ffs::format(disk, FfsConfig::small_test(), clock).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 64,
        max_shrink_iters: 200,
    })]

    #[test]
    fn lfs_matches_the_model(ops in proptest::collection::vec(op_strategy(), 1..60)) {
        let mut model = ModelFs::new();
        let mut fs = lfs();
        for (step, op) in ops.iter().enumerate() {
            let expected = apply(&mut model, op);
            let actual = apply(&mut fs, op);
            prop_assert_eq!(
                &expected, &actual,
                "step {} ({:?}) diverged", step, op
            );
        }
        prop_assert_eq!(snapshot(&mut model), snapshot(&mut fs));
        let report = fs.fsck().unwrap();
        prop_assert!(report.is_clean(), "fsck: {}", report);
    }

    #[test]
    fn ffs_matches_the_model(ops in proptest::collection::vec(op_strategy(), 1..60)) {
        let mut model = ModelFs::new();
        let mut fs = ffs();
        for (step, op) in ops.iter().enumerate() {
            let expected = apply(&mut model, op);
            let actual = apply(&mut fs, op);
            prop_assert_eq!(
                &expected, &actual,
                "step {} ({:?}) diverged", step, op
            );
        }
        prop_assert_eq!(snapshot(&mut model), snapshot(&mut fs));
        let report = fs.fsck().unwrap();
        prop_assert!(report.is_clean(), "fsck: {}", report);
    }

    #[test]
    fn lfs_state_survives_remount(ops in proptest::collection::vec(op_strategy(), 1..40)) {
        let clock = Clock::new();
        let disk = SimDisk::new(DiskGeometry::tiny_test(32_768), Arc::clone(&clock));
        let geometry = disk.geometry().clone();
        let mut fs = Lfs::format(disk, LfsConfig::small_test(), Arc::clone(&clock)).unwrap();
        for op in &ops {
            let _ = apply(&mut fs, op);
        }
        fs.sync().unwrap();
        let before = snapshot(&mut fs);

        let image = fs.into_device().into_image();
        let disk = SimDisk::from_image(geometry, Clock::new(), image);
        let clock = disk.clock().clone();
        let mut fs = Lfs::mount(disk, LfsConfig::small_test(), clock).unwrap();
        prop_assert_eq!(before, snapshot(&mut fs));
        let report = fs.fsck().unwrap();
        prop_assert!(report.is_clean(), "fsck after remount: {}", report);
    }
}
