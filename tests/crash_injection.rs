//! Crash injection: power can fail at *any* write, and the volume must
//! always mount, pass fsck, and retain everything acknowledged durable
//! (synced before the crash).
//!
//! The deterministic sweep cuts the write stream at every index in a
//! scripted run — the strongest form of the §4.4 recovery claim our
//! substrate can check. The property test layers random workloads and
//! torn writes on top.

use std::sync::Arc;

use proptest::prelude::*;

use lfs_repro::lfs_core::{Lfs, LfsConfig};
use lfs_repro::sim_disk::{AccessKind, Clock, CrashPlan, DiskGeometry, SimDisk};
use lfs_repro::vfs::{FileSystem, FsError};

const DISK_SECTORS: u64 = 16_384; // 8 MB

fn config(roll_forward: bool) -> LfsConfig {
    let mut cfg = LfsConfig::small_test();
    cfg.roll_forward = roll_forward;
    cfg
}

/// The scripted workload: three generations of files with syncs between.
/// Returns the paths that were durable (synced) at each generation.
fn scripted_run(fs: &mut Lfs<SimDisk>) -> DurableSet {
    let mut durable: DurableSet = Vec::new();
    fn commit(fs: &mut Lfs<SimDisk>, durable: &mut DurableSet, batch: DurableSet) {
        if fs.sync().is_ok() {
            durable.extend(batch);
        }
    }

    let mut batch = Vec::new();
    let _ = fs.mkdir("/gen1");
    for i in 0..6 {
        let path = format!("/gen1/f{i}");
        let data = vec![i as u8 + 1; 600 + i * 97];
        if fs.write_file(&path, &data).is_ok() {
            batch.push((path, data));
        }
    }
    commit(fs, &mut durable, batch);

    // Churn: delete half, overwrite others.
    for i in 0..3 {
        let _ = fs.unlink(&format!("/gen1/f{i}"));
    }
    durable.retain(|(p, _)| !(p.starts_with("/gen1/f") && p.as_str() < "/gen1/f3"));
    let mut batch = Vec::new();
    let _ = fs.mkdir("/gen2");
    for i in 0..6 {
        let path = format!("/gen2/g{i}");
        let data = vec![0x40 + i as u8; 900 + i * 53];
        if fs.write_file(&path, &data).is_ok() {
            batch.push((path, data));
        }
    }
    commit(fs, &mut durable, batch);

    // A final unsynced generation (never added to `durable`).
    let _ = fs.mkdir("/gen3");
    for i in 0..4 {
        let _ = fs.write_file(&format!("/gen3/h{i}"), &vec![0x70; 700]);
    }
    let _ = fs.write_back();
    durable
}

/// Runs the script, crashing at write index `crash_at`; returns the
/// surviving image and what was durable at the moment of the crash.
/// Files known durable at the crash: (path, contents).
type DurableSet = Vec<(String, Vec<u8>)>;

/// Runs mkfs + the script, crashing at write index `crash_at`. Returns
/// `(surviving image, durable set, format completed)`; the image is
/// `None` when the crash hit during format (nothing to recover).
fn run_with_crash(crash_at: u64) -> (Option<Vec<u8>>, DurableSet, bool) {
    let clock = Clock::new();
    let mut disk = SimDisk::new(DiskGeometry::tiny_test(DISK_SECTORS), Arc::clone(&clock));
    disk.arm_crash(CrashPlan::drop_at(crash_at));
    let mut fs = match Lfs::format(disk, config(true), clock) {
        Ok(fs) => fs,
        // The crash hit mkfs itself: there is no volume to recover.
        Err(_) => return (None, Vec::new(), false),
    };
    // Track durability as acknowledged *before* the crash interrupted.
    let mut durable: Vec<(String, Vec<u8>)> = Vec::new();

    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        durable = scripted_run(&mut fs);
    }));
    // Whether or not the script finished, take the surviving platters.
    let image = fs.into_device().into_image();
    let _ = result;
    (Some(image), durable, true)
}

fn mount_image(image: Vec<u8>, roll_forward: bool) -> Lfs<SimDisk> {
    let geometry = DiskGeometry::tiny_test(DISK_SECTORS);
    let disk = SimDisk::from_image(geometry, Clock::new(), image);
    let clock = disk.clock().clone();
    Lfs::mount(disk, config(roll_forward), clock).expect("recovery mount must succeed")
}

/// Cuts the write stream at every index of the scripted run — recovery
/// must succeed and preserve every synced file at all of them.
#[test]
fn crash_at_every_write_index_recovers_consistently() {
    // First, find how many writes a full run issues.
    let clock = Clock::new();
    let disk = SimDisk::new(DiskGeometry::tiny_test(DISK_SECTORS), Arc::clone(&clock));
    let mut fs = Lfs::format(disk, config(true), clock).unwrap();
    scripted_run(&mut fs);
    let total_writes = fs.device().stats().writes;

    let mut tested = 0;
    for crash_at in 0..total_writes + 2 {
        let (image, durable, formatted) = run_with_crash(crash_at);
        let Some(image) = image else {
            assert!(!formatted, "formatted volume must produce an image");
            continue;
        };
        let mut fs = mount_image(image, true);
        let report = fs.fsck().unwrap();
        assert!(
            report.is_clean(),
            "crash at write {crash_at}: fsck dirty:\n{report}"
        );
        for (path, data) in &durable {
            match fs.read_file(path) {
                Ok(read) => assert_eq!(&read, data, "crash at write {crash_at}: {path} corrupted"),
                Err(e) => panic!("crash at write {crash_at}: durable {path} lost: {e}"),
            }
        }
        tested += 1;
    }
    assert!(tested >= 10, "sweep covered only {tested} crash points");
}

#[test]
fn torn_final_write_is_detected_and_discarded() {
    for torn_sectors in [1u64, 2, 5] {
        // Run the script fully once to count its writes, then re-run,
        // tearing the final one.
        let clock = Clock::new();
        let disk = SimDisk::new(DiskGeometry::tiny_test(DISK_SECTORS), Arc::clone(&clock));
        let mut fs = Lfs::format(disk, config(true), clock).unwrap();
        scripted_run(&mut fs);
        let total = fs.device().stats().writes;
        drop(fs);

        let clock = Clock::new();
        let mut disk = SimDisk::new(DiskGeometry::tiny_test(DISK_SECTORS), Arc::clone(&clock));
        disk.arm_crash(CrashPlan::tear_at(total - 1, torn_sectors));
        let mut fs = Lfs::format(disk, config(true), clock).unwrap();
        let durable = scripted_run(&mut fs);
        let image = fs.into_device().into_image();

        let mut fs = mount_image(image, true);
        let report = fs.fsck().unwrap();
        assert!(report.is_clean(), "torn {torn_sectors}: {report}");
        for (path, data) in &durable {
            assert_eq!(
                &fs.read_file(path).unwrap(),
                data,
                "torn {torn_sectors}: {path}"
            );
        }
    }
}

/// Three file generations, each committed by its own sync (one
/// checkpoint-region write per generation). Returns `(path, data,
/// generation)` for every file the script managed to write.
fn generation_script(fs: &mut Lfs<SimDisk>) -> Vec<(String, Vec<u8>, usize)> {
    let mut files = Vec::new();
    for gen in 0..3usize {
        let _ = fs.mkdir(&format!("/gen{gen}"));
        for i in 0..4usize {
            let path = format!("/gen{gen}/f{i}");
            let data = vec![(gen * 16 + i) as u8 + 1; 500 + gen * 131 + i * 37];
            if fs.write_file(&path, &data).is_ok() {
                files.push((path, data, gen));
            }
        }
        let _ = fs.sync();
    }
    files
}

/// Tears every post-format checkpoint-region write at several widths.
/// The two regions alternate, so sweeping three consecutive checkpoints
/// exercises a torn write in both region A and region B. A torn region
/// must fail its CRC, and the mount must fall back to the older valid
/// checkpoint: the generation committed only by the torn checkpoint is
/// invisible to a checkpoint-only mount but recovered by roll-forward
/// (its log writes all precede the region write).
/// Like [`config`], but with enough inode-map blocks that the encoded
/// checkpoint region spans several sectors — a 1-sector torn write then
/// cuts the CRC-protected payload mid-way instead of persisting it
/// whole (with `small_test`'s 512 inodes the payload fits in the first
/// sector and a "torn" region still decodes as valid). 8192 inodes give
/// ~390 inode-map blocks, an encoded payload of ~1.7 KB — more than the
/// widest tear below.
fn torn_config(roll_forward: bool) -> LfsConfig {
    let mut cfg = config(roll_forward);
    cfg.max_inodes = 8192;
    cfg
}

#[test]
fn torn_checkpoint_region_falls_back_to_older_checkpoint() {
    // Dry run with the access trace on from the very first write: find
    // the write index of every checkpoint-region write.
    let clock = Clock::new();
    let mut disk = SimDisk::new(DiskGeometry::tiny_test(DISK_SECTORS), Arc::clone(&clock));
    disk.trace_mut().enable();
    let mut fs = Lfs::format(disk, torn_config(true), clock).unwrap();
    let format_writes = fs.device().stats().writes;
    generation_script(&mut fs);
    let cp_indices: Vec<u64> = fs
        .device()
        .trace()
        .records()
        .iter()
        .filter(|r| r.kind == AccessKind::Write)
        .enumerate()
        .filter(|(_, r)| r.label == "checkpoint")
        .map(|(i, _)| i as u64)
        .collect();
    let post_format: Vec<u64> = cp_indices
        .into_iter()
        .filter(|&i| i >= format_writes)
        .collect();
    // One checkpoint per generation sync — the mapping below relies on it.
    assert_eq!(
        post_format.len(),
        3,
        "expected one checkpoint per generation, found {post_format:?}"
    );

    for (gen, &cp_write) in post_format.iter().enumerate() {
        for torn_sectors in [1u64, 3] {
            let clock = Clock::new();
            let mut disk =
                SimDisk::new(DiskGeometry::tiny_test(DISK_SECTORS), Arc::clone(&clock));
            disk.arm_crash(CrashPlan::tear_at(cp_write, torn_sectors));
            let mut fs = Lfs::format(disk, torn_config(true), clock).unwrap();
            let files = generation_script(&mut fs);
            let image = fs.into_device().into_image();

            let mount_torn = |image: Vec<u8>, roll_forward: bool| {
                let disk = SimDisk::from_image(
                    DiskGeometry::tiny_test(DISK_SECTORS),
                    Clock::new(),
                    image,
                );
                let clock = disk.clock().clone();
                Lfs::mount(disk, torn_config(roll_forward), clock)
                    .expect("recovery mount must succeed")
            };

            // Checkpoint-only mount: the torn region must be rejected,
            // so generation `gen` (committed only by the torn write) is
            // gone and everything older is intact.
            let mut fs = mount_torn(image.clone(), false);
            let report = fs.fsck().unwrap();
            assert!(
                report.is_clean(),
                "cp {gen} torn at {torn_sectors}: fsck dirty:\n{report}"
            );
            for (path, data, g) in &files {
                match g.cmp(&gen) {
                    std::cmp::Ordering::Less => assert_eq!(
                        &fs.read_file(path).unwrap(),
                        data,
                        "cp {gen} torn at {torn_sectors}: committed {path} corrupted"
                    ),
                    std::cmp::Ordering::Equal => assert!(
                        fs.read_file(path).is_err(),
                        "cp {gen} torn at {torn_sectors}: {path} visible without its checkpoint"
                    ),
                    std::cmp::Ordering::Greater => {}
                }
            }

            // Roll-forward mount: generation `gen` reached the log before
            // the region write, so replaying the tail recovers it.
            let mut fs = mount_torn(image, true);
            let report = fs.fsck().unwrap();
            assert!(
                report.is_clean(),
                "cp {gen} torn at {torn_sectors} (roll-forward): fsck dirty:\n{report}"
            );
            for (path, data, g) in &files {
                if *g <= gen {
                    assert_eq!(
                        &fs.read_file(path).unwrap(),
                        data,
                        "cp {gen} torn at {torn_sectors}: roll-forward lost {path}"
                    );
                }
            }
        }
    }
}

#[test]
fn checkpoint_only_recovery_is_also_consistent() {
    for crash_at in [10u64, 25, 40, 70, 100, 150] {
        let (image, _, _) = run_with_crash(crash_at);
        let Some(image) = image else { continue };
        let mut fs = mount_image(image, false);
        let report = fs.fsck().unwrap();
        assert!(
            report.is_clean(),
            "checkpoint-only, crash at {crash_at}:\n{report}"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// Random workload, random crash point, random tear width.
    #[test]
    fn random_crashes_never_corrupt(
        nfiles in 2usize..20,
        file_size in 64usize..4000,
        crash_at in 5u64..400,
        tear in proptest::option::of(1u64..8),
    ) {
        let clock = Clock::new();
        let mut disk = SimDisk::new(DiskGeometry::tiny_test(DISK_SECTORS), Arc::clone(&clock));
        let plan = match tear {
            Some(sectors) => CrashPlan::tear_at(crash_at, sectors),
            None => CrashPlan::drop_at(crash_at),
        };
        disk.arm_crash(plan);
        let Ok(mut fs) = Lfs::format(disk, config(true), clock) else {
            // Crash during mkfs: nothing to check.
            return Ok(());
        };

        let mut durable: Vec<String> = Vec::new();
        let mut pending: Vec<String> = Vec::new();
        let mut failed = false;
        for i in 0..nfiles {
            let path = format!("/p{i:03}");
            match fs.write_file(&path, &vec![i as u8; file_size]) {
                Ok(_) => pending.push(path),
                Err(FsError::Io(_)) => { failed = true; break; }
                Err(_) => {}
            }
            if i % 5 == 4 {
                match fs.sync() {
                    Ok(()) => durable.append(&mut pending),
                    Err(_) => { failed = true; break; }
                }
            }
        }
        let _ = failed;
        let image = fs.into_device().into_image();

        let mut fs = mount_image(image, true);
        let report = fs.fsck().unwrap();
        prop_assert!(report.is_clean(), "fsck: {}", report);
        for path in &durable {
            prop_assert!(
                fs.read_file(path).is_ok(),
                "durable {} lost after crash at {}", path, crash_at
            );
        }
    }
}
