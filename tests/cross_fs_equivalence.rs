//! Cross-implementation equivalence: LFS, FFS, and the in-memory model
//! must agree on observable behaviour under identical operation
//! sequences — including the full office/engineering workload.

use std::sync::Arc;

use lfs_repro::ffs_baseline::{Ffs, FfsConfig};
use lfs_repro::lfs_core::{Lfs, LfsConfig};
use lfs_repro::sim_disk::{Clock, DiskGeometry, SimDisk};
use lfs_repro::vfs::model::ModelFs;
use lfs_repro::vfs::{FileKind, FileSystem};
use lfs_repro::workload::office::{run as office_run, OfficeSpec};

fn lfs() -> Lfs<SimDisk> {
    let clock = Clock::new();
    let disk = SimDisk::new(DiskGeometry::tiny_test(65_536), Arc::clone(&clock));
    Lfs::format(disk, LfsConfig::small_test(), clock).unwrap()
}

fn ffs() -> Ffs<SimDisk> {
    let clock = Clock::new();
    let disk = SimDisk::new(DiskGeometry::tiny_test(65_536), Arc::clone(&clock));
    Ffs::format(disk, FfsConfig::small_test(), clock).unwrap()
}

/// Recursively snapshots a tree as (path, kind, content) triples.
fn snapshot<F: FileSystem>(fs: &mut F) -> Vec<(String, FileKind, Vec<u8>)> {
    let mut out = Vec::new();
    let mut stack = vec![String::from("/")];
    while let Some(dir) = stack.pop() {
        let mut entries = fs.readdir(&dir).unwrap();
        entries.sort_by(|a, b| a.name.cmp(&b.name));
        for entry in entries {
            let path = if dir == "/" {
                format!("/{}", entry.name)
            } else {
                format!("{dir}/{}", entry.name)
            };
            match entry.kind {
                FileKind::Regular => {
                    let data = fs.read_file(&path).unwrap();
                    out.push((path, FileKind::Regular, data));
                }
                FileKind::Directory => {
                    out.push((path.clone(), FileKind::Directory, Vec::new()));
                    stack.push(path);
                }
            }
        }
    }
    out.sort();
    out
}

/// A fixed, tricky operation script covering the semantic corners.
fn run_script<F: FileSystem>(fs: &mut F) -> Vec<String> {
    let mut results = Vec::new();
    let mut record = |tag: &str, r: Result<(), lfs_repro::vfs::FsError>| {
        results.push(format!("{tag}: {:?}", r.err()));
    };

    record("mkdir /a", fs.mkdir("/a").map(|_| ()));
    record("mkdir /a/b", fs.mkdir("/a/b").map(|_| ()));
    record("dup mkdir", fs.mkdir("/a").map(|_| ()));
    record("create /a/f", fs.write_file("/a/f", b"one").map(|_| ()));
    record(
        "create /a/b/g",
        fs.write_file("/a/b/g", &vec![7u8; 5000]).map(|_| ()),
    );
    record("link", fs.link("/a/f", "/a/f2"));
    record("link dir", fs.link("/a/b", "/a/bb"));
    record("rename over", {
        let r = fs.write_file("/a/h", b"two").map(|_| ());
        r.and_then(|_| fs.rename("/a/h", "/a/f"))
    });
    record("rename dir", fs.rename("/a/b", "/moved"));
    record("rename into self", fs.rename("/moved", "/moved/x"));
    record("unlink f2", fs.unlink("/a/f2"));
    record("rmdir nonempty", fs.rmdir("/moved"));
    record("unlink missing", fs.unlink("/ghost"));
    record("sparse", {
        fs.create("/sparse").map(|_| ()).and_then(|_| {
            let ino = fs.lookup("/sparse")?;
            fs.write_at(ino, 9_000, b"tail")?;
            fs.truncate(ino, 400)?;
            fs.write_at(ino, 395, b"abcdefgh")?;
            Ok(())
        })
    });
    record("sync", fs.sync());
    results
}

#[test]
fn script_results_and_trees_match_across_implementations() {
    let mut model = ModelFs::new();
    let mut lfs = lfs();
    let mut ffs = ffs();

    let model_results = run_script(&mut model);
    let lfs_results = run_script(&mut lfs);
    let ffs_results = run_script(&mut ffs);
    assert_eq!(model_results, lfs_results, "LFS diverged from the model");
    assert_eq!(model_results, ffs_results, "FFS diverged from the model");

    let model_tree = snapshot(&mut model);
    assert_eq!(model_tree, snapshot(&mut lfs), "LFS tree diverged");
    assert_eq!(model_tree, snapshot(&mut ffs), "FFS tree diverged");

    // Both real file systems must also be internally consistent.
    assert!(lfs.fsck().unwrap().is_clean());
    assert!(ffs.fsck().unwrap().is_clean());
}

#[test]
fn office_workload_trees_match() {
    let spec = OfficeSpec::scaled(1_500, 60);
    let mut model = ModelFs::new();
    let mut lfs = lfs();
    let mut ffs = ffs();
    let a = office_run(&mut model, &spec).unwrap();
    let b = office_run(&mut lfs, &spec).unwrap();
    let c = office_run(&mut ffs, &spec).unwrap();
    assert_eq!(a, b, "LFS outcome diverged");
    assert_eq!(a, c, "FFS outcome diverged");

    let model_tree = snapshot(&mut model);
    assert_eq!(model_tree, snapshot(&mut lfs));
    assert_eq!(model_tree, snapshot(&mut ffs));
    assert!(lfs.fsck().unwrap().is_clean());
    assert!(ffs.fsck().unwrap().is_clean());
}

#[test]
fn office_workload_survives_lfs_remount() {
    let spec = OfficeSpec::scaled(1_000, 50);
    let clock = Clock::new();
    let disk = SimDisk::new(DiskGeometry::tiny_test(65_536), Arc::clone(&clock));
    let geometry = disk.geometry().clone();
    let mut fs = Lfs::format(disk, LfsConfig::small_test(), Arc::clone(&clock)).unwrap();
    office_run(&mut fs, &spec).unwrap();
    fs.sync().unwrap();
    let before = snapshot(&mut fs);

    let image = fs.into_device().into_image();
    let disk = SimDisk::from_image(geometry, Clock::new(), image);
    let clock = disk.clock().clone();
    let mut fs = Lfs::mount(disk, LfsConfig::small_test(), clock).unwrap();
    assert_eq!(before, snapshot(&mut fs));
    let report = fs.fsck().unwrap();
    assert!(report.is_clean(), "{report}");
}

#[test]
fn office_workload_survives_ffs_remount() {
    let spec = OfficeSpec::scaled(1_000, 50);
    let clock = Clock::new();
    let disk = SimDisk::new(DiskGeometry::tiny_test(65_536), Arc::clone(&clock));
    let geometry = disk.geometry().clone();
    let mut fs = Ffs::format(disk, FfsConfig::small_test(), Arc::clone(&clock)).unwrap();
    office_run(&mut fs, &spec).unwrap();
    let before = snapshot(&mut fs);
    let disk = fs.unmount().unwrap();

    let image = disk.into_image();
    let disk = SimDisk::from_image(geometry, Clock::new(), image);
    let clock = disk.clock().clone();
    let mut fs = Ffs::mount(disk, FfsConfig::small_test(), clock).unwrap();
    assert_eq!(fs.stats().fsck_scans, 0);
    assert_eq!(before, snapshot(&mut fs));
    assert!(fs.fsck().unwrap().is_clean());
}
