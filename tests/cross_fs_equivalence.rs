//! Cross-implementation equivalence: LFS, FFS, and the in-memory model
//! must agree on observable behaviour under identical operation
//! sequences — including the full office/engineering workload.

use std::sync::Arc;

use lfs_repro::ffs_baseline::{Ffs, FfsConfig};
use lfs_repro::lfs_core::{Lfs, LfsConfig};
use lfs_repro::sim_disk::{Clock, DiskGeometry, SimDisk};
use lfs_repro::vfs::model::ModelFs;
use lfs_repro::vfs::{FileKind, FileSystem};
use lfs_repro::workload::office::{run as office_run, OfficeSpec};

fn lfs() -> Lfs<SimDisk> {
    let clock = Clock::new();
    let disk = SimDisk::new(DiskGeometry::tiny_test(65_536), Arc::clone(&clock));
    Lfs::format(disk, LfsConfig::small_test(), clock).unwrap()
}

fn ffs() -> Ffs<SimDisk> {
    let clock = Clock::new();
    let disk = SimDisk::new(DiskGeometry::tiny_test(65_536), Arc::clone(&clock));
    Ffs::format(disk, FfsConfig::small_test(), clock).unwrap()
}

/// Recursively snapshots a tree as (path, kind, content) triples.
fn snapshot<F: FileSystem>(fs: &mut F) -> Vec<(String, FileKind, Vec<u8>)> {
    let mut out = Vec::new();
    let mut stack = vec![String::from("/")];
    while let Some(dir) = stack.pop() {
        let mut entries = fs.readdir(&dir).unwrap();
        entries.sort_by(|a, b| a.name.cmp(&b.name));
        for entry in entries {
            let path = if dir == "/" {
                format!("/{}", entry.name)
            } else {
                format!("{dir}/{}", entry.name)
            };
            match entry.kind {
                FileKind::Regular => {
                    let data = fs.read_file(&path).unwrap();
                    out.push((path, FileKind::Regular, data));
                }
                FileKind::Directory => {
                    out.push((path.clone(), FileKind::Directory, Vec::new()));
                    stack.push(path);
                }
            }
        }
    }
    out.sort();
    out
}

/// A fixed, tricky operation script covering the semantic corners.
fn run_script<F: FileSystem>(fs: &mut F) -> Vec<String> {
    let mut results = Vec::new();
    let mut record = |tag: &str, r: Result<(), lfs_repro::vfs::FsError>| {
        results.push(format!("{tag}: {:?}", r.err()));
    };

    record("mkdir /a", fs.mkdir("/a").map(|_| ()));
    record("mkdir /a/b", fs.mkdir("/a/b").map(|_| ()));
    record("dup mkdir", fs.mkdir("/a").map(|_| ()));
    record("create /a/f", fs.write_file("/a/f", b"one").map(|_| ()));
    record(
        "create /a/b/g",
        fs.write_file("/a/b/g", &vec![7u8; 5000]).map(|_| ()),
    );
    record("link", fs.link("/a/f", "/a/f2"));
    record("link dir", fs.link("/a/b", "/a/bb"));
    record("rename over", {
        let r = fs.write_file("/a/h", b"two").map(|_| ());
        r.and_then(|_| fs.rename("/a/h", "/a/f"))
    });
    record("rename dir", fs.rename("/a/b", "/moved"));
    record("rename into self", fs.rename("/moved", "/moved/x"));
    record("unlink f2", fs.unlink("/a/f2"));
    record("rmdir nonempty", fs.rmdir("/moved"));
    record("unlink missing", fs.unlink("/ghost"));
    record("sparse", {
        fs.create("/sparse").map(|_| ()).and_then(|_| {
            let ino = fs.lookup("/sparse")?;
            fs.write_at(ino, 9_000, b"tail")?;
            fs.truncate(ino, 400)?;
            fs.write_at(ino, 395, b"abcdefgh")?;
            Ok(())
        })
    });
    record("sync", fs.sync());
    results
}

#[test]
fn script_results_and_trees_match_across_implementations() {
    let mut model = ModelFs::new();
    let mut lfs = lfs();
    let mut ffs = ffs();

    let model_results = run_script(&mut model);
    let lfs_results = run_script(&mut lfs);
    let ffs_results = run_script(&mut ffs);
    assert_eq!(model_results, lfs_results, "LFS diverged from the model");
    assert_eq!(model_results, ffs_results, "FFS diverged from the model");

    let model_tree = snapshot(&mut model);
    assert_eq!(model_tree, snapshot(&mut lfs), "LFS tree diverged");
    assert_eq!(model_tree, snapshot(&mut ffs), "FFS tree diverged");

    // Both real file systems must also be internally consistent.
    assert!(lfs.fsck().unwrap().is_clean());
    assert!(ffs.fsck().unwrap().is_clean());
}

/// Rename onto an existing file: the target's old contents must be
/// replaced atomically from the caller's view, the target inode's link
/// must drop, and the source name must disappear.
fn rename_over_script<F: FileSystem>(fs: &mut F) -> Vec<String> {
    let mut results = Vec::new();
    let mut record = |tag: &str, r: Result<(), lfs_repro::vfs::FsError>| {
        results.push(format!("{tag}: {:?}", r.err()));
    };

    record("mkdir /dir", fs.mkdir("/dir").map(|_| ()));
    record("create src", fs.write_file("/dir/src", b"new contents").map(|_| ()));
    record("create dst", fs.write_file("/dir/dst", b"old contents, longer").map(|_| ()));
    record("rename over file", fs.rename("/dir/src", "/dir/dst"));
    // The replaced file is fully gone: its name now maps to src's data.
    record("src gone", match fs.lookup("/dir/src") {
        Ok(_) => Ok(()),
        Err(e) => Err(e),
    });
    // Rename over a second, hard-linked target: only the name's link dies.
    record("create dst2", fs.write_file("/dir/dst2", b"linked").map(|_| ()));
    record("link dst2", fs.link("/dir/dst2", "/dir/keep"));
    record("create src2", fs.write_file("/dir/src2", b"payload").map(|_| ()));
    record("rename over linked", fs.rename("/dir/src2", "/dir/dst2"));
    record("sync", fs.sync());
    results
}

#[test]
fn rename_over_existing_file_matches_across_implementations() {
    let mut model = ModelFs::new();
    let mut lfs = lfs();
    let mut ffs = ffs();

    let model_results = rename_over_script(&mut model);
    assert_eq!(model_results, rename_over_script(&mut lfs), "LFS diverged");
    assert_eq!(model_results, rename_over_script(&mut ffs), "FFS diverged");

    let model_tree = snapshot(&mut model);
    assert_eq!(model_tree, snapshot(&mut lfs), "LFS tree diverged");
    assert_eq!(model_tree, snapshot(&mut ffs), "FFS tree diverged");

    // Spot-check the semantics on every implementation, not just
    // model-agreement: the rename won, the old data is unreachable, and
    // the other hard link of a replaced name still holds its contents.
    fn check<F: FileSystem>(fs: &mut F, label: &str) {
        assert_eq!(fs.read_file("/dir/dst").unwrap(), b"new contents", "{label}");
        assert!(fs.lookup("/dir/src").is_err(), "{label}: source name survived");
        assert_eq!(fs.read_file("/dir/dst2").unwrap(), b"payload", "{label}");
        assert_eq!(fs.read_file("/dir/keep").unwrap(), b"linked", "{label}");
        let keep = fs.lookup("/dir/keep").unwrap();
        assert_eq!(fs.stat(keep).unwrap().nlink, 1, "{label}: nlink after replace");
    }
    check(&mut model, "model");
    check(&mut lfs, "lfs");
    check(&mut ffs, "ffs");

    assert!(lfs.fsck().unwrap().is_clean());
    assert!(ffs.fsck().unwrap().is_clean());
}

/// Hard-link a file and unlink the original name: the data must remain
/// reachable through the link, with the link count back to one.
fn link_unlink_script<F: FileSystem>(fs: &mut F) -> Vec<String> {
    let mut results = Vec::new();
    let mut record = |tag: &str, r: Result<(), lfs_repro::vfs::FsError>| {
        results.push(format!("{tag}: {:?}", r.err()));
    };

    record("mkdir /ln", fs.mkdir("/ln").map(|_| ()));
    record("create orig", fs.write_file("/ln/orig", &vec![0xC3; 6000]).map(|_| ()));
    record("link alias", fs.link("/ln/orig", "/ln/alias"));
    record("unlink orig", fs.unlink("/ln/orig"));
    // Writing through the surviving name must still work.
    record("append via alias", {
        match fs.lookup("/ln/alias") {
            Ok(ino) => fs.write_at(ino, 6000, b"tail").map(|_| ()),
            Err(e) => Err(e),
        }
    });
    // A second round where the *link* dies instead of the original.
    record("create keep2", fs.write_file("/ln/keep2", b"stay").map(|_| ()));
    record("link gone2", fs.link("/ln/keep2", "/ln/gone2"));
    record("unlink gone2", fs.unlink("/ln/gone2"));
    record("sync", fs.sync());
    results
}

#[test]
fn hard_link_then_unlink_source_matches_across_implementations() {
    let mut model = ModelFs::new();
    let mut lfs = lfs();
    let mut ffs = ffs();

    let model_results = link_unlink_script(&mut model);
    assert_eq!(model_results, link_unlink_script(&mut lfs), "LFS diverged");
    assert_eq!(model_results, link_unlink_script(&mut ffs), "FFS diverged");

    let model_tree = snapshot(&mut model);
    assert_eq!(model_tree, snapshot(&mut lfs), "LFS tree diverged");
    assert_eq!(model_tree, snapshot(&mut ffs), "FFS tree diverged");

    fn check<F: FileSystem>(fs: &mut F, label: &str) {
        assert!(fs.lookup("/ln/orig").is_err(), "{label}: unlinked name survived");
        let mut expect = vec![0xC3u8; 6000];
        expect.extend_from_slice(b"tail");
        assert_eq!(fs.read_file("/ln/alias").unwrap(), expect, "{label}");
        let alias = fs.lookup("/ln/alias").unwrap();
        assert_eq!(fs.stat(alias).unwrap().nlink, 1, "{label}: nlink after unlink");
        assert_eq!(fs.read_file("/ln/keep2").unwrap(), b"stay", "{label}");
        assert!(fs.lookup("/ln/gone2").is_err(), "{label}: dead link survived");
    }
    check(&mut model, "model");
    check(&mut lfs, "lfs");
    check(&mut ffs, "ffs");

    assert!(lfs.fsck().unwrap().is_clean());
    assert!(ffs.fsck().unwrap().is_clean());
}

#[test]
fn office_workload_trees_match() {
    let spec = OfficeSpec::scaled(1_500, 60);
    let mut model = ModelFs::new();
    let mut lfs = lfs();
    let mut ffs = ffs();
    let a = office_run(&mut model, &spec).unwrap();
    let b = office_run(&mut lfs, &spec).unwrap();
    let c = office_run(&mut ffs, &spec).unwrap();
    assert_eq!(a, b, "LFS outcome diverged");
    assert_eq!(a, c, "FFS outcome diverged");

    let model_tree = snapshot(&mut model);
    assert_eq!(model_tree, snapshot(&mut lfs));
    assert_eq!(model_tree, snapshot(&mut ffs));
    assert!(lfs.fsck().unwrap().is_clean());
    assert!(ffs.fsck().unwrap().is_clean());
}

#[test]
fn office_workload_survives_lfs_remount() {
    let spec = OfficeSpec::scaled(1_000, 50);
    let clock = Clock::new();
    let disk = SimDisk::new(DiskGeometry::tiny_test(65_536), Arc::clone(&clock));
    let geometry = disk.geometry().clone();
    let mut fs = Lfs::format(disk, LfsConfig::small_test(), Arc::clone(&clock)).unwrap();
    office_run(&mut fs, &spec).unwrap();
    fs.sync().unwrap();
    let before = snapshot(&mut fs);

    let image = fs.into_device().into_image();
    let disk = SimDisk::from_image(geometry, Clock::new(), image);
    let clock = disk.clock().clone();
    let mut fs = Lfs::mount(disk, LfsConfig::small_test(), clock).unwrap();
    assert_eq!(before, snapshot(&mut fs));
    let report = fs.fsck().unwrap();
    assert!(report.is_clean(), "{report}");
}

#[test]
fn office_workload_survives_ffs_remount() {
    let spec = OfficeSpec::scaled(1_000, 50);
    let clock = Clock::new();
    let disk = SimDisk::new(DiskGeometry::tiny_test(65_536), Arc::clone(&clock));
    let geometry = disk.geometry().clone();
    let mut fs = Ffs::format(disk, FfsConfig::small_test(), Arc::clone(&clock)).unwrap();
    office_run(&mut fs, &spec).unwrap();
    let before = snapshot(&mut fs);
    let disk = fs.unmount().unwrap();

    let image = disk.into_image();
    let disk = SimDisk::from_image(geometry, Clock::new(), image);
    let clock = disk.clock().clone();
    let mut fs = Ffs::mount(disk, FfsConfig::small_test(), clock).unwrap();
    assert_eq!(fs.stats().fsck_scans, 0);
    assert_eq!(before, snapshot(&mut fs));
    assert!(fs.fsck().unwrap().is_clean());
}
