//! The paper's central quantitative claims, asserted at test scale.
//!
//! The full reproductions live in `lfs-bench` (one binary per figure);
//! these tests pin the *directions* so `cargo test` alone guards them:
//!
//! * Figure 1/2: FFS creation does small random synchronous writes; LFS
//!   does none.
//! * Figure 3: LFS creates and deletes small files several times faster.
//! * Figure 4: LFS random writes ≈ sequential; FFS random writes collapse;
//!   FFS wins sequential reread after random update.
//! * Figure 5: the cleaning rate falls as segment utilization rises.
//! * §3.1: faster CPUs barely help FFS, but scale LFS.
//! * §4.4: LFS recovery does not scan the disk; FFS fsck does.

use std::sync::Arc;

use lfs_repro::ffs_baseline::{Ffs, FfsConfig};
use lfs_repro::lfs_core::{Lfs, LfsConfig};
use lfs_repro::sim_disk::{Clock, DiskGeometry, SimDisk};
use lfs_repro::vfs::FileSystem;
use lfs_repro::workload::large_file::{self, LargeFileSpec};
use lfs_repro::workload::small_files::{create_phase, delete_phase, SmallFileSpec};
use lfs_repro::workload::{payload, Stopwatch};

fn lfs_disk(mb: u64) -> (Lfs<SimDisk>, Arc<Clock>) {
    let clock = Clock::new();
    let disk = SimDisk::new(
        DiskGeometry::wren_iv().with_sectors(mb * 2048),
        Arc::clone(&clock),
    );
    let fs = Lfs::format(disk, LfsConfig::paper(), Arc::clone(&clock)).unwrap();
    (fs, clock)
}

fn ffs_disk(mb: u64) -> (Ffs<SimDisk>, Arc<Clock>) {
    let clock = Clock::new();
    let disk = SimDisk::new(
        DiskGeometry::wren_iv().with_sectors(mb * 2048),
        Arc::clone(&clock),
    );
    let fs = Ffs::format(disk, FfsConfig::paper(), Arc::clone(&clock)).unwrap();
    (fs, clock)
}

#[test]
fn fig1_2_lfs_create_is_asynchronous_ffs_is_not() {
    let (mut ffs, _) = ffs_disk(64);
    ffs.mkdir("/d").unwrap();
    let sync_before = ffs.device().stats().sync_writes;
    ffs.create("/d/f").unwrap();
    assert!(
        ffs.device().stats().sync_writes >= sync_before + 2,
        "FFS creat must synchronously write the inode and the directory"
    );

    let (mut lfs, _) = lfs_disk(64);
    lfs.mkdir("/d").unwrap();
    let sync_before = lfs.device().stats().sync_writes;
    let writes_before = lfs.device().stats().writes;
    lfs.create("/d/f").unwrap();
    let ino = lfs.lookup("/d/f").unwrap();
    lfs.write_at(ino, 0, &vec![1u8; 4096]).unwrap();
    assert_eq!(
        lfs.device().stats().sync_writes,
        sync_before,
        "LFS creat+write must perform no synchronous writes"
    );
    assert_eq!(
        lfs.device().stats().writes,
        writes_before,
        "LFS creat+write must not touch the disk at all until write-back"
    );
}

#[test]
fn fig3_small_file_create_delete_speedup() {
    let spec = SmallFileSpec::scaled(800, 1024);

    let (mut lfs, clock) = lfs_disk(64);
    let mut watch = Stopwatch::start(Arc::clone(&clock));
    create_phase(&mut lfs, &spec).unwrap();
    lfs.sync().unwrap();
    let lfs_create = watch.lap_secs();
    delete_phase(&mut lfs, &spec).unwrap();
    lfs.sync().unwrap();
    let lfs_delete = watch.lap_secs();

    let (mut ffs, clock) = ffs_disk(64);
    let mut watch = Stopwatch::start(Arc::clone(&clock));
    create_phase(&mut ffs, &spec).unwrap();
    ffs.sync().unwrap();
    let ffs_create = watch.lap_secs();
    delete_phase(&mut ffs, &spec).unwrap();
    ffs.sync().unwrap();
    let ffs_delete = watch.lap_secs();

    assert!(
        ffs_create / lfs_create > 4.0,
        "LFS should create small files several times faster \
         (LFS {lfs_create:.2}s vs FFS {ffs_create:.2}s)"
    );
    assert!(
        ffs_delete / lfs_delete > 4.0,
        "LFS should delete small files several times faster \
         (LFS {lfs_delete:.2}s vs FFS {ffs_delete:.2}s)"
    );
}

#[test]
fn fig4_random_write_behaviour() {
    let spec = LargeFileSpec::scaled(16 * 1024 * 1024, 8192);

    let measure = |fs: &mut dyn FileSystem, clock: &Arc<Clock>| -> (f64, f64, f64) {
        let ino = fs.create("/big").unwrap();
        let mut watch = Stopwatch::start(Arc::clone(clock));
        large_file::seq_write(fs, ino, &spec).unwrap();
        fs.sync().unwrap();
        let seq_write = watch.lap_secs();
        large_file::rand_write(fs, ino, &spec).unwrap();
        fs.sync().unwrap();
        let rand_write = watch.lap_secs();
        fs.drop_caches().unwrap();
        watch.lap_secs();
        large_file::seq_read(fs, ino, &spec).unwrap();
        let reread = watch.lap_secs();
        (seq_write, rand_write, reread)
    };

    // Shrink the caches so the 16 MB file does not fit: with everything
    // cached, even FFS's random writes would be absorbed and sorted.
    let clock = Clock::new();
    let disk = SimDisk::new(
        DiskGeometry::wren_iv().with_sectors(96 * 2048),
        Arc::clone(&clock),
    );
    let mut lfs = Lfs::format(
        disk,
        LfsConfig::paper().with_cache_bytes(2 * 1024 * 1024),
        Arc::clone(&clock),
    )
    .unwrap();
    let (lfs_seq_w, lfs_rand_w, lfs_reread) = measure(&mut lfs, &clock);

    let clock = Clock::new();
    let disk = SimDisk::new(
        DiskGeometry::wren_iv().with_sectors(96 * 2048),
        Arc::clone(&clock),
    );
    let mut ffs = Ffs::format(
        disk,
        FfsConfig::paper().with_cache_bytes(2 * 1024 * 1024),
        Arc::clone(&clock),
    )
    .unwrap();
    let (ffs_seq_w, ffs_rand_w, ffs_reread) = measure(&mut ffs, &clock);

    // LFS: random writes cost about the same as sequential (they become
    // sequential log writes).
    assert!(
        lfs_rand_w < lfs_seq_w * 1.5,
        "LFS random writes should not collapse: seq {lfs_seq_w:.2}s rand {lfs_rand_w:.2}s"
    );
    // FFS: random writes much slower than its own sequential writes.
    assert!(
        ffs_rand_w > ffs_seq_w * 1.8,
        "FFS random writes should collapse: seq {ffs_seq_w:.2}s rand {ffs_rand_w:.2}s"
    );
    // Crossover: sequential reread after random update favours FFS.
    assert!(
        ffs_reread < lfs_reread,
        "update-in-place must win the sequential reread \
         (FFS {ffs_reread:.2}s vs LFS {lfs_reread:.2}s)"
    );
}

#[test]
fn fig5_cleaning_rate_decreases_with_utilization() {
    let rate_at = |keep_tenths: u32| -> f64 {
        let mut cfg = LfsConfig::paper().with_cache_bytes(2 * 1024 * 1024);
        cfg.cleaner.activate_below_clean = 0;
        let clock = Clock::new();
        let disk = SimDisk::new(
            DiskGeometry::wren_iv().with_sectors(48 * 2048),
            Arc::clone(&clock),
        );
        let mut fs = Lfs::format(disk, cfg, Arc::clone(&clock)).unwrap();
        let data = payload(5, 1024);
        let n = 8_000usize;
        for d in 0..n / 500 {
            fs.mkdir(&format!("/d{d}")).unwrap();
        }
        for i in 0..n {
            fs.write_file(&format!("/d{}/f{i}", i / 500), &data)
                .unwrap();
        }
        fs.sync().unwrap();
        for i in 0..n {
            if (i % 10) as u32 >= keep_tenths {
                fs.unlink(&format!("/d{}/f{i}", i / 500)).unwrap();
            }
        }
        fs.sync().unwrap();

        let clean_before = fs.usage_table().clean_count();
        let watch = Stopwatch::start(Arc::clone(&clock));
        for _ in 0..4 {
            if fs.clean_pass().unwrap().segments == 0 {
                break;
            }
            fs.checkpoint().unwrap();
        }
        let net = fs.usage_table().clean_count().saturating_sub(clean_before);
        (net as u64 * fs.usage_table().seg_bytes()) as f64 / watch.elapsed_secs()
    };

    let empty = rate_at(1);
    let half = rate_at(5);
    let full = rate_at(9);
    assert!(
        empty > half && half > full,
        "cleaning rate must fall with utilization: {empty:.0} > {half:.0} > {full:.0}"
    );
}

#[test]
fn s1_cpu_scaling_decouples_lfs_only() {
    let latency = |mips: f64, use_lfs: bool| -> f64 {
        let n = 60;
        if use_lfs {
            let (mut fs, clock) = lfs_disk(64);
            fs.set_cpu_mips(mips);
            let watch = Stopwatch::start(Arc::clone(&clock));
            for i in 0..n {
                fs.create(&format!("/e{i}")).unwrap();
                fs.unlink(&format!("/e{i}")).unwrap();
            }
            watch.elapsed_secs() / n as f64
        } else {
            let (mut fs, clock) = ffs_disk(64);
            fs.set_cpu_mips(mips);
            let watch = Stopwatch::start(Arc::clone(&clock));
            for i in 0..n {
                fs.create(&format!("/e{i}")).unwrap();
                fs.unlink(&format!("/e{i}")).unwrap();
            }
            watch.elapsed_secs() / n as f64
        }
    };

    let ffs_slow = latency(1.0, false);
    let ffs_fast = latency(10.0, false);
    let lfs_slow = latency(1.0, true);
    let lfs_fast = latency(10.0, true);

    // A 10x CPU gives FFS well under 2x, but LFS several times.
    assert!(
        ffs_slow / ffs_fast < 2.0,
        "FFS is disk-bound: {ffs_slow:.4}s -> {ffs_fast:.4}s"
    );
    assert!(
        lfs_slow / lfs_fast > 4.0,
        "LFS should scale with the CPU: {lfs_slow:.4}s -> {lfs_fast:.4}s"
    );
}

#[test]
fn s2_lfs_recovery_reads_far_less_than_ffs_fsck() {
    // Build comparable dirty volumes and crash them.
    let (mut lfs, _clock) = lfs_disk(128);
    for i in 0..100 {
        lfs.write_file(&format!("/f{i}"), &vec![1u8; 8192]).unwrap();
    }
    lfs.sync().unwrap();
    let lfs_image = lfs.into_device().into_image();

    let (mut ffs, _clock) = ffs_disk(128);
    for i in 0..100 {
        ffs.write_file(&format!("/f{i}"), &vec![1u8; 8192]).unwrap();
    }
    ffs.sync().unwrap();
    let ffs_image = ffs.into_device().into_image();

    let geometry = DiskGeometry::wren_iv().with_sectors(128 * 2048);
    let disk = SimDisk::from_image(geometry.clone(), Clock::new(), lfs_image);
    let clock = disk.clock().clone();
    let fs = Lfs::mount(disk, LfsConfig::paper(), clock).unwrap();
    let lfs_reads = fs.device().stats().bytes_read;

    let disk = SimDisk::from_image(geometry, Clock::new(), ffs_image);
    let clock = disk.clock().clone();
    let fs = Ffs::mount(disk, FfsConfig::paper(), clock).unwrap();
    assert_eq!(fs.stats().fsck_scans, 1, "dirty FFS must scan");
    let ffs_reads = fs.device().stats().bytes_read;

    assert!(
        ffs_reads > lfs_reads * 5,
        "FFS fsck ({ffs_reads} B) must read far more than LFS mount ({lfs_reads} B)"
    );
}
