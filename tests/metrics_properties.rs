//! Property tests for the observability layer: the invariants every
//! registry-backed metric must hold no matter what workload runs.
//!
//! * Counters are monotone — no operation may ever decrease one.
//! * Operation-latency histograms count exactly one sample per call of
//!   the operation they time (success or failure).
//! * The disk's time accounting balances: seek + rotation + transfer
//!   nanoseconds always sum to busy nanoseconds.

use std::collections::BTreeMap;
use std::sync::Arc;

use proptest::prelude::*;

use lfs_repro::ffs_baseline::{Ffs, FfsConfig};
use lfs_repro::lfs_core::{Lfs, LfsConfig};
use lfs_repro::sim_disk::{Clock, DiskGeometry, SimDisk};
use lfs_repro::vfs::FileSystem;

const DISK_SECTORS: u64 = 16_384; // 8 MB

fn lfs_rig() -> Lfs<SimDisk> {
    let clock = Clock::new();
    let disk = SimDisk::new(DiskGeometry::tiny_test(DISK_SECTORS), Arc::clone(&clock));
    Lfs::format(disk, LfsConfig::small_test(), clock).unwrap()
}

/// One step of a generated workload. Operations are chosen so that both
/// success and failure paths occur (lookups of absent files, repeated
/// creates, unlinks of missing paths).
#[derive(Debug, Clone)]
enum Op {
    Create(u8),
    Write(u8, u16),
    Read(u8),
    Unlink(u8),
    Mkdir(u8),
    Rename(u8, u8),
    Sync,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u8..12).prop_map(Op::Create),
        (0u8..12, 1u16..3000).prop_map(|(i, n)| Op::Write(i, n)),
        (0u8..12).prop_map(Op::Read),
        (0u8..12).prop_map(Op::Unlink),
        (0u8..6).prop_map(Op::Mkdir),
        (0u8..12, 0u8..12).prop_map(|(a, b)| Op::Rename(a, b)),
        Just(Op::Sync),
    ]
}

/// Applies one op, returning which latency histograms it must have fed
/// (one sample per entry, regardless of the op's success).
fn apply<F: FileSystem>(fs: &mut F, op: &Op) -> Vec<&'static str> {
    match op {
        Op::Create(i) => {
            let _ = fs.create(&format!("/f{i}"));
            vec!["op.create_ns"]
        }
        Op::Write(i, n) => {
            // `lookup` then `write_at`: one sample in each histogram,
            // but `write_at` only runs when the lookup succeeded.
            match fs.lookup(&format!("/f{i}")) {
                Ok(ino) => {
                    let _ = fs.write_at(ino, 0, &vec![0x5A; *n as usize]);
                    vec!["op.lookup_ns", "op.write_ns"]
                }
                Err(_) => vec!["op.lookup_ns"],
            }
        }
        Op::Read(i) => match fs.lookup(&format!("/f{i}")) {
            Ok(ino) => {
                let mut buf = [0u8; 256];
                let _ = fs.read_at(ino, 0, &mut buf);
                vec!["op.lookup_ns", "op.read_ns"]
            }
            Err(_) => vec!["op.lookup_ns"],
        },
        Op::Unlink(i) => {
            let _ = fs.unlink(&format!("/f{i}"));
            vec!["op.unlink_ns"]
        }
        Op::Mkdir(i) => {
            let _ = fs.mkdir(&format!("/d{i}"));
            vec!["op.mkdir_ns"]
        }
        Op::Rename(a, b) => {
            let _ = fs.rename(&format!("/f{a}"), &format!("/f{b}"));
            vec!["op.rename_ns"]
        }
        Op::Sync => {
            let _ = fs.sync();
            vec!["op.sync_ns"]
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// No operation sequence may ever decrease a counter.
    #[test]
    fn counters_are_monotone(ops in proptest::collection::vec(op_strategy(), 1..60)) {
        let mut fs = lfs_rig();
        let mut last: BTreeMap<String, u64> = BTreeMap::new();
        for (step, op) in ops.iter().enumerate() {
            apply(&mut fs, op);
            let snap = fs.obs().snapshot();
            for (name, value) in &snap.counters {
                if let Some(prev) = last.get(name) {
                    prop_assert!(
                        value >= prev,
                        "counter {} decreased {} -> {} at step {} ({:?})",
                        name, prev, value, step, op
                    );
                }
                last.insert(name.clone(), *value);
            }
        }
    }

    /// Each `op.*_ns` histogram records exactly one sample per call of
    /// the operation it times — failed calls included.
    #[test]
    fn histogram_totals_match_op_counts(ops in proptest::collection::vec(op_strategy(), 1..60)) {
        let mut fs = lfs_rig();
        let mut expected: BTreeMap<&'static str, u64> = BTreeMap::new();
        for op in &ops {
            for hist in apply(&mut fs, op) {
                *expected.entry(hist).or_default() += 1;
            }
        }
        let snap = fs.obs().snapshot();
        for (name, count) in &expected {
            let hist = snap.hist(name);
            prop_assert_eq!(
                hist.map_or(0, |h| h.count), *count,
                "histogram {} sample count mismatch", name
            );
            // Per-bucket counts must themselves sum to the total.
            if let Some(h) = hist {
                prop_assert_eq!(h.counts.iter().sum::<u64>(), h.count);
            }
        }
        // And no op histogram appears that we did not drive.
        for (name, h) in &snap.hists {
            if name.starts_with("op.") && h.count > 0 {
                prop_assert!(
                    expected.contains_key(name.as_str()),
                    "unexpected samples in {}", name
                );
            }
        }
    }

    /// The disk's component times always account for all its busy time.
    #[test]
    fn disk_component_times_sum_to_busy(ops in proptest::collection::vec(op_strategy(), 1..60)) {
        let mut fs = lfs_rig();
        for op in &ops {
            apply(&mut fs, op);
        }
        let snap = fs.obs().snapshot();
        prop_assert_eq!(
            snap.counter("disk.seek_ns")
                + snap.counter("disk.rotation_ns")
                + snap.counter("disk.transfer_ns"),
            snap.counter("disk.busy_ns")
        );
    }

    /// The same histogram-count invariant holds on the FFS baseline,
    /// which reports through the identical `op.*` namespace.
    #[test]
    fn ffs_histograms_match_op_counts(ops in proptest::collection::vec(op_strategy(), 1..40)) {
        let clock = Clock::new();
        let disk = SimDisk::new(DiskGeometry::tiny_test(DISK_SECTORS), Arc::clone(&clock));
        let mut fs = Ffs::format(disk, FfsConfig::small_test(), clock).unwrap();
        let mut expected: BTreeMap<&'static str, u64> = BTreeMap::new();
        for op in &ops {
            for hist in apply(&mut fs, op) {
                *expected.entry(hist).or_default() += 1;
            }
        }
        let snap = fs.obs().snapshot();
        for (name, count) in &expected {
            prop_assert_eq!(
                snap.hist(name).map_or(0, |h| h.count), *count,
                "histogram {} sample count mismatch", name
            );
        }
    }
}
